//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * double-buffered compute/transfer overlap vs. sequential execution,
//! * operator fusion on vs. off,
//! * P2P flash→DSA path vs. the host-mediated path inside the drive,
//! * DSCS-aware FCFS scheduling vs. running everything on compute nodes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dscs_compiler::{compile, CompileOptions, FusionPolicy};
use dscs_dsa::config::DsaConfig;
use dscs_dsa::executor::{Executor, OverlapPolicy};
use dscs_nn::zoo::{Model, ModelKind};
use dscs_simcore::quantity::Bytes;
use dscs_storage::drive::DscsDrive;

fn bench_ablation_overlap(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_overlap");
    group.sample_size(10);
    let config = DsaConfig::paper_optimal();
    let model = Model::build(ModelKind::ResNet50);
    let program = compile(model.graph(), &config, CompileOptions::default());
    // Report the modelled latencies once so the ablation result is visible in
    // the bench log, then measure the simulation cost itself.
    let overlapped = Executor::with_policy(config, OverlapPolicy::DoubleBuffered).run(&program);
    let sequential = Executor::with_policy(config, OverlapPolicy::Sequential).run(&program);
    println!(
        "ablation_overlap: double-buffered {:.3} ms vs sequential {:.3} ms",
        overlapped.latency().as_millis_f64(),
        sequential.latency().as_millis_f64()
    );
    group.bench_function("double_buffered", |b| {
        b.iter(|| {
            black_box(Executor::with_policy(config, OverlapPolicy::DoubleBuffered).run(&program))
        })
    });
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(Executor::with_policy(config, OverlapPolicy::Sequential).run(&program)))
    });
    group.finish();
}

fn bench_ablation_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fusion");
    group.sample_size(10);
    let config = DsaConfig::paper_optimal();
    let model = Model::build(ModelKind::VitBase);
    let fused = compile(model.graph(), &config, CompileOptions::default());
    let unfused = compile(
        model.graph(),
        &config,
        CompileOptions {
            fusion: FusionPolicy::Disabled,
        },
    );
    println!(
        "ablation_fusion: fused DMA {} vs unfused DMA {}",
        fused.total_dma_bytes(),
        unfused.total_dma_bytes()
    );
    group.bench_function("fusion_enabled", |b| {
        b.iter(|| black_box(compile(model.graph(), &config, CompileOptions::default())))
    });
    group.bench_function("fusion_disabled", |b| {
        b.iter(|| {
            black_box(compile(
                model.graph(),
                &config,
                CompileOptions {
                    fusion: FusionPolicy::Disabled,
                },
            ))
        })
    });
    group.finish();
}

fn bench_ablation_p2p(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_p2p");
    group.sample_size(30);
    let drive = DscsDrive::smartssd_class();
    let payload = Bytes::from_mib(4);
    println!(
        "ablation_p2p: p2p read {:.3} ms vs host read {:.3} ms for {payload}",
        drive.p2p_read_latency(payload).as_millis_f64(),
        drive.as_ssd().host_read_latency(payload).as_millis_f64()
    );
    group.bench_function("p2p_path", |b| {
        b.iter(|| black_box(drive.p2p_read_latency(payload)))
    });
    group.bench_function("host_path", |b| {
        b.iter(|| black_box(drive.as_ssd().host_read_latency(payload)))
    });
    group.finish();
}

fn bench_ablation_scheduler(c: &mut Criterion) {
    use dscs_faas::scheduler::{NodeCapability, NodeId, PendingRequest, Scheduler};
    let mut group = c.benchmark_group("ablation_scheduler");
    group.sample_size(20);
    let nodes: Vec<(NodeId, NodeCapability)> = (0..100u32)
        .map(|i| {
            let cap = if i < 20 {
                NodeCapability::DscsStorage
            } else {
                NodeCapability::Compute
            };
            (NodeId(i), cap)
        })
        .collect();
    group.bench_function("fcfs_dscs_aware_1000_requests", |b| {
        b.iter(|| {
            let mut scheduler = Scheduler::new(nodes.clone(), 10_000);
            for id in 0..1000u64 {
                let data_node = NodeId((id % 20) as u32);
                scheduler
                    .submit(PendingRequest {
                        id,
                        app: "bench".to_string(),
                        acceleratable: id % 2 == 0,
                        data_node: Some(data_node),
                    })
                    .expect("queue has room");
                let placed = scheduler.dispatch();
                for (_, placement) in &placed {
                    scheduler.release(placement.node());
                }
            }
            black_box(scheduler.telemetry().counter("scheduled_total"))
        })
    });
    group.finish();
}

criterion_group!(
    ablations,
    bench_ablation_overlap,
    bench_ablation_fusion,
    bench_ablation_p2p,
    bench_ablation_scheduler
);
criterion_main!(ablations);
