//! Criterion benches: one target per paper table/figure.
//!
//! Each bench measures the end-to-end cost of regenerating the corresponding
//! experiment's data series, so regressions in any layer of the stack (cycle
//! model, compiler, storage models, end-to-end model, cluster simulation) show
//! up against the experiment they affect. Sample counts are kept small because
//! individual iterations are full experiments, not micro-operations.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dscs_cluster::experiment::Experiment;
use dscs_cluster::trace::RateProfile;
use dscs_core::benchmarks::Benchmark;
use dscs_core::endtoend::{EvalOptions, SystemModel};
use dscs_core::experiments as exp;
use dscs_dsa::config::TechnologyNode;
use dscs_dse::cost::CostParameters;
use dscs_dse::explore::{area_performance_frontier, power_performance_frontier, sweep};
use dscs_dse::space::enumerate_small;
use dscs_platforms::PlatformKind;
use dscs_simcore::rng::DeterministicRng;
use dscs_simcore::stats::geometric_mean;
use dscs_simcore::time::SimDuration;

fn bench_tables(c: &mut Criterion) {
    c.bench_function("table1_suite", |b| {
        b.iter(|| black_box(exp::table1_benchmarks()))
    });
    c.bench_function("table2_platforms", |b| {
        b.iter(|| black_box(exp::table2_platforms()))
    });
}

fn bench_fig03(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig03_s3_read_cdf");
    group.sample_size(10);
    group.bench_function("cdf_1k_reads_per_benchmark", |b| {
        b.iter(|| black_box(exp::fig3_s3_read_cdf(1_000, 42)))
    });
    group.finish();
}

fn bench_fig04(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig04_breakdown_baseline");
    group.sample_size(10);
    group.bench_function("all_benchmarks", |b| {
        b.iter(|| black_box(exp::fig4_runtime_breakdown_baseline()))
    });
    group.finish();
}

fn bench_fig07_08(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig07_08_dse_pareto");
    group.sample_size(10);
    let space = enumerate_small(TechnologyNode::Nm45);
    group.bench_function("sweep_and_frontiers", |b| {
        b.iter(|| {
            let points = sweep(black_box(&space), &[dscs_nn::zoo::ModelKind::ResNet50]);
            let power = power_performance_frontier(&points);
            let area = area_performance_frontier(&points);
            black_box((power, area))
        })
    });
    group.finish();
}

fn bench_fig09(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09_speedup");
    group.sample_size(10);
    group.bench_function("all_platforms_all_benchmarks", |b| {
        b.iter(|| black_box(exp::fig9_speedup()))
    });
    group.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_breakdown_platforms");
    group.sample_size(10);
    group.bench_function("all_platforms_all_benchmarks", |b| {
        b.iter(|| black_box(exp::fig10_runtime_breakdown()))
    });
    group.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_energy");
    group.sample_size(10);
    group.bench_function("all_platforms_all_benchmarks", |b| {
        b.iter(|| black_box(exp::fig11_energy_reduction()))
    });
    group.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_cost");
    group.sample_size(10);
    group.bench_function("cost_efficiency_all_platforms", |b| {
        b.iter(|| {
            let params = CostParameters::default();
            let system = SystemModel::new();
            let values: Vec<f64> = PlatformKind::ALL
                .iter()
                .map(|&platform| {
                    let spec = platform.spec();
                    let throughputs: Vec<f64> = Benchmark::ALL
                        .iter()
                        .map(|&bench| {
                            system
                                .evaluate(bench, platform, EvalOptions::default())
                                .throughput_rps()
                        })
                        .collect();
                    params.cost_efficiency(
                        geometric_mean(&throughputs),
                        spec.active_power,
                        spec.capex,
                    )
                })
                .collect();
            black_box(values)
        })
    });
    group.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_at_scale");
    group.sample_size(10);
    // A one-minute slice of the bursty trace keeps one iteration around a
    // hundred thousand simulated requests.
    let profile = RateProfile {
        segments: vec![(SimDuration::from_secs(60), 1500.0)],
    };
    let trace = std::sync::Arc::new(profile.generate(&mut DeterministicRng::seeded(5)));
    let replay = |platform| {
        // One iteration covers the whole run: model evaluation, event loop,
        // report aggregation — the cost `simulate_platform` used to bundle.
        Experiment::builder(platform)
            .trace(trace.clone())
            .seed(7)
            .build()
            .expect("valid experiment")
            .run()
            .report
    };
    group.bench_function("baseline_one_minute", |b| {
        b.iter(|| black_box(replay(PlatformKind::BaselineCpu)))
    });
    group.bench_function("dscs_one_minute", |b| {
        b.iter(|| black_box(replay(PlatformKind::DscsDsa)))
    });
    group.finish();
}

fn bench_fig14_17(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_17_sensitivity");
    group.sample_size(10);
    group.bench_function("fig14_batch", |b| {
        b.iter(|| black_box(exp::fig14_batch_sensitivity()))
    });
    group.bench_function("fig15_tail", |b| {
        b.iter(|| black_box(exp::fig15_tail_sensitivity()))
    });
    group.bench_function("fig16_chaining", |b| {
        b.iter(|| black_box(exp::fig16_function_count_sensitivity()))
    });
    group.bench_function("fig17_coldstart", |b| {
        b.iter(|| black_box(exp::fig17_cold_start_sensitivity()))
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_tables,
    bench_fig03,
    bench_fig04,
    bench_fig07_08,
    bench_fig09,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig14_17
);
criterion_main!(figures);
