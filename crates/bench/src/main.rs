//! `reproduce` — regenerates every table and figure of the DSCS-Serverless
//! paper from the simulation models and prints the series as aligned text
//! rows.
//!
//! Usage:
//!
//! ```text
//! reproduce [experiment] [--full]
//!
//! experiment: all (default), table1, table2, fig3, fig4, fig7, fig8, fig9,
//!             fig10, fig11, fig12, fig13, fig14, fig15, fig16, fig17
//! --full:     run the full-size sweeps (complete 650+-point DSE, full
//!             20-minute at-scale trace) instead of the quick versions.
//!
//! reproduce at-scale [--quick] [--smoke] [--seed N] [--racks N] [--jobs N]
//!                    [--rack-jobs N]
//!                    [--scale smoke|quick|full|large|large-smoke|large-quick]
//!                    [--balancer round-robin|least-loaded|locality]
//!                    [--cold-path fresh|flash|snapshot]...
//!                    [--ipc shm|socket|http]...
//!                    [--workload azure|bursty|trace:<path>[@<day>]]...
//!                    [--regret | --no-regret] [--out PATH]
//!
//! Sweeps scheduler x keepalive x scaling x balancer x platform over the
//! bursty Figure-13 trace and an Azure-style synthetic workload, sharded
//! over multiple racks against a rack-aware object-store placement (cells
//! report locality hit rates, cross-rack bytes and the joules those moves
//! cost), and writes a machine-readable JSON report (default:
//! BENCH_cluster.json) that also carries the measured simulator throughput
//! (`events_per_sec`, per cell and in aggregate). The grid is a declarative
//! `SweepSpec` the options expand into. --balancer restricts the sweep to
//! one balancer; the default sweeps all three. --workload (repeatable)
//! replaces the default workload axis with declarative specs — mixing a
//! synthetic generator and an ingested Azure-schema trace file puts both on
//! one axis and adds a cross-validation section to the report. --jobs fans
//! the independent cells across N worker threads (0 or omitted: one per
//! available core; 1: sequential) — the modelled report bytes are identical
//! either way. --rack-jobs adds a second parallelism level *inside* each
//! round-robin cell: the cell's racks are sharded over N threads (0: split
//! the core budget left over by --jobs; 1, the default: inline). Cells with
//! a coupled balancer (least-loaded, locality) fall back to the sequential
//! engine. Rack workers never change the report bytes either. --cold-path
//! (repeatable) sweeps the cold-start modality axis — `fresh` always pays
//! the registry spawn, `flash` (the default) reloads evicted images from the
//! drive's flash, `snapshot` restores repeat colds from a CRIU-style
//! process snapshot — and --ipc (repeatable) sweeps the gateway→runtime
//! transport charged on every started invocation (`shm`, the free default;
//! `socket`; `http`). When the sweep covers both the flash and snapshot
//! paths, the table closes with a prewarm-vs-restore crossover headline
//! comparing the best cell of each. --scale picks
//! the sweep size by name; `large` is the 10⁷-invocation preset (10⁵
//! functions over two simulated days) on a restricted single-point policy
//! grid sized for the rack-parallel engine; `large-smoke` and `large-quick`
//! run that same restricted grid at smoke/quick scale so CI can exercise
//! the preset cheaply and measure single-cell rack-parallel speedup.
//! The table's `regret %` column shows each cell's cold-start
//! regret against the offline-optimal bound, priced under the cell's own
//! cold-start path (on by default; --no-regret hides it — the JSON always
//! carries the regret fields either way, plus the v8 per-cell `cold_path`,
//! `ipc`, `restore_s` and `ipc_overhead_s` columns).
//!
//! reproduce generate-trace [--sample | --scale smoke|quick|full|large]
//!                          [--seed N] [--out PATH]
//! reproduce generate-trace --from CSV [--day N] [--out PATH]
//!
//! Emits an Azure-Functions-2019-schema invocations-per-function CSV. The
//! first form buckets a synthetic `AzureWorkload` trace (the checked-in
//! ~200-function `data/azure_trace_sample.csv` is `--sample --seed 42`;
//! `--scale` buckets the sweep's azure workload instead, from exactly the
//! RNG stream the sweep generates with, so the file round-trips the
//! synthetic run). The second form ingests an existing trace file and
//! re-emits it — CI uses both forms to pin generate → parse → re-emit
//! byte-equality.
//!
//! reproduce perf-gate BASELINE.json CURRENT.json [--threshold PCT]
//!
//! Diffs two at-scale reports cell by cell and exits non-zero on mean/p99
//! latency regressions beyond the threshold (default 10%); measured
//! `events_per_sec` drops and cold-start-regret increases beyond the
//! threshold are printed as warnings without failing (wall-clock throughput
//! is noisy on shared runners, and regret drift flags the cold-start path
//! for a look rather than blocking). A
//! missing baseline file passes vacuously, so the first CI run after
//! enabling the gate succeeds; so does a baseline with a different schema
//! version (the numbers are not comparable across a schema bump).
//! ```

use std::env;

use dscs_cluster::at_scale::{AtScaleOptions, SweepScale, SweepSpec};
use dscs_cluster::coldpath::{ColdStartPath, IpcTransport};
use dscs_cluster::experiment::Experiment;
use dscs_cluster::ingest::{sample_workload, TraceFileWorkload};
use dscs_cluster::perf_gate::compare_reports;
use dscs_cluster::policy::{KeepalivePolicy, LoadBalancer, ScalingPolicy, SchedulerPolicy};
use dscs_cluster::trace::RateProfile;
use dscs_cluster::workload::{azure_generation_rng, WorkloadSpec};
use dscs_core::benchmarks::Benchmark;
use dscs_core::endtoend::{EvalOptions, SystemModel};
use dscs_core::experiments as exp;
use dscs_dsa::config::TechnologyNode;
use dscs_dse::cost::CostParameters;
use dscs_dse::explore::{
    area_performance_frontier, frontier_fit, power_performance_frontier, select_optimal, sweep,
    DRIVE_POWER_BUDGET_WATTS,
};
use dscs_dse::space::{enumerate, enumerate_small};
use dscs_platforms::PlatformKind;
use dscs_simcore::rng::DeterministicRng;
use dscs_simcore::stats::geometric_mean;

/// One CLI experiment entry: the names that select it, and its runner (the
/// bool carries the `--full` flag).
type ExperimentEntry = (&'static [&'static str], fn(bool));

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    if let Some(at) = args.iter().position(|a| a == "at-scale") {
        let rest: Vec<String> = args[..at].iter().chain(&args[at + 1..]).cloned().collect();
        at_scale(&rest);
        return;
    }
    if let Some(at) = args.iter().position(|a| a == "perf-gate") {
        let rest: Vec<String> = args[..at].iter().chain(&args[at + 1..]).cloned().collect();
        perf_gate(&rest);
        return;
    }
    if let Some(at) = args.iter().position(|a| a == "generate-trace") {
        let rest: Vec<String> = args[..at].iter().chain(&args[at + 1..]).cloned().collect();
        generate_trace(&rest);
        return;
    }
    let full = args.iter().any(|a| a == "--full");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all")
        .to_string();

    // One entry per experiment: accepted names (fig7/fig8 share a runner) and
    // the handler. Name validation derives from this table, so adding an
    // experiment here is the only change needed.
    let experiments: [ExperimentEntry; 14] = [
        (&["table1"], |_| table1()),
        (&["table2"], |_| table2()),
        (&["fig3"], |_| fig3()),
        (&["fig4"], |_| fig4()),
        (&["fig7", "fig8"], fig7_and_8),
        (&["fig9"], |_| fig9()),
        (&["fig10"], |_| fig10()),
        (&["fig11"], |_| fig11()),
        (&["fig12"], |_| fig12()),
        (&["fig13"], fig13),
        (&["fig14"], |_| fig14()),
        (&["fig15"], |_| fig15()),
        (&["fig16"], |_| fig16()),
        (&["fig17"], |_| fig17()),
    ];

    let known =
        |name: &str| name == "all" || experiments.iter().any(|(names, _)| names.contains(&name));
    if !known(&which) {
        let mut names: Vec<&str> = vec!["all", "at-scale", "perf-gate", "generate-trace"];
        names.extend(experiments.iter().flat_map(|(n, _)| n.iter().copied()));
        eprintln!(
            "unknown experiment '{which}'; expected one of: {}",
            names.join(", ")
        );
        std::process::exit(2);
    }

    for (names, runner) in &experiments {
        if which == "all" || names.contains(&which.as_str()) {
            runner(full);
        }
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

fn table1() {
    header("Table 1: benchmark suite");
    println!(
        "{:<26} {:<18} {:>14} {:>12} {:>12}  description",
        "benchmark", "model", "parameters", "input B", "output B"
    );
    for row in exp::table1_benchmarks() {
        println!(
            "{:<26} {:<18} {:>14} {:>12} {:>12}  {}",
            row.benchmark.name(),
            row.model,
            row.parameters,
            row.input_bytes,
            row.output_bytes,
            row.description
        );
    }
}

fn table2() {
    header("Table 2: evaluated platforms");
    println!(
        "{:<18} {:>10} {:>12} {:>10} {:>14} {:>10}",
        "platform", "peak TOPS", "mem GB/s", "power W", "location", "CAPEX $"
    );
    for row in exp::table2_platforms() {
        println!(
            "{:<18} {:>10.1} {:>12.1} {:>10.1} {:>14} {:>10.0}",
            row.platform.name(),
            row.peak_tops,
            row.memory_gbps,
            row.power_watts,
            row.location,
            row.capex_usd
        );
    }
}

fn fig3() {
    header("Figure 3: CDF of remote-storage (S3-style) read latency per benchmark");
    let series = exp::fig3_s3_read_cdf(10_000, 42);
    println!(
        "{:<26} {:>12} {:>12} {:>10}",
        "benchmark", "p50 (ms)", "p99 (ms)", "p99/p50"
    );
    for s in &series {
        println!(
            "{:<26} {:>12.2} {:>12.2} {:>10.2}",
            s.benchmark.name(),
            s.p50 * 1e3,
            s.p99 * 1e3,
            s.p99 / s.p50
        );
    }
}

fn print_breakdowns(rows: &[exp::BreakdownRow]) {
    println!(
        "{:<18} {:<26} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "platform", "benchmark", "rd %", "wr %", "io %", "comp %", "notif %", "stack %", "total ms"
    );
    for row in rows {
        let n = row.normalized();
        println!(
            "{:<18} {:<26} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>9.1}",
            row.platform.name(),
            row.benchmark.name(),
            n[0].1 * 100.0,
            n[1].1 * 100.0,
            n[2].1 * 100.0,
            n[3].1 * 100.0,
            n[4].1 * 100.0,
            n[5].1 * 100.0,
            row.breakdown.total().as_millis_f64()
        );
    }
}

fn fig4() {
    header("Figure 4: runtime breakdown on the baseline CPU with remote storage");
    let rows = exp::fig4_runtime_breakdown_baseline();
    print_breakdowns(&rows);
    let avg_comm: f64 = rows
        .iter()
        .map(|r| r.breakdown.communication_fraction())
        .sum::<f64>()
        / rows.len() as f64;
    println!(
        "average communication share: {:.1}% (paper: >55%)",
        avg_comm * 100.0
    );
}

fn fig7_and_8(full: bool) {
    header("Figures 7 & 8: DSA design-space Pareto frontiers at 45 nm");
    let space = if full {
        enumerate(TechnologyNode::Nm45)
    } else {
        enumerate_small(TechnologyNode::Nm45)
    };
    println!(
        "design points evaluated: {} ({})",
        space.len(),
        if full {
            "full sweep"
        } else {
            "quick sweep; use --full for the complete sweep"
        }
    );
    let points = sweep(&space, &dscs_dse::explore::default_evaluation_models());

    let power_frontier = power_performance_frontier(&points);
    println!("\nFigure 7 (power-performance frontier, <= {DRIVE_POWER_BUDGET_WATTS} W):");
    println!(
        "{:<26} {:>16} {:>12}",
        "config", "throughput ips", "power W"
    );
    for p in &power_frontier {
        println!(
            "{:<26} {:>16.1} {:>12.2}",
            p.config.label(),
            p.throughput_ips,
            p.power_watts
        );
    }
    if power_frontier.len() >= 2 {
        println!(
            "P(c) fit: {}",
            frontier_fit(&power_frontier, |p| p.power_watts)
        );
    }

    let area_frontier = area_performance_frontier(&points);
    println!("\nFigure 8 (area-performance frontier):");
    println!(
        "{:<26} {:>16} {:>12}",
        "config", "throughput ips", "area mm2"
    );
    for p in &area_frontier {
        println!(
            "{:<26} {:>16.1} {:>12.1}",
            p.config.label(),
            p.throughput_ips,
            p.area_mm2
        );
    }
    if area_frontier.len() >= 2 {
        println!("A(c) fit: {}", frontier_fit(&area_frontier, |p| p.area_mm2));
    }

    if let Some(best) = select_optimal(&points) {
        println!(
            "\nselected configuration: {} (paper selects Dim128-4MB-DDR5)",
            best.config.label()
        );
    }
}

fn print_ratio_matrix(matrix: &exp::RatioMatrix, what: &str) {
    print!("{:<26}", "benchmark");
    let platforms: Vec<PlatformKind> = matrix.means.iter().map(|(p, _)| *p).collect();
    for p in &platforms {
        print!(" {:>16}", p.name());
    }
    println!();
    for b in Benchmark::ALL {
        print!("{:<26}", b.name());
        for p in &platforms {
            print!(" {:>16.2}", matrix.cell(b, *p).unwrap_or(f64::NAN));
        }
        println!();
    }
    print!("{:<26}", format!("geomean {what}"));
    for (_, mean) in &matrix.means {
        print!(" {mean:>16.2}");
    }
    println!();
}

fn fig9() {
    header("Figure 9: end-to-end speedup over the baseline CPU");
    print_ratio_matrix(&exp::fig9_speedup(), "speedup");
}

fn fig10() {
    header("Figure 10: runtime breakdown across platforms");
    print_breakdowns(&exp::fig10_runtime_breakdown());
}

fn fig11() {
    header("Figure 11: system energy reduction over the baseline CPU");
    print_ratio_matrix(&exp::fig11_energy_reduction(), "energy reduction");
}

fn fig12() {
    header("Figure 12: cost efficiency normalized to the baseline CPU");
    let params = CostParameters::default();
    let system = SystemModel::new();
    // Every deployment also pays for its share of the surrounding
    // infrastructure (server chassis, networking, storage capacity) and that
    // infrastructure's power draw, as in the paper's CAPEX/OPEX accounting.
    let infra_capex = dscs_simcore::quantity::Dollars::new(3_500.0);
    let infra_power = dscs_simcore::quantity::Watts::new(120.0);
    let efficiency = |platform: PlatformKind| {
        let spec = platform.spec();
        let throughputs: Vec<f64> = Benchmark::ALL
            .iter()
            .map(|&b| {
                system
                    .evaluate(b, platform, EvalOptions::default())
                    .throughput_rps()
            })
            .collect();
        let throughput = geometric_mean(&throughputs);
        params.cost_efficiency(
            throughput,
            spec.active_power + infra_power,
            spec.capex + infra_capex,
        )
    };
    let base = efficiency(PlatformKind::BaselineCpu);
    println!("{:<18} {:>22}", "platform", "normalized cost eff.");
    for p in PlatformKind::ALL {
        println!("{:<18} {:>22.2}", p.name(), efficiency(p) / base);
    }
}

fn fig13(full: bool) {
    header("Figure 13: at-scale trace (200 instances, FCFS, 10k queue)");
    let profile = if full {
        RateProfile::paper_bursty()
    } else {
        // One-quarter-length trace with the same rate steps for quick runs.
        RateProfile::paper_bursty().compressed(4.0)
    };
    let trace = std::sync::Arc::new(profile.generate(&mut DeterministicRng::seeded(99)));
    println!("trace: {} requests over {}", trace.len(), profile.horizon());
    for platform in [PlatformKind::BaselineCpu, PlatformKind::DscsDsa] {
        let report = Experiment::builder(platform)
            .trace(trace.clone())
            .seed(7)
            .build()
            .expect("the Figure-13 replay is a valid experiment")
            .run()
            .report;
        println!("\n{}:", platform.name());
        println!(
            "  completed {} rejected {}",
            report.completed, report.rejected
        );
        println!(
            "  mean wall-clock latency: {:.1} ms",
            report.mean_latency_ms()
        );
        println!("  peak queued functions:   {:.0}", report.peak_queue());
        println!(
            "  per-minute offered rps:  {:?}",
            round_vec(&report.offered_rps)
        );
        println!("  per-minute queued:       {:?}", round_vec(&report.queued));
        println!(
            "  per-minute latency (ms): {:?}",
            round_vec(&report.latency_ms)
        );
    }
}

fn round_vec(v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| (x * 10.0).round() / 10.0).collect()
}

fn sensitivity(points: &[exp::SensitivityPoint], label: &str) {
    let mut params: Vec<f64> = points.iter().map(|p| p.parameter).collect();
    params.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    params.dedup();
    println!("{:<12} {:>18}", label, "geomean speedup");
    for param in params {
        let values: Vec<f64> = points
            .iter()
            .filter(|p| p.parameter == param)
            .map(|p| p.speedup)
            .collect();
        println!("{:<12} {:>18.2}", param, geometric_mean(&values));
    }
}

fn fig14() {
    header("Figure 14: batch-size sensitivity (DSCS vs baseline, same batch)");
    sensitivity(&exp::fig14_batch_sensitivity(), "batch");
}

fn fig15() {
    header("Figure 15: storage-access tail-latency sensitivity");
    sensitivity(&exp::fig15_tail_sensitivity(), "quantile");
}

fn fig16() {
    header("Figure 16: sensitivity to the number of accelerated functions");
    sensitivity(&exp::fig16_function_count_sensitivity(), "+functions");
}

fn fig17() {
    header("Figure 17: cold vs warm containers");
    sensitivity(&exp::fig17_cold_start_sensitivity(), "cold=1");
}

/// `reproduce at-scale [--quick] [--smoke] [--seed N] [--racks N] [--jobs N]
/// [--rack-jobs N] [--scale NAME] [--balancer NAME] [--out PATH]`: the
/// scheduler x keepalive x platform x workload policy sweep, fanned across
/// worker threads (and, per round-robin cell, across rack worker threads)
/// and written as a machine-readable JSON report with measured engine
/// throughput.
fn at_scale(args: &[String]) {
    let mut options = if args.iter().any(|a| a == "--quick") {
        AtScaleOptions::quick()
    } else if args.iter().any(|a| a == "--smoke") {
        AtScaleOptions::smoke()
    } else {
        AtScaleOptions::full()
    };
    let mut out_path = String::from("BENCH_cluster.json");
    let mut workload_args: Vec<String> = Vec::new();
    let mut cold_path_args: Vec<ColdStartPath> = Vec::new();
    let mut ipc_args: Vec<IpcTransport> = Vec::new();
    let mut show_regret = true;
    // The large preset restricts the policy grid to one point (the sweep
    // below is sized for a full cartesian product, not 10⁷-invocation
    // traces) and moves the worker budget inside the cell.
    let mut large_preset = false;
    let mut jobs_set = false;
    let mut rack_jobs_set = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |name: &str| {
            iter.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    std::process::exit(2);
                })
                .clone()
        };
        match arg.as_str() {
            "--quick" | "--smoke" => {}
            // The full-size sweep is the default; accept the flag the other
            // experiments use for it.
            "--full" => options.scale = SweepScale::Full,
            "--scale" => {
                let name = value_of("--scale");
                match name.as_str() {
                    "smoke" => options.scale = SweepScale::Smoke,
                    "quick" => options.scale = SweepScale::Quick,
                    "full" => options.scale = SweepScale::Full,
                    "large" => {
                        options.scale = SweepScale::Large;
                        large_preset = true;
                    }
                    // The large preset's restricted grid at smaller sizes:
                    // `large-smoke` lets CI exercise the preset without the
                    // 10⁷ trace, `large-quick` is the single-cell speedup
                    // measurement the perf artifact tracks.
                    "large-smoke" => {
                        options.scale = SweepScale::Smoke;
                        large_preset = true;
                    }
                    "large-quick" => {
                        options.scale = SweepScale::Quick;
                        large_preset = true;
                    }
                    _ => {
                        eprintln!(
                            "--scale must be smoke, quick, full, large, \
                             large-smoke or large-quick"
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--jobs" => {
                options.jobs = value_of("--jobs").parse().unwrap_or_else(|_| {
                    eprintln!("--jobs must be a non-negative integer (0 = all cores)");
                    std::process::exit(2);
                });
                jobs_set = true;
            }
            "--rack-jobs" => {
                options.rack_jobs = value_of("--rack-jobs").parse().unwrap_or_else(|_| {
                    eprintln!(
                        "--rack-jobs must be a non-negative integer \
                         (0 = split the core budget, 1 = inline)"
                    );
                    std::process::exit(2);
                });
                rack_jobs_set = true;
            }
            "--seed" => {
                options.seed = value_of("--seed").parse().unwrap_or_else(|_| {
                    eprintln!("--seed must be an integer");
                    std::process::exit(2);
                });
            }
            "--racks" => {
                options.racks = value_of("--racks").parse().unwrap_or_else(|_| {
                    eprintln!("--racks must be a positive integer");
                    std::process::exit(2);
                });
                if options.racks == 0 {
                    eprintln!("--racks must be a positive integer");
                    std::process::exit(2);
                }
            }
            "--out" => out_path = value_of("--out"),
            "--workload" => workload_args.push(value_of("--workload")),
            "--cold-path" => {
                let name = value_of("--cold-path");
                cold_path_args.push(ColdStartPath::from_name(&name).unwrap_or_else(|| {
                    eprintln!(
                        "--cold-path must be one of: {}",
                        ColdStartPath::ALL.map(|p| p.name()).join(", ")
                    );
                    std::process::exit(2);
                }));
            }
            "--ipc" => {
                let name = value_of("--ipc");
                ipc_args.push(IpcTransport::from_name(&name).unwrap_or_else(|| {
                    eprintln!(
                        "--ipc must be one of: {}",
                        IpcTransport::ALL.map(|t| t.name()).join(", ")
                    );
                    std::process::exit(2);
                }));
            }
            "--regret" => show_regret = true,
            "--no-regret" => show_regret = false,
            "--balancer" => {
                let name = value_of("--balancer");
                options.balancer = Some(
                    LoadBalancer::ALL
                        .into_iter()
                        .find(|b| b.name() == name)
                        .unwrap_or_else(|| {
                            eprintln!(
                                "--balancer must be one of: {}",
                                LoadBalancer::ALL.map(|b| b.name()).join(", ")
                            );
                            std::process::exit(2);
                        }),
                );
            }
            other => {
                eprintln!("unknown at-scale option '{other}'");
                eprintln!(
                    "usage: reproduce at-scale [--quick] [--smoke] [--seed N] [--racks N] \
                     [--jobs N] [--rack-jobs N] \
                     [--scale smoke|quick|full|large|large-smoke|large-quick] \
                     [--balancer round-robin|least-loaded|locality] \
                     [--cold-path fresh|flash|snapshot]... [--ipc shm|socket|http]... \
                     [--workload azure|bursty|trace:<path>[@<day>]]... \
                     [--regret | --no-regret] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let mut spec = SweepSpec::from(options);
    if large_preset {
        // One policy point over the azure workload: the preset exists to
        // exercise the single-cell rack-parallel engine at scale, not to
        // multiply a 10⁷-invocation trace by a 100-cell policy grid.
        spec.workloads = vec![WorkloadSpec::Azure {
            scale: options.scale,
            seed: options.seed,
        }];
        spec.schedulers = vec![SchedulerPolicy::Fcfs];
        spec.keepalives = vec![KeepalivePolicy::hybrid_default()];
        spec.scalings = vec![ScalingPolicy::reactive_default()];
        if options.balancer.is_none() {
            spec.balancers = vec![LoadBalancer::RoundRobin];
        }
        // With so few cells the parallelism belongs inside each cell: one
        // sweep worker, rack workers across the whole core budget.
        if !jobs_set {
            spec.jobs = 1;
        }
        if !rack_jobs_set {
            spec.rack_jobs = 0;
        }
    }
    // The repeatable modality flags replace the default single-valued axes
    // (first occurrence wins on duplicates, so the grid never double-counts
    // a cell).
    if !cold_path_args.is_empty() {
        spec.cold_paths.clear();
        for path in cold_path_args {
            if !spec.cold_paths.contains(&path) {
                spec.cold_paths.push(path);
            }
        }
    }
    if !ipc_args.is_empty() {
        spec.ipcs.clear();
        for ipc in ipc_args {
            if !spec.ipcs.contains(&ipc) {
                spec.ipcs.push(ipc);
            }
        }
    }
    if !workload_args.is_empty() {
        spec.workloads = workload_args
            .iter()
            .map(|text| {
                WorkloadSpec::parse(text, options.scale, options.seed).unwrap_or_else(|err| {
                    eprintln!("--workload {text}: {err}");
                    std::process::exit(2);
                })
            })
            .collect();
    }
    let jobs = spec.effective_jobs();
    let rack_jobs = spec.effective_rack_jobs(jobs);
    header(&format!(
        "At-scale policy sweep ({}{}, {} racks, {} balancer, seed {}, \
         {} worker{} x {} rack worker{})",
        options.scale.name(),
        if large_preset { ", large preset" } else { "" },
        options.racks,
        options.balancer.map_or("all", |b| b.name()),
        options.seed,
        jobs,
        if jobs == 1 { "" } else { "s" },
        rack_jobs,
        if rack_jobs == 1 { "" } else { "s" }
    ));
    if options.scale == SweepScale::Full {
        println!("running the full 20-minute traces; pass --quick for a fast run");
    }
    if options.scale == SweepScale::Large {
        println!("running the 10⁷-invocation large preset; this takes a while");
    }
    let report = spec.run().unwrap_or_else(|err| {
        eprintln!("at-scale sweep rejected: {err}");
        std::process::exit(1);
    });
    for w in &report.workloads {
        println!(
            "workload {:<8} {:>9} requests over {:>7.1} s  [{}]",
            w.name, w.requests, w.horizon_s, w.source
        );
    }
    print!(
        "\n{:<8} {:<18} {:<6} {:<16} {:<10} {:<12} {:<8} {:<6} {:>9} {:>8}",
        "workload",
        "platform",
        "sched",
        "keepalive",
        "scaling",
        "balancer",
        "path",
        "ipc",
        "completed",
        "cold",
    );
    if show_regret {
        print!(" {:>9}", "regret %");
    }
    println!(
        " {:>10} {:>9} {:>10} {:>9} {:>7} {:>10} {:>10}",
        "prewarm %", "local %", "xrack MiB", "fetch J", "peak", "mean ms", "p99 ms"
    );
    for c in &report.cells {
        print!(
            "{:<8} {:<18} {:<6} {:<16} {:<10} {:<12} {:<8} {:<6} {:>9} {:>8}",
            c.workload,
            c.platform.name(),
            c.scheduler.name(),
            c.keepalive.name(),
            c.scaling.name(),
            c.balancer.name(),
            c.cold_path.name(),
            c.ipc.name(),
            c.completed,
            c.cold_starts,
        );
        if show_regret {
            print!(" {:>9.1}", c.regret_pct * 100.0);
        }
        println!(
            " {:>10.2} {:>9.2} {:>10.1} {:>9.1} {:>7} {:>10.1} {:>10.1}",
            c.prewarm_hit_rate * 100.0,
            c.locality_hit_rate * 100.0,
            c.cross_rack_bytes as f64 / (1024.0 * 1024.0),
            c.fetch_energy_j,
            c.peak_instances,
            c.mean_latency_ms,
            c.p99_latency_ms
        );
    }
    // The headline comparison the snapshot modality exists to answer: does
    // proactive prewarming on the classic flash path still beat fast
    // restore, or has restore crossed over? Shown whenever the sweep covers
    // both paths, comparing each path's cheapest cell on aggregate
    // cold-start seconds.
    let best_under = |path: ColdStartPath| {
        report
            .cells
            .iter()
            .filter(|c| c.cold_path == path)
            .min_by(|a, b| a.coldstart_s.total_cmp(&b.coldstart_s))
    };
    if let (Some(prewarm), Some(restore)) = (
        best_under(ColdStartPath::FlashReload),
        best_under(ColdStartPath::SnapshotRestore),
    ) {
        let winner = if restore.coldstart_s < prewarm.coldstart_s {
            "snapshot restore wins"
        } else {
            "prewarming wins"
        };
        println!(
            "\nprewarm vs restore crossover: best flash cell {:.2} s cold-start \
             ({}/{}) vs best snapshot cell {:.2} s ({} restore) — {}",
            prewarm.coldstart_s,
            prewarm.keepalive.name(),
            prewarm.scaling.name(),
            restore.coldstart_s,
            format_args!("{:.2} s", restore.restore_s),
            winner
        );
    }
    let validation = report.cross_validation();
    if !validation.is_empty() {
        println!("\ncross-validation (synthetic vs trace-file, matched cells):");
        for v in &validation {
            println!(
                "  {} vs {}: rate {:+.1}%  mean {:+.1}%  p99 {:+.1}%  locality {:+.3}  \
                 regret {:+.3}  ({} cell{})",
                v.synthetic,
                v.trace,
                v.rate_delta_pct,
                v.mean_delta_pct,
                v.p99_delta_pct,
                v.locality_delta,
                v.regret_delta,
                v.cells,
                if v.cells == 1 { "" } else { "s" }
            );
        }
    }
    println!(
        "\nengine: {} events in {:.2} s wall ({:.0} events/s across {} worker{})",
        report.total_events(),
        report.wall_s.get(),
        report.events_per_sec(),
        jobs,
        if jobs == 1 { "" } else { "s" }
    );
    // Ship the throughput-annotated variant: the perf gate reads the
    // measured events_per_sec; byte-for-byte comparisons strip those keys or
    // use to_json().
    let json = report.to_json_with_throughput();
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {} cells to {out_path}", report.cells.len()),
        Err(err) => {
            eprintln!("failed to write {out_path}: {err}");
            std::process::exit(1);
        }
    }
}

/// `reproduce generate-trace [--sample | --scale smoke|quick|full] [--seed N]
/// [--out PATH]` or `reproduce generate-trace --from CSV [--day N] [--out
/// PATH]`: emit an Azure-Functions-2019-schema invocation CSV. The first form
/// buckets a synthetic `AzureWorkload` trace (`--sample` is the checked-in
/// sample's ~200-function configuration, and the default); the second ingests
/// an existing trace file and re-emits it, which CI uses to pin the
/// generate → parse → re-emit byte round trip.
fn generate_trace(args: &[String]) {
    let usage = "usage: reproduce generate-trace [--sample | --scale smoke|quick|full|large] \
                 [--seed N] [--out PATH] | --from CSV [--day N] [--out PATH]";
    let mut sample = false;
    let mut scale: Option<SweepScale> = None;
    let mut seed = 42u64;
    let mut out_path = String::from("azure_trace.csv");
    let mut from: Option<String> = None;
    let mut day = 1u32;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |name: &str| {
            iter.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    std::process::exit(2);
                })
                .clone()
        };
        match arg.as_str() {
            "--sample" => sample = true,
            "--scale" => {
                let name = value_of("--scale");
                scale = Some(match name.as_str() {
                    "smoke" => SweepScale::Smoke,
                    "quick" => SweepScale::Quick,
                    "full" => SweepScale::Full,
                    "large" => SweepScale::Large,
                    _ => {
                        eprintln!("--scale must be smoke, quick, full or large");
                        std::process::exit(2);
                    }
                });
            }
            "--seed" => {
                seed = value_of("--seed").parse().unwrap_or_else(|_| {
                    eprintln!("--seed must be an integer");
                    std::process::exit(2);
                });
            }
            "--out" => out_path = value_of("--out"),
            "--from" => from = Some(value_of("--from")),
            "--day" => {
                day = value_of("--day").parse().unwrap_or_else(|_| {
                    eprintln!("--day must be a positive integer");
                    std::process::exit(2);
                });
                if day == 0 {
                    eprintln!("--day must be a positive integer");
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!("unknown generate-trace option '{other}'");
                eprintln!("{usage}");
                std::process::exit(2);
            }
        }
    }
    if sample && scale.is_some() {
        eprintln!("--sample and --scale are mutually exclusive");
        eprintln!("{usage}");
        std::process::exit(2);
    }

    header("Generate Azure-schema invocation trace");
    let trace_file = if let Some(path) = &from {
        match TraceFileWorkload::from_csv_path(path, day) {
            Ok(parsed) => {
                println!(
                    "ingested {path}: {} functions x {} minute columns, {} invocations",
                    parsed.functions.len(),
                    parsed.minutes,
                    parsed.invocations()
                );
                parsed
            }
            Err(err) => {
                eprintln!("failed to ingest {path}: {err}");
                std::process::exit(1);
            }
        }
    } else {
        let workload = match scale {
            Some(scale) => WorkloadSpec::azure_at(scale),
            None => sample_workload(),
        };
        // Bucket from exactly the RNG stream the at-scale sweep generates the
        // azure workload with, so the emitted file round-trips the run.
        let mut rng = azure_generation_rng(seed);
        match TraceFileWorkload::from_workload(&workload, &mut rng, out_path.clone()) {
            Ok(bucketed) => {
                println!(
                    "generated {} functions x {} minute columns, {} invocations (seed {seed})",
                    bucketed.functions.len(),
                    bucketed.minutes,
                    bucketed.invocations()
                );
                bucketed
            }
            Err(err) => {
                eprintln!("the workload rejected generation: {err}");
                std::process::exit(1);
            }
        }
    };
    match std::fs::write(&out_path, trace_file.to_csv()) {
        Ok(()) => println!("wrote {out_path}"),
        Err(err) => {
            eprintln!("failed to write {out_path}: {err}");
            std::process::exit(1);
        }
    }
}

/// `reproduce perf-gate BASELINE.json CURRENT.json [--threshold PCT]`: the CI
/// perf-regression gate. Exits 1 when any sweep cell's mean or p99 latency
/// regressed beyond the threshold relative to the baseline report; a missing
/// baseline file passes vacuously (the first gated run has no history).
fn perf_gate(args: &[String]) {
    let mut threshold = 10.0f64;
    let mut paths: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threshold" => {
                let value = iter.next().and_then(|v| v.parse::<f64>().ok());
                match value {
                    Some(v) if v.is_finite() && v > 0.0 => threshold = v,
                    _ => {
                        eprintln!("--threshold needs a positive percentage");
                        std::process::exit(2);
                    }
                }
            }
            other if !other.starts_with("--") => paths.push(arg),
            other => {
                eprintln!("unknown perf-gate option '{other}'");
                eprintln!(
                    "usage: reproduce perf-gate BASELINE.json CURRENT.json [--threshold PCT]"
                );
                std::process::exit(2);
            }
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        eprintln!("usage: reproduce perf-gate BASELINE.json CURRENT.json [--threshold PCT]");
        std::process::exit(2);
    };

    header(&format!("Perf gate ({threshold}% threshold)"));
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(err) => {
            println!("no baseline at {baseline_path} ({err}); passing vacuously");
            return;
        }
    };
    let current = match std::fs::read_to_string(current_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("failed to read current report {current_path}: {err}");
            std::process::exit(1);
        }
    };
    let outcome = match compare_reports(&baseline, &current, threshold) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("perf gate could not compare reports: {err}");
            std::process::exit(1);
        }
    };
    if let Some(note) = &outcome.schema_note {
        println!("schema change detected: {note}");
    }
    println!(
        "compared {} cells ({} skipped: only on one side or schema change)",
        outcome.compared, outcome.skipped
    );
    if !outcome.throughput_warnings.is_empty() {
        println!(
            "WARN: {} engine-throughput drop(s) beyond {threshold}% (warn-only, not gating):",
            outcome.throughput_warnings.len()
        );
        for warning in &outcome.throughput_warnings {
            println!("  {warning}");
        }
    }
    if !outcome.regret_warnings.is_empty() {
        println!(
            "WARN: {} cold-start-regret increase(s) beyond {threshold} point(s) \
             (warn-only, not gating):",
            outcome.regret_warnings.len()
        );
        for warning in &outcome.regret_warnings {
            println!("  {warning}");
        }
    }
    if outcome.passed() {
        println!("OK: no latency regression beyond {threshold}%");
        return;
    }
    eprintln!(
        "FAIL: {} metric(s) regressed beyond {threshold}%:",
        outcome.regressions.len()
    );
    for regression in &outcome.regressions {
        eprintln!("  {regression}");
    }
    std::process::exit(1);
}
