//! The at-scale policy sweep: scheduler × keepalive × scaling × balancer ×
//! platform × workload.
//!
//! Where Figure 13 fixes one policy point (FCFS, fixed keepalive, fixed
//! 200-instance racks, local data), this experiment sweeps the whole policy
//! grid — including the autoscaling axis, the hybrid histogram's prewarm
//! window and the front-end balancer axis — over multiple workloads and
//! multi-rack configurations, and emits a machine-readable JSON report
//! (schema `dscs-at-scale-v3`). Every cell runs against a [`DataLayer`]
//! built for its workload's trace, so dispatch is data-aware: reports carry
//! each cell's locality hit rate, cross-rack bytes moved and the fetch
//! latency charged. CI runs the quick version of the sweep every build,
//! uploads the report as an artifact (`BENCH_cluster.json`), and diffs it
//! against the previous run's artifact (see [`crate::perf_gate`]), giving
//! the repo a tracked, gated performance trajectory. Fixed-seed runs are
//! byte-for-byte reproducible.

use serde::{Deserialize, Serialize};

use dscs_platforms::PlatformKind;
use dscs_simcore::json::JsonValue;
use dscs_simcore::rng::DeterministicRng;
use dscs_simcore::time::SimDuration;

use crate::data::DataLayer;
use crate::policy::{KeepalivePolicy, LoadBalancer, ScalingPolicy, SchedulerPolicy};
use crate::sim::{ClusterConfig, ClusterSim};
use crate::trace::{RateProfile, TraceRequest};
use crate::workload::{AzureWorkload, Workload};

/// How much of the full-size experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepScale {
    /// Tiny traces for unit tests (seconds of simulated time).
    Smoke,
    /// Shortened traces for CI smoke runs (a couple of simulated minutes).
    Quick,
    /// The full 20-minute traces.
    Full,
}

impl SweepScale {
    /// Machine-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            SweepScale::Smoke => "smoke",
            SweepScale::Quick => "quick",
            SweepScale::Full => "full",
        }
    }
}

/// Options for one at-scale sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AtScaleOptions {
    /// Experiment size.
    pub scale: SweepScale,
    /// Master seed; trace generation and service jitter derive from it.
    pub seed: u64,
    /// Number of racks the front end shards over.
    pub racks: u32,
    /// Restricts the sweep to one front-end load balancer; `None` sweeps the
    /// whole balancer axis ([`LoadBalancer::ALL`]).
    pub balancer: Option<LoadBalancer>,
}

impl AtScaleOptions {
    /// The CI quick configuration: two racks, the full balancer axis, seed
    /// 42.
    pub fn quick() -> Self {
        AtScaleOptions {
            scale: SweepScale::Quick,
            seed: 42,
            racks: 2,
            balancer: None,
        }
    }

    /// The full-size configuration: four racks (800 instances), full
    /// balancer axis.
    pub fn full() -> Self {
        AtScaleOptions {
            racks: 4,
            scale: SweepScale::Full,
            ..AtScaleOptions::quick()
        }
    }

    /// A minimal configuration for unit tests.
    pub fn smoke() -> Self {
        AtScaleOptions {
            scale: SweepScale::Smoke,
            ..AtScaleOptions::quick()
        }
    }
}

/// One cell of the sweep: a (workload, platform, scheduler, keepalive,
/// scaling, balancer) point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Workload name (`"bursty"`, `"azure"`).
    pub workload: &'static str,
    /// Platform under test.
    pub platform: PlatformKind,
    /// Scheduler policy.
    pub scheduler: SchedulerPolicy,
    /// Keepalive policy.
    pub keepalive: KeepalivePolicy,
    /// Instance-pool scaling policy.
    pub scaling: ScalingPolicy,
    /// Front-end load balancer.
    pub balancer: LoadBalancer,
    /// Requests offered by the trace.
    pub requests: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests rejected on queue overflow.
    pub rejected: u64,
    /// Requests that paid a cold start.
    pub cold_starts: u64,
    /// Invocations that found a proactively prewarmed instance.
    pub prewarm_hits: u64,
    /// Fraction of completed requests that found a prewarmed instance.
    pub prewarm_hit_rate: f64,
    /// Idle warm-seconds the keepalive policy held without a reuse.
    pub wasted_warm_s: f64,
    /// Scale-up decisions taken across all racks.
    pub scale_ups: u64,
    /// Scale-down decisions taken across all racks.
    pub scale_downs: u64,
    /// Seconds spent waiting on instance provisioning across all racks.
    pub scaling_lag_s: f64,
    /// Largest provisioned instance count any rack reached.
    pub peak_instances: u32,
    /// Fraction of started requests that ran on a rack holding a replica of
    /// their object.
    pub locality_hit_rate: f64,
    /// Bytes moved across racks by remote object fetches.
    pub cross_rack_bytes: u64,
    /// Total cross-rack fetch latency charged onto invocations (seconds).
    pub fetch_latency_s: f64,
    /// Mean wall-clock latency (ms).
    pub mean_latency_ms: f64,
    /// p99 wall-clock latency (ms).
    pub p99_latency_ms: f64,
    /// Peak queued requests (per-bucket mean maximum, all racks).
    pub peak_queue: f64,
    /// Simulated makespan in seconds.
    pub makespan_s: f64,
    /// Requests completed per rack.
    pub rack_completed: Vec<u64>,
}

/// Description of one workload used by the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSummary {
    /// Workload name.
    pub name: &'static str,
    /// Number of requests in the generated trace.
    pub requests: u64,
    /// Trace horizon in seconds.
    pub horizon_s: f64,
}

/// The full sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtScaleReport {
    /// The options the sweep ran under.
    pub options: AtScaleOptions,
    /// The workloads replayed.
    pub workloads: Vec<WorkloadSummary>,
    /// Every sweep cell, in deterministic order (workload, platform,
    /// scheduler, keepalive, scaling, balancer).
    pub cells: Vec<SweepCell>,
}

impl AtScaleReport {
    /// The cells for one (workload, platform) pair.
    pub fn cells_for(&self, workload: &str, platform: PlatformKind) -> Vec<&SweepCell> {
        self.cells
            .iter()
            .filter(|c| c.workload == workload && c.platform == platform)
            .collect()
    }

    /// The single cell at one full policy point, if the sweep covered it.
    /// Policies are matched by their report names (`"fcfs"`,
    /// `"hybrid-prewarm"`, `"reactive"`, `"locality"`, ...).
    pub fn cell(
        &self,
        workload: &str,
        platform: PlatformKind,
        scheduler: &str,
        keepalive: &str,
        scaling: &str,
        balancer: &str,
    ) -> Option<&SweepCell> {
        self.cells.iter().find(|c| {
            c.workload == workload
                && c.platform == platform
                && c.scheduler.name() == scheduler
                && c.keepalive.name() == keepalive
                && c.scaling.name() == scaling
                && c.balancer.name() == balancer
        })
    }

    /// Renders the report as compact, byte-for-byte reproducible JSON.
    pub fn to_json(&self) -> String {
        let mut root = JsonValue::object();
        root.push("schema", "dscs-at-scale-v3");
        root.push("scale", self.options.scale.name());
        root.push("seed", self.options.seed);
        root.push("racks", self.options.racks);
        root.push(
            "balancer",
            self.options.balancer.map_or("all", |b| b.name()),
        );
        root.push(
            "workloads",
            JsonValue::Array(
                self.workloads
                    .iter()
                    .map(|w| {
                        let mut obj = JsonValue::object();
                        obj.push("name", w.name);
                        obj.push("requests", w.requests);
                        obj.push("horizon_s", w.horizon_s);
                        obj
                    })
                    .collect(),
            ),
        );
        root.push(
            "cells",
            JsonValue::Array(
                self.cells
                    .iter()
                    .map(|c| {
                        let mut obj = JsonValue::object();
                        obj.push("workload", c.workload);
                        obj.push("platform", c.platform.name());
                        obj.push("scheduler", c.scheduler.name());
                        obj.push("keepalive", c.keepalive.name());
                        obj.push("scaling", c.scaling.name());
                        obj.push("balancer", c.balancer.name());
                        obj.push("requests", c.requests);
                        obj.push("completed", c.completed);
                        obj.push("rejected", c.rejected);
                        obj.push("cold_starts", c.cold_starts);
                        obj.push("prewarm_hits", c.prewarm_hits);
                        obj.push("prewarm_hit_rate", c.prewarm_hit_rate);
                        obj.push("wasted_warm_s", c.wasted_warm_s);
                        obj.push("scale_ups", c.scale_ups);
                        obj.push("scale_downs", c.scale_downs);
                        obj.push("scaling_lag_s", c.scaling_lag_s);
                        obj.push("peak_instances", c.peak_instances);
                        obj.push("locality_hit_rate", c.locality_hit_rate);
                        obj.push("cross_rack_bytes", c.cross_rack_bytes);
                        obj.push("fetch_latency_s", c.fetch_latency_s);
                        obj.push("mean_latency_ms", c.mean_latency_ms);
                        obj.push("p99_latency_ms", c.p99_latency_ms);
                        obj.push("peak_queue", c.peak_queue);
                        obj.push("makespan_s", c.makespan_s);
                        obj.push("rack_completed", c.rack_completed.clone());
                        obj
                    })
                    .collect(),
            ),
        );
        root.render()
    }
}

/// The platforms the sweep compares (the Figure 13 pair).
pub const SWEEP_PLATFORMS: [PlatformKind; 2] = [PlatformKind::BaselineCpu, PlatformKind::DscsDsa];

/// Builds the sweep's workload traces at `scale` from `seed`.
fn sweep_workloads(scale: SweepScale, seed: u64) -> Vec<(&'static str, Vec<TraceRequest>, f64)> {
    let mut master = DeterministicRng::seeded(seed);
    let bursty = match scale {
        SweepScale::Smoke => RateProfile::paper_bursty().compressed(100.0),
        SweepScale::Quick => RateProfile::paper_bursty().compressed(16.0),
        SweepScale::Full => RateProfile::paper_bursty(),
    };
    let azure = match scale {
        SweepScale::Smoke => AzureWorkload {
            functions: 16,
            base_rps: 200.0,
            horizon: SimDuration::from_secs(20),
            diurnal_period: SimDuration::from_secs(10),
            step: SimDuration::from_secs(2),
            ..AzureWorkload::default()
        },
        SweepScale::Quick => AzureWorkload::quick(),
        SweepScale::Full => AzureWorkload::default(),
    };
    let mut out = Vec::new();
    let mut bursty_rng = master.fork(1);
    out.push((
        Workload::name(&bursty),
        Workload::generate(&bursty, &mut bursty_rng).expect("built-in profile is valid"),
        Workload::horizon(&bursty).as_secs_f64(),
    ));
    let mut azure_rng = master.fork(2);
    out.push((
        azure.name(),
        azure
            .generate(&mut azure_rng)
            .expect("built-in workload is valid"),
        azure.horizon().as_secs_f64(),
    ));
    out
}

/// Runs the policy sweep: every scheduler × keepalive × scaling × balancer ×
/// platform combination over every workload, sharded over `options.racks`
/// racks, against a per-workload [`DataLayer`] so every cell pays real
/// data-movement costs.
pub fn at_scale_sweep(options: AtScaleOptions) -> AtScaleReport {
    let workloads = sweep_workloads(options.scale, options.seed);
    let balancers: Vec<LoadBalancer> = match options.balancer {
        Some(balancer) => vec![balancer],
        None => LoadBalancer::ALL.to_vec(),
    };
    let mut cells = Vec::new();
    // The end-to-end model evaluation behind ClusterSim::new depends only on
    // the platform; policy cells reuse it via `reconfigured`.
    let base_sims: Vec<ClusterSim> = SWEEP_PLATFORMS
        .iter()
        .map(|&p| ClusterSim::new(p, ClusterConfig::default()))
        .collect();
    for &(name, ref trace, _) in &workloads {
        // Placement depends only on the trace and rack count; all policy
        // cells of one workload dispatch against the same layout.
        let data = DataLayer::for_trace(trace, options.racks, options.seed ^ 0xDA7A);
        for (platform, base) in SWEEP_PLATFORMS.into_iter().zip(&base_sims) {
            for scheduler in SchedulerPolicy::ALL {
                for keepalive in KeepalivePolicy::all_default() {
                    for scaling in ScalingPolicy::all_default() {
                        for &balancer in &balancers {
                            let config = ClusterConfig {
                                scheduler,
                                keepalive,
                                scaling,
                                ..ClusterConfig::default()
                            };
                            let sim = base.reconfigured(config);
                            let (report, racks) = sim.run_sharded_with_data(
                                trace,
                                options.seed ^ 0x5EED,
                                options.racks,
                                balancer,
                                Some(&data),
                            );
                            cells.push(SweepCell {
                                workload: name,
                                platform,
                                scheduler,
                                keepalive,
                                scaling,
                                balancer,
                                requests: trace.len() as u64,
                                completed: report.completed,
                                rejected: report.rejected,
                                cold_starts: report.cold_starts,
                                prewarm_hits: report.prewarm_hits,
                                prewarm_hit_rate: report.prewarm_hit_rate(),
                                wasted_warm_s: report.wasted_warm_seconds,
                                scale_ups: report.scale_ups,
                                scale_downs: report.scale_downs,
                                scaling_lag_s: report.scaling_lag_s,
                                peak_instances: report.peak_instances,
                                locality_hit_rate: report.locality_hit_rate(),
                                cross_rack_bytes: report.cross_rack_bytes,
                                fetch_latency_s: report.fetch_latency_s,
                                mean_latency_ms: report.mean_latency_ms(),
                                p99_latency_ms: report.p99_latency_ms(),
                                peak_queue: report.peak_queue(),
                                makespan_s: report.makespan.as_secs_f64(),
                                rack_completed: racks.iter().map(|r| r.completed).collect(),
                            });
                        }
                    }
                }
            }
        }
    }
    AtScaleReport {
        options,
        workloads: workloads
            .iter()
            .map(|&(name, ref trace, horizon_s)| WorkloadSummary {
                name,
                requests: trace.len() as u64,
                horizon_s,
            })
            .collect(),
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// One shared smoke sweep: the grid is 432 cells, so tests that only
    /// *read* the report reuse a single run (the reproducibility test still
    /// performs its own two independent runs).
    fn smoke_report() -> &'static AtScaleReport {
        static REPORT: OnceLock<AtScaleReport> = OnceLock::new();
        REPORT.get_or_init(|| at_scale_sweep(AtScaleOptions::smoke()))
    }

    #[test]
    fn smoke_sweep_covers_the_whole_grid() {
        let report = smoke_report();
        // 2 workloads x 2 platforms x 3 schedulers x 4 keepalive policies
        // x 3 scaling policies x 3 balancers.
        assert_eq!(report.cells.len(), 2 * 2 * 3 * 4 * 3 * 3);
        assert_eq!(report.workloads.len(), 2);
        for cell in &report.cells {
            assert_eq!(cell.completed + cell.rejected, cell.requests);
            assert!(cell.mean_latency_ms > 0.0);
            assert_eq!(cell.rack_completed.len(), 2);
            assert!(cell.peak_instances <= 200);
            assert!((0.0..=1.0).contains(&cell.locality_hit_rate));
            assert!(cell.fetch_latency_s >= 0.0);
            if matches!(cell.scaling, ScalingPolicy::Fixed) {
                assert_eq!(cell.scale_ups, 0, "fixed racks never scale");
                assert_eq!(cell.scaling_lag_s, 0.0);
            }
        }
    }

    #[test]
    fn sweep_json_is_reproducible_and_parsable_in_shape() {
        let a = at_scale_sweep(AtScaleOptions::smoke()).to_json();
        let b = at_scale_sweep(AtScaleOptions::smoke()).to_json();
        assert_eq!(a, b, "fixed seed must reproduce byte-for-byte");
        assert!(a.starts_with('{') && a.ends_with('}'));
        assert!(a.contains("\"schema\":\"dscs-at-scale-v3\""));
        assert!(a.contains("\"workload\":\"azure\""));
        assert!(a.contains("\"keepalive\":\"hybrid-histogram\""));
        assert!(a.contains("\"keepalive\":\"hybrid-prewarm\""));
        assert!(a.contains("\"scaling\":\"reactive\""));
        assert!(a.contains("\"scaling\":\"predictive\""));
        assert!(a.contains("\"balancer\":\"locality\""));
        assert!(a.contains("\"locality_hit_rate\""));
        assert!(a.contains("\"cross_rack_bytes\""));
        let parsed = JsonValue::parse(&a).expect("report JSON parses");
        assert_eq!(
            parsed.get("schema").and_then(JsonValue::as_str),
            Some("dscs-at-scale-v3")
        );
    }

    // The locality-beats-round-robin acceptance comparison lives at the
    // integration level (tests/at_scale.rs), backed by the byte-for-byte
    // golden fixture, and is re-checked by CI's report validation — no
    // in-crate twin needed.

    #[test]
    fn dscs_outperforms_the_baseline_across_the_grid() {
        let report = smoke_report();
        for workload in ["bursty", "azure"] {
            let base: f64 = report
                .cells_for(workload, PlatformKind::BaselineCpu)
                .iter()
                .map(|c| c.mean_latency_ms)
                .sum();
            let dscs: f64 = report
                .cells_for(workload, PlatformKind::DscsDsa)
                .iter()
                .map(|c| c.mean_latency_ms)
                .sum();
            assert!(dscs < base, "{workload}: dscs {dscs} vs baseline {base}");
        }
    }
}
