//! The at-scale policy sweep: scheduler × keepalive × scaling × balancer ×
//! cold-start path × IPC transport × platform × workload, declared as a
//! [`SweepSpec`].
//!
//! Where Figure 13 fixes one policy point (FCFS, fixed keepalive, fixed
//! 200-instance racks, local data), this experiment sweeps a whole policy
//! grid over multiple workloads and multi-rack configurations, and emits a
//! machine-readable JSON report (schema `dscs-at-scale-v8`). The grid is
//! *declarative*: a [`SweepSpec`] lists the values to sweep per axis, and
//! [`at_scale_sweep`] iterates the cartesian product generically, building
//! one [`crate::experiment::Experiment`] per cell — adding an axis means
//! adding its policy enum and one list here, not rewriting the sweep. Since
//! v6 the workload axis is declarative too: a list of [`WorkloadSpec`]s, so
//! ingested Azure trace files and the synthetic generators ride the same
//! axis, every cell carries its workload's source label, and the report
//! closes with a `cross_validation` section comparing each synthetic
//! workload against each trace file cell for cell. Every
//! cell runs against a [`DataLayer`] built for its workload's trace, so
//! dispatch is data-aware: reports carry each cell's locality hit rate,
//! cross-rack bytes moved, the fetch latency charged, and (since v4) the
//! joules those moves cost — the energy axis balancers are compared on.
//!
//! Cells are independent, so [`SweepSpec::run`] fans them out across a
//! vendored `std::thread` pool ([`SweepSpec::jobs`]; `0` means one worker
//! per available core, `1` keeps the historical sequential path). Workers
//! pull cells from a shared index and write results into per-cell slots, so
//! the report always assembles in grid order: the rendered JSON is
//! byte-identical whatever the worker count. Since v5, every cell also
//! carries the engine-work counter (`events`) and — in the
//! [`AtScaleReport::to_json_with_throughput`] variant only — the measured
//! `events_per_sec` simulator throughput the perf gate tracks. Since v7,
//! every cell also carries its aggregate cold-start seconds, the
//! offline-optimal lower bound on them ([`crate::optimal`], computed once
//! per workload × platform × cold-start-path triple and shared by every
//! policy cell) and the derived `regret_pct` — how far the cell's policy
//! combination sits above what an omniscient policy could have paid on the
//! same trace. Since v8 the cold-start *modality* is an axis too: every
//! cell carries its [`ColdStartPath`] (fresh spawn / flash reload /
//! snapshot restore) and [`IpcTransport`] (shm / socket / http), plus the
//! seconds each charged (`restore_s`, `ipc_overhead_s`), and the optimal
//! bound is priced under the cell's own path so regret stays path-matched.
//! CI runs the quick version of the sweep every build, uploads the report as
//! an artifact (`BENCH_cluster.json`), and diffs it against the previous
//! run's artifact (see [`crate::perf_gate`]), giving the repo a tracked,
//! gated performance trajectory. Fixed-seed runs are byte-for-byte
//! reproducible.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

use dscs_platforms::PlatformKind;
use dscs_simcore::json::JsonValue;
use dscs_simcore::stats::Measured;

use crate::coldpath::{ColdStartPath, IpcTransport};
use crate::data::DataLayer;
use crate::experiment::{ConfigError, Experiment};
use crate::policy::{KeepalivePolicy, LoadBalancer, ScalingPolicy, SchedulerPolicy};
use crate::sim::{ClusterConfig, ClusterSim};
use crate::workload::{RealizedWorkload, WorkloadSpec};

/// How much of the full-size experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepScale {
    /// Tiny traces for unit tests (seconds of simulated time).
    Smoke,
    /// Shortened traces for CI smoke runs (a couple of simulated minutes).
    Quick,
    /// The full 20-minute traces.
    Full,
    /// The 10⁷-invocation scale: ~10⁵ functions over a multi-day horizon.
    /// Sized for the rack-parallel engine; run it with a restricted grid
    /// (see `reproduce at-scale --scale large`), not the full cartesian
    /// product.
    Large,
}

impl SweepScale {
    /// Machine-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            SweepScale::Smoke => "smoke",
            SweepScale::Quick => "quick",
            SweepScale::Full => "full",
            SweepScale::Large => "large",
        }
    }
}

/// Options for one at-scale sweep: the CLI-facing shorthand that expands
/// into a full-grid [`SweepSpec`] (restricting at most the balancer axis).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AtScaleOptions {
    /// Experiment size.
    pub scale: SweepScale,
    /// Master seed; trace generation and service jitter derive from it.
    pub seed: u64,
    /// Number of racks the front end shards over.
    pub racks: u32,
    /// Restricts the sweep to one front-end load balancer; `None` sweeps the
    /// whole balancer axis ([`LoadBalancer::ALL`]).
    pub balancer: Option<LoadBalancer>,
    /// Restricts the sweep to one cold-start path; `None` keeps the
    /// historical single-valued default ([`ColdStartPath::FlashReload`]).
    pub cold_path: Option<ColdStartPath>,
    /// Restricts the sweep to one IPC transport; `None` keeps the
    /// historical single-valued default ([`IpcTransport::SharedMem`]).
    pub ipc: Option<IpcTransport>,
    /// Worker threads for the sweep: `0` means one per available core, `1`
    /// is the sequential path. The report is byte-identical either way.
    pub jobs: usize,
    /// Rack worker threads *inside* each round-robin cell: `1` (the
    /// default) runs each cell's racks inline, `0` splits the core budget
    /// left over by `jobs`, `N` pins the count. Coupled balancers ignore it
    /// (they fall back to the sequential engine). The report is
    /// byte-identical for every value.
    pub rack_jobs: usize,
}

impl AtScaleOptions {
    /// The CI quick configuration: two racks, the full balancer axis, seed
    /// 42, one sweep worker per available core.
    pub fn quick() -> Self {
        AtScaleOptions {
            scale: SweepScale::Quick,
            seed: 42,
            racks: 2,
            balancer: None,
            cold_path: None,
            ipc: None,
            jobs: 0,
            rack_jobs: 1,
        }
    }

    /// The full-size configuration: four racks (800 instances), full
    /// balancer axis.
    pub fn full() -> Self {
        AtScaleOptions {
            racks: 4,
            scale: SweepScale::Full,
            ..AtScaleOptions::quick()
        }
    }

    /// A minimal configuration for unit tests.
    pub fn smoke() -> Self {
        AtScaleOptions {
            scale: SweepScale::Smoke,
            ..AtScaleOptions::quick()
        }
    }
}

/// A declarative sweep grid: the values to sweep, one list per axis, plus
/// the scale, seed and rack count every cell shares. [`SweepSpec::run`]
/// iterates the cartesian product in a fixed order (workload, platform,
/// scheduler, keepalive, scaling, balancer, cold-start path, IPC
/// transport), so reports are deterministic.
///
/// Adding a policy axis to the sweep is one enum (the policy itself) and one
/// list here — the iteration, cell identity and JSON rendering follow from
/// the spec instead of being hard-coded per axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Experiment size (governs the workload traces generated).
    pub scale: SweepScale,
    /// Master seed; placement and service jitter derive from it. Workload
    /// trace generation derives from the per-spec seeds on the
    /// [`SweepSpec::workloads`] axis (which [`SweepSpec::default_workloads`]
    /// and [`From<AtScaleOptions>`] keep in sync with this one).
    pub seed: u64,
    /// Number of racks the front end shards over.
    pub racks: u32,
    /// Workloads to replay, as declarative [`WorkloadSpec`]s — synthetic
    /// generators and ingested trace files ride the same axis, so a sweep
    /// can cross-validate them cell for cell.
    pub workloads: Vec<WorkloadSpec>,
    /// Platforms to compare.
    pub platforms: Vec<PlatformKind>,
    /// Scheduler policies to sweep.
    pub schedulers: Vec<SchedulerPolicy>,
    /// Keepalive policies to sweep.
    pub keepalives: Vec<KeepalivePolicy>,
    /// Instance-pool scaling policies to sweep.
    pub scalings: Vec<ScalingPolicy>,
    /// Front-end load balancers to sweep.
    pub balancers: Vec<LoadBalancer>,
    /// Cold-start paths to sweep. The default grid keeps the single
    /// historical value ([`ColdStartPath::FlashReload`]), so legacy sweeps
    /// reproduce byte for byte.
    pub cold_paths: Vec<ColdStartPath>,
    /// IPC transports to sweep. The default grid keeps the single
    /// historical value ([`IpcTransport::SharedMem`]).
    pub ipcs: Vec<IpcTransport>,
    /// Worker threads cells fan out over: `0` means one per available core
    /// ([`std::thread::available_parallelism`]), `1` runs the historical
    /// sequential path. Results are collected in grid order, so the rendered
    /// report is byte-identical for every worker count.
    pub jobs: usize,
    /// Rack worker threads *inside* each cell, the second level of
    /// parallelism: round-robin cells shard their racks over this many
    /// threads ([`crate::experiment::ExperimentBuilder::rack_jobs`]). `1`
    /// (the default) keeps each cell single-threaded, `0` splits the core
    /// budget left over by [`SweepSpec::jobs`] so the two levels compose
    /// without oversubscribing, `N` pins the count (capped at the rack
    /// count). Cells with a coupled balancer fall back to the sequential
    /// engine. The rendered report is byte-identical for every value.
    pub rack_jobs: usize,
}

impl SweepSpec {
    /// The whole default grid at `scale`: both Figure-13 platforms, every
    /// scheduler, every keepalive default, every scaling default, every
    /// balancer, two racks, seed 42.
    pub fn default_grid(scale: SweepScale) -> Self {
        SweepSpec {
            scale,
            seed: 42,
            racks: 2,
            workloads: Self::default_workloads(scale, 42),
            platforms: SWEEP_PLATFORMS.to_vec(),
            schedulers: SchedulerPolicy::ALL.to_vec(),
            keepalives: KeepalivePolicy::all_default().to_vec(),
            scalings: ScalingPolicy::all_default().to_vec(),
            balancers: LoadBalancer::ALL.to_vec(),
            cold_paths: vec![ColdStartPath::default()],
            ipcs: vec![IpcTransport::default()],
            jobs: 0,
            rack_jobs: 1,
        }
    }

    /// The historical workload pair — the paper's bursty profile and the
    /// synthetic azure generator — at `scale`, both generating from `seed`.
    pub fn default_workloads(scale: SweepScale, seed: u64) -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::Bursty { scale, seed },
            WorkloadSpec::Azure { scale, seed },
        ]
    }

    /// The worker count [`SweepSpec::run`] will actually use: `jobs`, with
    /// `0` resolved to the number of available cores.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.jobs
        }
    }

    /// The per-cell rack worker count [`SweepSpec::run`] passes to every
    /// experiment, given that `cell_jobs` sweep workers run concurrently:
    /// `rack_jobs` as written, with `0` resolved to the cores left over per
    /// sweep worker (at least one). The two parallelism levels share one
    /// worker budget — `jobs = 0, rack_jobs = 0` on an 8-core host with a
    /// 4-cell grid gives 4 sweep workers × 2 rack workers, not 8 × 8.
    pub fn effective_rack_jobs(&self, cell_jobs: usize) -> usize {
        if self.rack_jobs == 0 {
            let cores = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1);
            (cores / cell_jobs.max(1)).max(1)
        } else {
            self.rack_jobs
        }
    }

    /// Checks the spec: a sweep needs at least one rack and at least one
    /// value on every axis.
    pub fn check(&self) -> Result<(), ConfigError> {
        if self.racks == 0 {
            return Err(ConfigError::ZeroRacks);
        }
        let axes: [(&'static str, bool); 8] = [
            ("workloads", self.workloads.is_empty()),
            ("platforms", self.platforms.is_empty()),
            ("schedulers", self.schedulers.is_empty()),
            ("keepalives", self.keepalives.is_empty()),
            ("scalings", self.scalings.is_empty()),
            ("balancers", self.balancers.is_empty()),
            ("cold_paths", self.cold_paths.is_empty()),
            ("ipcs", self.ipcs.is_empty()),
        ];
        for (axis, empty) in axes {
            if empty {
                return Err(ConfigError::EmptySweepAxis { axis });
            }
        }
        Ok(())
    }

    /// Runs the sweep: one [`Experiment`] per cell of the cartesian product,
    /// against a per-workload [`DataLayer`] so every cell pays real
    /// data-movement costs.
    ///
    /// With [`SweepSpec::jobs`] other than `1`, independent cells fan out
    /// across a pool of `std::thread` workers; results land in per-cell
    /// slots and are assembled in grid order, so the report (and its JSON)
    /// is byte-identical to the sequential run.
    pub fn run(&self) -> Result<AtScaleReport, ConfigError> {
        self.check()?;
        let wall_clock = std::time::Instant::now();
        // Realize the declarative workload axis: each spec generates (or
        // ingests) its trace from its own seed, so the axis can mix
        // synthetic generators and trace files freely.
        let workloads: Vec<RealizedWorkload> = self
            .workloads
            .iter()
            .map(WorkloadSpec::realize)
            .collect::<Result<_, _>>()?;
        // The end-to-end model evaluation behind ClusterSim::new depends only
        // on the platform; policy cells reuse it via Experiment::run_on.
        let base_sims: Vec<ClusterSim> = self
            .platforms
            .iter()
            .map(|&p| ClusterSim::new(p, ClusterConfig::default()))
            .collect();
        // Placement depends only on the trace and rack count; all policy
        // cells of one workload dispatch against the same layout.
        let data_layers: Vec<Arc<DataLayer>> = workloads
            .iter()
            .map(|w| {
                Arc::new(DataLayer::for_trace(
                    &w.trace,
                    self.racks,
                    self.seed ^ 0xDA7A,
                ))
            })
            .collect();
        // The offline-optimal cold-start bound depends only on the trace,
        // the platform's cold-start pricing and the cold-start *path* that
        // prices repeat colds — never on the rest of the policy point — so
        // compute it once per (workload, platform, cold_path) triple and
        // share it across every cell, mirroring how base_sims memoizes
        // model evaluation. Each path's bound comes from a sim reconfigured
        // to that path, so regret is always measured against the cell's own
        // modality pricing.
        let optimal_bounds: Vec<Vec<Vec<f64>>> = workloads
            .iter()
            .map(|w| {
                base_sims
                    .iter()
                    .map(|sim| {
                        self.cold_paths
                            .iter()
                            .map(|&cold_path| {
                                let priced = sim.reconfigured(ClusterConfig {
                                    cold_path,
                                    ..ClusterConfig::default()
                                });
                                crate::optimal::optimal_coldstart_seconds(&w.trace, &priced)
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        // Enumerate the cartesian product up front, in grid order. Cell
        // identity lives here; workers only index into it.
        let mut points = Vec::new();
        for workload in 0..workloads.len() {
            for platform in 0..self.platforms.len() {
                for &scheduler in &self.schedulers {
                    for &keepalive in &self.keepalives {
                        for &scaling in &self.scalings {
                            for &balancer in &self.balancers {
                                for cold_path in 0..self.cold_paths.len() {
                                    for &ipc in &self.ipcs {
                                        points.push(CellPoint {
                                            workload,
                                            platform,
                                            scheduler,
                                            keepalive,
                                            scaling,
                                            balancer,
                                            cold_path,
                                            ipc,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        let jobs = self.effective_jobs().min(points.len()).max(1);
        // The second parallelism level: racks inside each round-robin cell.
        // Resolved against the sweep worker count so the two levels split
        // one core budget (the outcome is byte-identical regardless).
        let rack_jobs = self.effective_rack_jobs(jobs);
        let run_cell = |point: &CellPoint| -> Result<SweepCell, ConfigError> {
            let workload = &workloads[point.workload];
            let cold_path = self.cold_paths[point.cold_path];
            let bound = optimal_bounds[point.workload][point.platform][point.cold_path];
            let outcome = Experiment::builder(self.platforms[point.platform])
                .trace(workload.trace.clone())
                .racks(self.racks)
                .balancer(point.balancer)
                .scheduler(point.scheduler)
                .keepalive(point.keepalive)
                .scaling(point.scaling)
                .cold_path(cold_path)
                .ipc(point.ipc)
                .data_layer(data_layers[point.workload].clone())
                .seed(self.seed ^ 0x5EED)
                .optimal_coldstart(bound)
                .rack_jobs(rack_jobs)
                .build()?
                .run_on(&base_sims[point.platform]);
            let report = &outcome.report;
            Ok(SweepCell {
                workload: workload.name.clone(),
                workload_source: workload.source.clone(),
                platform: self.platforms[point.platform],
                scheduler: point.scheduler,
                keepalive: point.keepalive,
                scaling: point.scaling,
                balancer: point.balancer,
                cold_path,
                ipc: point.ipc,
                requests: workload.trace.len() as u64,
                completed: report.completed,
                rejected: report.rejected,
                cold_starts: report.cold_starts,
                coldstart_s: report.coldstart_s,
                optimal_coldstart_s: bound,
                regret_pct: crate::optimal::regret_pct(report.coldstart_s, bound),
                restore_s: report.restore_s,
                ipc_overhead_s: report.ipc_overhead_s,
                prewarm_hits: report.prewarm_hits,
                prewarm_hit_rate: report.prewarm_hit_rate(),
                wasted_warm_s: report.wasted_warm_seconds,
                scale_ups: report.scale_ups,
                scale_downs: report.scale_downs,
                scaling_lag_s: report.scaling_lag_s,
                peak_instances: report.peak_instances,
                locality_hit_rate: report.locality_hit_rate(),
                cross_rack_bytes: report.cross_rack_bytes,
                fetch_latency_s: report.fetch_latency_s,
                fetch_energy_j: report.fetch_energy_j,
                mean_latency_ms: report.mean_latency_ms(),
                p99_latency_ms: report.p99_latency_ms(),
                peak_queue: report.peak_queue(),
                makespan_s: report.makespan.as_secs_f64(),
                events: report.events,
                wall_s: report.wall_s,
                rack_completed: outcome.racks.iter().map(|r| r.completed).collect(),
            })
        };
        let cells = if jobs == 1 {
            // Sequential fallback: the historical path, stopping at the
            // first invalid cell.
            points.iter().map(run_cell).collect::<Result<Vec<_>, _>>()?
        } else {
            // Worker pool: threads pull the next unclaimed cell index and
            // drop the result into that cell's slot, so assembly below reads
            // the grid back in order no matter which worker ran what.
            let next = AtomicUsize::new(0);
            let slots: Vec<OnceLock<Result<SweepCell, ConfigError>>> =
                (0..points.len()).map(|_| OnceLock::new()).collect();
            std::thread::scope(|scope| {
                for _ in 0..jobs {
                    scope.spawn(|| loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        let Some(point) = points.get(index) else {
                            break;
                        };
                        let filled = slots[index].set(run_cell(point));
                        debug_assert!(filled.is_ok(), "cell {index} claimed twice");
                    });
                }
            });
            let mut cells = Vec::with_capacity(points.len());
            for slot in slots {
                // Propagate the first error in grid order — matching what
                // the sequential path would have reported.
                cells.push(slot.into_inner().expect("worker filled every slot")?);
            }
            cells
        };
        Ok(AtScaleReport {
            spec: self.clone(),
            workloads: workloads
                .iter()
                .map(|w| WorkloadSummary {
                    name: w.name.clone(),
                    source: w.source.clone(),
                    requests: w.trace.len() as u64,
                    horizon_s: w.horizon_s,
                })
                .collect(),
            cells,
            wall_s: Measured(wall_clock.elapsed().as_secs_f64()),
        })
    }
}

/// Grid coordinates of one sweep cell: indices into the spec's workload and
/// platform lists plus the policy point. Enumerated in grid order before any
/// worker starts.
struct CellPoint {
    workload: usize,
    platform: usize,
    scheduler: SchedulerPolicy,
    keepalive: KeepalivePolicy,
    scaling: ScalingPolicy,
    balancer: LoadBalancer,
    /// Index into the spec's `cold_paths` list (the per-path optimal-bound
    /// memo is indexed the same way).
    cold_path: usize,
    ipc: IpcTransport,
}

impl From<AtScaleOptions> for SweepSpec {
    fn from(options: AtScaleOptions) -> Self {
        SweepSpec {
            scale: options.scale,
            seed: options.seed,
            racks: options.racks,
            workloads: SweepSpec::default_workloads(options.scale, options.seed),
            balancers: match options.balancer {
                Some(balancer) => vec![balancer],
                None => LoadBalancer::ALL.to_vec(),
            },
            cold_paths: vec![options.cold_path.unwrap_or_default()],
            ipcs: vec![options.ipc.unwrap_or_default()],
            jobs: options.jobs,
            rack_jobs: options.rack_jobs,
            ..SweepSpec::default_grid(options.scale)
        }
    }
}

/// One cell of the sweep: a (workload, platform, scheduler, keepalive,
/// scaling, balancer, cold-start path, IPC transport) point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Workload name (`"bursty"`, `"azure"`, `"trace"`).
    pub workload: String,
    /// Where the workload's trace came from (`"synthetic"`,
    /// `"trace-file:<file>"`). Part of cell identity: the perf gate keys on
    /// it, so a trace-file cell is never diffed against a synthetic one.
    pub workload_source: String,
    /// Platform under test.
    pub platform: PlatformKind,
    /// Scheduler policy.
    pub scheduler: SchedulerPolicy,
    /// Keepalive policy.
    pub keepalive: KeepalivePolicy,
    /// Instance-pool scaling policy.
    pub scaling: ScalingPolicy,
    /// Front-end load balancer.
    pub balancer: LoadBalancer,
    /// Cold-start path: which modality this cell's cold starts paid.
    pub cold_path: ColdStartPath,
    /// IPC transport charged on every started invocation.
    pub ipc: IpcTransport,
    /// Requests offered by the trace.
    pub requests: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests rejected on queue overflow.
    pub rejected: u64,
    /// Requests that paid a cold start.
    pub cold_starts: u64,
    /// Aggregate cold-start seconds this cell's requests paid.
    pub coldstart_s: f64,
    /// Offline-optimal lower bound on `coldstart_s` for this cell's trace,
    /// platform and cold-start path (see [`crate::optimal`]). Identical for
    /// every policy cell of one (workload, platform, cold_path) triple, so
    /// regret is always measured against the cell's own modality pricing.
    pub optimal_coldstart_s: f64,
    /// Policy regret: how far `coldstart_s` sits above the offline bound,
    /// as a fraction of the bound (`0.0` when the bound is zero).
    pub regret_pct: f64,
    /// Seconds of `coldstart_s` paid as snapshot-restore penalties (zero
    /// unless `cold_path` is `"snapshot"`).
    pub restore_s: f64,
    /// Seconds of per-request IPC marshalling + syscall latency charged
    /// across every started invocation (zero under the default `"shm"`
    /// transport).
    pub ipc_overhead_s: f64,
    /// Invocations that found a proactively prewarmed instance.
    pub prewarm_hits: u64,
    /// Fraction of completed requests that found a prewarmed instance.
    pub prewarm_hit_rate: f64,
    /// Idle warm-seconds the keepalive policy held without a reuse.
    pub wasted_warm_s: f64,
    /// Scale-up decisions taken across all racks.
    pub scale_ups: u64,
    /// Scale-down decisions taken across all racks.
    pub scale_downs: u64,
    /// Seconds spent waiting on instance provisioning across all racks.
    pub scaling_lag_s: f64,
    /// Largest provisioned instance count any rack reached.
    pub peak_instances: u32,
    /// Fraction of started requests that ran on a rack holding a replica of
    /// their object.
    pub locality_hit_rate: f64,
    /// Bytes moved across racks by remote object fetches.
    pub cross_rack_bytes: u64,
    /// Total cross-rack fetch latency charged onto invocations (seconds).
    pub fetch_latency_s: f64,
    /// Joules spent moving those bytes across racks (fabric + remote-drive
    /// PCIe), the energy cost of non-local dispatch.
    pub fetch_energy_j: f64,
    /// Mean wall-clock latency (ms).
    pub mean_latency_ms: f64,
    /// p99 wall-clock latency (ms).
    pub p99_latency_ms: f64,
    /// Peak queued requests (per-bucket mean maximum, all racks).
    pub peak_queue: f64,
    /// Simulated makespan in seconds.
    pub makespan_s: f64,
    /// Discrete events the simulator processed for this cell — the
    /// deterministic engine-work measure behind `events_per_sec`.
    pub events: u64,
    /// Host wall-clock seconds this cell's simulation took. A measurement:
    /// excluded from cell equality and from the deterministic JSON (see
    /// [`AtScaleReport::to_json_with_throughput`]).
    pub wall_s: Measured,
    /// Requests completed per rack.
    pub rack_completed: Vec<u64>,
}

impl SweepCell {
    /// Simulator throughput for this cell: events per host wall-clock
    /// second. A measurement; zero if the cell took no measurable time.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_s.get() > 0.0 {
            self.events as f64 / self.wall_s.get()
        } else {
            0.0
        }
    }
}

/// Description of one workload used by the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSummary {
    /// Workload name.
    pub name: String,
    /// Where the trace came from (`"synthetic"`, `"trace-file:<file>"`).
    pub source: String,
    /// Number of requests in the generated trace.
    pub requests: u64,
    /// Trace horizon in seconds.
    pub horizon_s: f64,
}

/// One synthetic-vs-trace comparison: how far a trace-file workload's
/// measured behaviour sits from a synthetic generator's, aggregated over
/// every policy cell the two share. This is the cross-validation signal the
/// ingestion subsystem exists for — a simulator earns trust by reproducing
/// measured traces, not just parametric ones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossValidation {
    /// The synthetic workload's name.
    pub synthetic: String,
    /// The trace workload's source label (`"trace-file:<file>"`).
    pub trace: String,
    /// Matched policy cells the aggregates cover.
    pub cells: u64,
    /// Offered-rate delta, percent of the synthetic rate
    /// (requests-per-second, from the workload summaries).
    pub rate_delta_pct: f64,
    /// Mean-latency delta, percent of the synthetic mean (cell averages).
    pub mean_delta_pct: f64,
    /// p99-latency delta, percent of the synthetic p99 (cell averages).
    pub p99_delta_pct: f64,
    /// Locality-hit-rate delta, absolute (cell averages; both sides place
    /// data with the same seed).
    pub locality_delta: f64,
    /// Policy-regret delta, absolute difference of the averaged per-cell
    /// `regret_pct` values (trace minus synthetic). Regret is already a
    /// ratio, so the delta is reported absolutely rather than re-normalized.
    pub regret_delta: f64,
}

/// The full sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtScaleReport {
    /// The declarative grid the sweep ran.
    pub spec: SweepSpec,
    /// The workloads replayed.
    pub workloads: Vec<WorkloadSummary>,
    /// Every sweep cell, in deterministic order (workload, platform,
    /// scheduler, keepalive, scaling, balancer) — regardless of how many
    /// workers ran the sweep.
    pub cells: Vec<SweepCell>,
    /// Host wall-clock seconds the whole sweep took (trace generation,
    /// placement and all cells). A measurement: excluded from report
    /// equality and the deterministic JSON.
    pub wall_s: Measured,
}

impl AtScaleReport {
    /// The cells for one (workload, platform) pair.
    pub fn cells_for(&self, workload: &str, platform: PlatformKind) -> Vec<&SweepCell> {
        self.cells
            .iter()
            .filter(|c| c.workload == workload && c.platform == platform)
            .collect()
    }

    /// The single cell at one full policy point, if the sweep covered it.
    /// Policies are matched by their report names (`"fcfs"`,
    /// `"hybrid-prewarm"`, `"reactive"`, `"locality"`, ...). When the sweep
    /// covered several cold-start paths or IPC transports, this returns the
    /// first match in grid order; disambiguate by filtering
    /// [`AtScaleReport::cells`] on `cold_path` / `ipc` directly.
    pub fn cell(
        &self,
        workload: &str,
        platform: PlatformKind,
        scheduler: &str,
        keepalive: &str,
        scaling: &str,
        balancer: &str,
    ) -> Option<&SweepCell> {
        self.cells.iter().find(|c| {
            c.workload == workload
                && c.platform == platform
                && c.scheduler.name() == scheduler
                && c.keepalive.name() == keepalive
                && c.scaling.name() == scaling
                && c.balancer.name() == balancer
        })
    }

    /// Total discrete events the simulator processed across every cell — the
    /// deterministic engine-work measure for the whole sweep.
    pub fn total_events(&self) -> u64 {
        self.cells.iter().map(|c| c.events).sum()
    }

    /// Cross-validates every synthetic workload against every trace-file
    /// workload the sweep replayed: rate, mean/p99 latency and locality
    /// deltas aggregated over the policy cells the pair shares. Empty when
    /// the sweep ran only synthetic (or only trace) workloads.
    pub fn cross_validation(&self) -> Vec<CrossValidation> {
        let mut out = Vec::new();
        let average = |cells: &[&SweepCell], f: fn(&SweepCell) -> f64| -> f64 {
            cells.iter().map(|c| f(c)).sum::<f64>() / cells.len() as f64
        };
        for synthetic in &self.workloads {
            if synthetic.source != "synthetic" {
                continue;
            }
            for trace in &self.workloads {
                if !trace.source.starts_with("trace-file:") {
                    continue;
                }
                let pairs: Vec<(&SweepCell, &SweepCell)> = self
                    .cells
                    .iter()
                    .filter(|c| {
                        c.workload == synthetic.name && c.workload_source == synthetic.source
                    })
                    .filter_map(|s| {
                        self.cells
                            .iter()
                            .find(|t| {
                                t.workload == trace.name
                                    && t.workload_source == trace.source
                                    && t.platform == s.platform
                                    && t.scheduler == s.scheduler
                                    && t.keepalive == s.keepalive
                                    && t.scaling == s.scaling
                                    && t.balancer == s.balancer
                                    && t.cold_path == s.cold_path
                                    && t.ipc == s.ipc
                            })
                            .map(|t| (s, t))
                    })
                    .collect();
                if pairs.is_empty() {
                    continue;
                }
                let (syn_cells, trace_cells): (Vec<&SweepCell>, Vec<&SweepCell>) =
                    pairs.into_iter().unzip();
                let pct = |synthetic: f64, trace: f64| {
                    if synthetic != 0.0 {
                        (trace - synthetic) / synthetic * 100.0
                    } else {
                        0.0
                    }
                };
                let rate = |w: &WorkloadSummary| {
                    if w.horizon_s > 0.0 {
                        w.requests as f64 / w.horizon_s
                    } else {
                        0.0
                    }
                };
                out.push(CrossValidation {
                    synthetic: synthetic.name.clone(),
                    trace: trace.source.clone(),
                    cells: syn_cells.len() as u64,
                    rate_delta_pct: pct(rate(synthetic), rate(trace)),
                    mean_delta_pct: pct(
                        average(&syn_cells, |c| c.mean_latency_ms),
                        average(&trace_cells, |c| c.mean_latency_ms),
                    ),
                    p99_delta_pct: pct(
                        average(&syn_cells, |c| c.p99_latency_ms),
                        average(&trace_cells, |c| c.p99_latency_ms),
                    ),
                    locality_delta: average(&trace_cells, |c| c.locality_hit_rate)
                        - average(&syn_cells, |c| c.locality_hit_rate),
                    regret_delta: average(&trace_cells, |c| c.regret_pct)
                        - average(&syn_cells, |c| c.regret_pct),
                });
            }
        }
        out
    }

    /// Aggregate simulator throughput: total events over the sweep's wall
    /// clock. With a parallel run this measures the *engine's* delivered
    /// throughput, parallel speedup included. A measurement; zero if the
    /// sweep took no measurable time.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_s.get() > 0.0 {
            self.total_events() as f64 / self.wall_s.get()
        } else {
            0.0
        }
    }

    /// Renders the report as compact, byte-for-byte reproducible JSON:
    /// modelled results and deterministic work counters only, identical for
    /// every worker count and across repeated runs.
    pub fn to_json(&self) -> String {
        self.render_json(false)
    }

    /// Renders [`AtScaleReport::to_json`] plus the measured throughput
    /// fields: per-cell and aggregate `wall_s` / `events_per_sec`. These are
    /// host measurements and differ run to run — this is the variant
    /// `BENCH_cluster.json` ships so the perf gate can track engine speed;
    /// byte-comparisons must strip the measured keys or use
    /// [`AtScaleReport::to_json`].
    pub fn to_json_with_throughput(&self) -> String {
        self.render_json(true)
    }

    fn render_json(&self, with_throughput: bool) -> String {
        let mut root = JsonValue::object();
        root.push("schema", "dscs-at-scale-v8");
        root.push("scale", self.spec.scale.name());
        root.push("seed", self.spec.seed);
        root.push("racks", self.spec.racks);
        // The balancer axis label: one name, the historical "all" for the
        // full axis, or the joined names of a genuine subset.
        let balancer_label = match self.spec.balancers.as_slice() {
            [only] => only.name().to_string(),
            list if list.len() == LoadBalancer::ALL.len()
                && LoadBalancer::ALL.iter().all(|b| list.contains(b)) =>
            {
                "all".to_string()
            }
            list => list
                .iter()
                .map(LoadBalancer::name)
                .collect::<Vec<_>>()
                .join("+"),
        };
        root.push("balancer", balancer_label);
        root.push("total_events", self.total_events());
        if with_throughput {
            root.push("wall_s", self.wall_s.get());
            root.push("events_per_sec", self.events_per_sec());
            // The worker knobs ride in the measured section: they change
            // wall_s but never the modelled results, so — like the
            // throughput they explain — they stay out of cell identity and
            // the deterministic JSON.
            root.push("jobs", self.spec.jobs as u64);
            root.push("rack_jobs", self.spec.rack_jobs as u64);
        }
        root.push(
            "workloads",
            JsonValue::Array(
                self.workloads
                    .iter()
                    .map(|w| {
                        let mut obj = JsonValue::object();
                        obj.push("name", w.name.as_str());
                        obj.push("source", w.source.as_str());
                        obj.push("requests", w.requests);
                        obj.push("horizon_s", w.horizon_s);
                        obj
                    })
                    .collect(),
            ),
        );
        root.push(
            "cross_validation",
            JsonValue::Array(
                self.cross_validation()
                    .iter()
                    .map(|v| {
                        let mut obj = JsonValue::object();
                        obj.push("synthetic", v.synthetic.as_str());
                        obj.push("trace", v.trace.as_str());
                        obj.push("cells", v.cells);
                        obj.push("rate_delta_pct", v.rate_delta_pct);
                        obj.push("mean_delta_pct", v.mean_delta_pct);
                        obj.push("p99_delta_pct", v.p99_delta_pct);
                        obj.push("locality_delta", v.locality_delta);
                        obj.push("regret_delta", v.regret_delta);
                        obj
                    })
                    .collect(),
            ),
        );
        root.push(
            "cells",
            JsonValue::Array(
                self.cells
                    .iter()
                    .map(|c| {
                        let mut obj = JsonValue::object();
                        obj.push("workload", c.workload.as_str());
                        obj.push("workload_source", c.workload_source.as_str());
                        obj.push("platform", c.platform.name());
                        obj.push("scheduler", c.scheduler.name());
                        obj.push("keepalive", c.keepalive.name());
                        obj.push("scaling", c.scaling.name());
                        obj.push("balancer", c.balancer.name());
                        obj.push("cold_path", c.cold_path.name());
                        obj.push("ipc", c.ipc.name());
                        obj.push("requests", c.requests);
                        obj.push("completed", c.completed);
                        obj.push("rejected", c.rejected);
                        obj.push("cold_starts", c.cold_starts);
                        obj.push("coldstart_s", c.coldstart_s);
                        obj.push("optimal_coldstart_s", c.optimal_coldstart_s);
                        obj.push("regret_pct", c.regret_pct);
                        obj.push("restore_s", c.restore_s);
                        obj.push("ipc_overhead_s", c.ipc_overhead_s);
                        obj.push("prewarm_hits", c.prewarm_hits);
                        obj.push("prewarm_hit_rate", c.prewarm_hit_rate);
                        obj.push("wasted_warm_s", c.wasted_warm_s);
                        obj.push("scale_ups", c.scale_ups);
                        obj.push("scale_downs", c.scale_downs);
                        obj.push("scaling_lag_s", c.scaling_lag_s);
                        obj.push("peak_instances", c.peak_instances);
                        obj.push("locality_hit_rate", c.locality_hit_rate);
                        obj.push("cross_rack_bytes", c.cross_rack_bytes);
                        obj.push("fetch_latency_s", c.fetch_latency_s);
                        obj.push("fetch_energy_j", c.fetch_energy_j);
                        obj.push("mean_latency_ms", c.mean_latency_ms);
                        obj.push("p99_latency_ms", c.p99_latency_ms);
                        obj.push("peak_queue", c.peak_queue);
                        obj.push("makespan_s", c.makespan_s);
                        obj.push("events", c.events);
                        if with_throughput {
                            obj.push("wall_s", c.wall_s.get());
                            obj.push("events_per_sec", c.events_per_sec());
                        }
                        obj.push("rack_completed", c.rack_completed.clone());
                        obj
                    })
                    .collect(),
            ),
        );
        root.render()
    }
}

/// The platforms the sweep compares (the Figure 13 pair).
pub const SWEEP_PLATFORMS: [PlatformKind; 2] = [PlatformKind::BaselineCpu, PlatformKind::DscsDsa];

/// Runs the policy sweep the options describe: every scheduler × keepalive ×
/// scaling × balancer × platform combination over every workload, sharded
/// over `options.racks` racks, against a per-workload [`DataLayer`] so every
/// cell pays real data-movement costs. Shorthand for
/// `SweepSpec::from(options).run()`.
///
/// # Panics
/// Panics (naming the violation) on invalid options — in practice only
/// `racks == 0`, since the expanded spec's axes are never empty. Call
/// [`SweepSpec::run`] directly to handle the error instead.
pub fn at_scale_sweep(options: AtScaleOptions) -> AtScaleReport {
    SweepSpec::from(options)
        .run()
        .unwrap_or_else(|err| panic!("invalid at-scale options: {err}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// One shared smoke sweep: the grid is 432 cells, so tests that only
    /// *read* the report reuse a single run (the reproducibility test still
    /// performs its own two independent runs).
    fn smoke_report() -> &'static AtScaleReport {
        static REPORT: OnceLock<AtScaleReport> = OnceLock::new();
        REPORT.get_or_init(|| at_scale_sweep(AtScaleOptions::smoke()))
    }

    #[test]
    fn smoke_sweep_covers_the_whole_grid() {
        let report = smoke_report();
        // 2 workloads x 2 platforms x 3 schedulers x 4 keepalive policies
        // x 3 scaling policies x 3 balancers x 1 cold path x 1 transport
        // (the modality axes default to single values, so the legacy grid
        // size is unchanged).
        assert_eq!(report.cells.len(), 2 * 2 * 3 * 4 * 3 * 3);
        assert_eq!(report.workloads.len(), 2);
        for cell in &report.cells {
            assert_eq!(cell.completed + cell.rejected, cell.requests);
            assert!(cell.mean_latency_ms > 0.0);
            assert_eq!(cell.rack_completed.len(), 2);
            assert!(cell.peak_instances <= 200);
            assert!((0.0..=1.0).contains(&cell.locality_hit_rate));
            assert!(cell.fetch_latency_s >= 0.0);
            assert!(cell.fetch_energy_j >= 0.0);
            assert!(cell.coldstart_s >= 0.0 && cell.coldstart_s.is_finite());
            assert!(cell.optimal_coldstart_s > 0.0 && cell.optimal_coldstart_s.is_finite());
            // Exact in real arithmetic; one part in 1e9 absorbs
            // summation-order ulp noise between the two accumulations.
            assert!(
                cell.coldstart_s >= cell.optimal_coldstart_s * (1.0 - 1e-9),
                "the offline bound must floor every policy: {} vs {}",
                cell.coldstart_s,
                cell.optimal_coldstart_s
            );
            assert!(cell.regret_pct >= 0.0 && cell.regret_pct.is_finite());
            assert_eq!(cell.cold_path, ColdStartPath::FlashReload);
            assert_eq!(cell.ipc, IpcTransport::SharedMem);
            assert_eq!(cell.restore_s, 0.0, "flash path never restores");
            assert_eq!(cell.ipc_overhead_s, 0.0, "shm transport is free");
            if cell.cross_rack_bytes > 0 {
                assert!(cell.fetch_energy_j > 0.0, "moved bytes must cost joules");
            }
            if matches!(cell.scaling, ScalingPolicy::Fixed) {
                assert_eq!(cell.scale_ups, 0, "fixed racks never scale");
                assert_eq!(cell.scaling_lag_s, 0.0);
            }
        }
    }

    #[test]
    fn sweep_json_is_reproducible_and_parsable_in_shape() {
        let a = at_scale_sweep(AtScaleOptions::smoke()).to_json();
        let b = at_scale_sweep(AtScaleOptions::smoke()).to_json();
        assert_eq!(a, b, "fixed seed must reproduce byte-for-byte");
        assert!(a.starts_with('{') && a.ends_with('}'));
        assert!(a.contains("\"schema\":\"dscs-at-scale-v8\""));
        assert!(a.contains("\"coldstart_s\""));
        assert!(a.contains("\"optimal_coldstart_s\""));
        assert!(a.contains("\"regret_pct\""));
        assert!(a.contains("\"cold_path\":\"flash\""));
        assert!(a.contains("\"ipc\":\"shm\""));
        assert!(a.contains("\"restore_s\""));
        assert!(a.contains("\"ipc_overhead_s\""));
        assert!(a.contains("\"total_events\""));
        assert!(a.contains("\"events\""));
        assert!(
            !a.contains("\"events_per_sec\"") && !a.contains("\"wall_s\""),
            "measured throughput must stay out of the deterministic JSON"
        );
        assert!(a.contains("\"workload\":\"azure\""));
        assert!(a.contains("\"workload_source\":\"synthetic\""));
        assert!(
            a.contains("\"cross_validation\":[]"),
            "an all-synthetic sweep carries an empty cross-validation section"
        );
        assert!(a.contains("\"keepalive\":\"hybrid-histogram\""));
        assert!(a.contains("\"keepalive\":\"hybrid-prewarm\""));
        assert!(a.contains("\"scaling\":\"reactive\""));
        assert!(a.contains("\"scaling\":\"predictive\""));
        assert!(a.contains("\"balancer\":\"locality\""));
        assert!(a.contains("\"locality_hit_rate\""));
        assert!(a.contains("\"cross_rack_bytes\""));
        assert!(a.contains("\"fetch_energy_j\""));
        let parsed = JsonValue::parse(&a).expect("report JSON parses");
        assert_eq!(
            parsed.get("schema").and_then(JsonValue::as_str),
            Some("dscs-at-scale-v8")
        );
    }

    /// The throughput JSON variant is the deterministic report plus the
    /// measured keys, per cell and in aggregate.
    #[test]
    fn throughput_json_adds_measured_fields_on_top_of_the_deterministic_report() {
        let report = smoke_report();
        let json = report.to_json_with_throughput();
        let parsed = JsonValue::parse(&json).expect("throughput JSON parses");
        assert!(parsed.get("wall_s").is_some());
        assert!(parsed.get("events_per_sec").is_some());
        assert_eq!(
            parsed.get("total_events").and_then(JsonValue::as_f64),
            Some(report.total_events() as f64)
        );
        assert!(report.total_events() > 0);
        assert!(report.events_per_sec() > 0.0);
        for cell in &report.cells {
            assert!(cell.events > 0);
        }
        // Stripping nothing but the measured keys recovers the deterministic
        // report's information; cheap proxy: the deterministic JSON carries
        // no measured keys and both parse to the same cell count.
        let deterministic = report.to_json();
        assert!(!deterministic.contains("\"events_per_sec\""));
        assert!(json.len() > deterministic.len());
    }

    /// In-crate spot check of the tentpole guarantee (the full matrix lives
    /// in `tests/parallel_equivalence.rs`): a pooled run renders exactly the
    /// bytes the sequential run does.
    #[test]
    fn parallel_sweep_matches_sequential_bytes() {
        let spec = SweepSpec {
            platforms: vec![PlatformKind::DscsDsa],
            schedulers: vec![SchedulerPolicy::Fcfs],
            keepalives: vec![KeepalivePolicy::paper_default()],
            jobs: 1,
            ..SweepSpec::default_grid(SweepScale::Smoke)
        };
        let sequential = spec.run().expect("valid spec").to_json();
        let parallel = SweepSpec { jobs: 3, ..spec }
            .run()
            .expect("valid spec")
            .to_json();
        assert_eq!(sequential, parallel);
    }

    /// In-crate spot check of the second parallelism level: sharding each
    /// round-robin cell's racks over threads renders exactly the bytes the
    /// rack-sequential sweep does, and the knob never leaks into the
    /// deterministic JSON (it rides in the measured section instead).
    #[test]
    fn rack_parallel_sweep_matches_rack_sequential_bytes() {
        let spec = SweepSpec {
            platforms: vec![PlatformKind::DscsDsa],
            schedulers: vec![SchedulerPolicy::Fcfs],
            keepalives: vec![KeepalivePolicy::paper_default()],
            jobs: 1,
            rack_jobs: 1,
            ..SweepSpec::default_grid(SweepScale::Smoke)
        };
        let sequential = spec.run().expect("valid spec").to_json();
        for rack_jobs in [2, 0] {
            let report = SweepSpec {
                rack_jobs,
                ..spec.clone()
            }
            .run()
            .expect("valid spec");
            assert_eq!(sequential, report.to_json(), "rack_jobs={rack_jobs}");
            assert!(!report.to_json().contains("\"rack_jobs\""));
            assert!(report.to_json_with_throughput().contains("\"rack_jobs\""));
        }
    }

    /// The two worker levels split one core budget: `rack_jobs = 0` resolves
    /// to the cores left over per sweep worker, never below one.
    #[test]
    fn rack_jobs_zero_splits_the_core_budget_with_the_sweep_workers() {
        let spec = SweepSpec {
            rack_jobs: 0,
            ..SweepSpec::default_grid(SweepScale::Smoke)
        };
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(spec.effective_rack_jobs(1), cores);
        assert_eq!(spec.effective_rack_jobs(cores), 1);
        assert_eq!(spec.effective_rack_jobs(cores * 4), 1, "never below one");
        let pinned = SweepSpec {
            rack_jobs: 3,
            ..spec
        };
        assert_eq!(pinned.effective_rack_jobs(cores), 3, "non-zero is literal");
    }

    // The locality-beats-round-robin acceptance comparison lives at the
    // integration level (tests/at_scale.rs), backed by the byte-for-byte
    // golden fixture, and is re-checked by CI's report validation — no
    // in-crate twin needed.

    #[test]
    fn dscs_outperforms_the_baseline_across_the_grid() {
        let report = smoke_report();
        for workload in ["bursty", "azure"] {
            let base: f64 = report
                .cells_for(workload, PlatformKind::BaselineCpu)
                .iter()
                .map(|c| c.mean_latency_ms)
                .sum();
            let dscs: f64 = report
                .cells_for(workload, PlatformKind::DscsDsa)
                .iter()
                .map(|c| c.mean_latency_ms)
                .sum();
            assert!(dscs < base, "{workload}: dscs {dscs} vs baseline {base}");
        }
    }

    #[test]
    fn sweep_spec_expands_options_and_validates_axes() {
        let spec = SweepSpec::from(AtScaleOptions::quick());
        assert_eq!(spec.balancers.len(), LoadBalancer::ALL.len());
        assert_eq!(spec.check(), Ok(()));
        let restricted = SweepSpec::from(AtScaleOptions {
            balancer: Some(LoadBalancer::LeastLoaded),
            ..AtScaleOptions::quick()
        });
        assert_eq!(restricted.balancers, vec![LoadBalancer::LeastLoaded]);
        assert_eq!(spec.cold_paths, vec![ColdStartPath::FlashReload]);
        assert_eq!(spec.ipcs, vec![IpcTransport::SharedMem]);
        let pathed = SweepSpec::from(AtScaleOptions {
            cold_path: Some(ColdStartPath::SnapshotRestore),
            ipc: Some(IpcTransport::Http),
            ..AtScaleOptions::quick()
        });
        assert_eq!(pathed.cold_paths, vec![ColdStartPath::SnapshotRestore]);
        assert_eq!(pathed.ipcs, vec![IpcTransport::Http]);

        let empty_axis = SweepSpec {
            schedulers: Vec::new(),
            ..SweepSpec::default_grid(SweepScale::Smoke)
        };
        assert_eq!(
            empty_axis.check(),
            Err(ConfigError::EmptySweepAxis { axis: "schedulers" })
        );
        let empty_paths = SweepSpec {
            cold_paths: Vec::new(),
            ..SweepSpec::default_grid(SweepScale::Smoke)
        };
        assert_eq!(
            empty_paths.check(),
            Err(ConfigError::EmptySweepAxis { axis: "cold_paths" })
        );
        assert!(empty_axis.run().is_err());
        let zero_racks = SweepSpec {
            racks: 0,
            ..SweepSpec::default_grid(SweepScale::Smoke)
        };
        assert_eq!(zero_racks.check(), Err(ConfigError::ZeroRacks));
    }

    #[test]
    fn workloads_are_a_declarative_axis_with_cross_validation() {
        let empty = SweepSpec {
            workloads: Vec::new(),
            ..SweepSpec::default_grid(SweepScale::Smoke)
        };
        assert_eq!(
            empty.check(),
            Err(ConfigError::EmptySweepAxis { axis: "workloads" })
        );

        // A two-cell grid over a synthetic workload and the same trace
        // relabeled as a trace file: cross-validation pairs them, and since
        // the traces are identical the deltas collapse to zero.
        let azure = WorkloadSpec::Azure {
            scale: SweepScale::Smoke,
            seed: 42,
        };
        let realized = azure.realize().expect("valid spec");
        let relabeled = WorkloadSpec::Inline {
            name: "trace".into(),
            source: "trace-file:self.csv".into(),
            horizon_s: realized.horizon_s,
            trace: realized.trace.clone(),
        };
        let spec = SweepSpec {
            workloads: vec![azure, relabeled],
            platforms: vec![PlatformKind::DscsDsa],
            schedulers: vec![SchedulerPolicy::Fcfs],
            keepalives: vec![KeepalivePolicy::paper_default()],
            scalings: vec![ScalingPolicy::Fixed],
            balancers: vec![LoadBalancer::locality_default()],
            ..SweepSpec::default_grid(SweepScale::Smoke)
        };
        let report = spec.run().expect("valid spec");
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.workloads[1].source, "trace-file:self.csv");
        let validation = report.cross_validation();
        assert_eq!(validation.len(), 1);
        let v = &validation[0];
        assert_eq!(
            (v.synthetic.as_str(), v.trace.as_str(), v.cells),
            ("azure", "trace-file:self.csv", 1)
        );
        assert_eq!(v.rate_delta_pct, 0.0);
        assert_eq!(v.mean_delta_pct, 0.0);
        assert_eq!(v.p99_delta_pct, 0.0);
        assert_eq!(v.locality_delta, 0.0);
        assert_eq!(v.regret_delta, 0.0);
        let json = report.to_json();
        assert!(json.contains("\"workload_source\":\"trace-file:self.csv\""));
        assert!(json.contains("\"cross_validation\":[{\"synthetic\":\"azure\""));
    }

    /// The report's balancer label reflects the swept list: one name, "all"
    /// only for the full axis, and the joined names for a genuine subset.
    #[test]
    fn balancer_label_distinguishes_subsets_from_the_full_axis() {
        let spec = SweepSpec {
            platforms: vec![PlatformKind::DscsDsa],
            schedulers: vec![SchedulerPolicy::Fcfs],
            keepalives: vec![KeepalivePolicy::paper_default()],
            scalings: vec![ScalingPolicy::Fixed],
            ..SweepSpec::default_grid(SweepScale::Smoke)
        };
        let label = |balancers: Vec<LoadBalancer>| {
            SweepSpec {
                balancers,
                ..spec.clone()
            }
            .run()
            .expect("valid spec")
            .to_json()
        };
        assert!(label(vec![LoadBalancer::RoundRobin]).contains("\"balancer\":\"round-robin\""));
        assert!(label(LoadBalancer::ALL.to_vec()).contains("\"balancer\":\"all\""));
        assert!(
            label(vec![LoadBalancer::RoundRobin, LoadBalancer::LeastLoaded])
                .contains("\"balancer\":\"round-robin+least-loaded\"")
        );
    }

    /// A restricted spec sweeps exactly its listed values: the declarative
    /// grid is what runs, not a hard-coded axis set.
    #[test]
    fn restricted_sweep_spec_runs_only_its_lists() {
        let spec = SweepSpec {
            platforms: vec![PlatformKind::DscsDsa],
            schedulers: vec![SchedulerPolicy::Fcfs],
            keepalives: vec![KeepalivePolicy::paper_default()],
            scalings: vec![ScalingPolicy::Fixed, ScalingPolicy::reactive_default()],
            balancers: vec![LoadBalancer::locality_default()],
            ..SweepSpec::default_grid(SweepScale::Smoke)
        };
        let report = spec.run().expect("valid spec");
        // 2 workloads x 1 platform x 1 scheduler x 1 keepalive x 2 scalings
        // x 1 balancer.
        assert_eq!(report.cells.len(), 4);
        assert!(report
            .cells
            .iter()
            .all(|c| c.platform == PlatformKind::DscsDsa
                && c.balancer.name() == "locality"
                && c.scheduler.name() == "fcfs"));
        assert_eq!(report.spec, spec);
    }

    /// The modality axes sweep like any other: a 3-path × 3-transport grid
    /// produces one cell per combination, each cell's optimal bound is
    /// priced under its own cold-start path (so regret stays well-defined),
    /// and the new cost columns light up exactly where their modality runs.
    #[test]
    fn cold_path_and_ipc_sweep_as_first_class_axes() {
        let spec = SweepSpec {
            workloads: vec![WorkloadSpec::Azure {
                scale: SweepScale::Smoke,
                seed: 42,
            }],
            platforms: vec![PlatformKind::DscsDsa],
            schedulers: vec![SchedulerPolicy::Fcfs],
            keepalives: vec![KeepalivePolicy::NoKeepalive],
            scalings: vec![ScalingPolicy::Fixed],
            balancers: vec![LoadBalancer::RoundRobin],
            cold_paths: ColdStartPath::ALL.to_vec(),
            ipcs: IpcTransport::ALL.to_vec(),
            ..SweepSpec::default_grid(SweepScale::Smoke)
        };
        let report = spec.run().expect("valid spec");
        assert_eq!(report.cells.len(), 9);
        let at = |path: ColdStartPath, ipc: IpcTransport| {
            report
                .cells
                .iter()
                .find(|c| c.cold_path == path && c.ipc == ipc)
                .expect("grid covers every (path, ipc) combination")
        };
        for cell in &report.cells {
            // The offline bound must floor every cell under its own pricing.
            assert!(
                cell.coldstart_s >= cell.optimal_coldstart_s * (1.0 - 1e-9),
                "{}/{}: {} vs bound {}",
                cell.cold_path.name(),
                cell.ipc.name(),
                cell.coldstart_s,
                cell.optimal_coldstart_s
            );
            // Modality costs light up only where their modality runs.
            assert_eq!(
                cell.restore_s > 0.0,
                cell.cold_path == ColdStartPath::SnapshotRestore && cell.cold_starts > 1,
                "restore seconds iff snapshot repeat colds"
            );
            assert_eq!(
                cell.ipc_overhead_s > 0.0,
                cell.ipc != IpcTransport::SharedMem
            );
        }
        // The no-keepalive smoke run pays plenty of repeat colds, so the
        // modality orderings are visible end to end: snapshot restore beats
        // flash reload beats fresh spawn on aggregate cold-start seconds,
        // and pricier transports charge more IPC seconds.
        let (snapshot, flash, fresh) = (
            at(ColdStartPath::SnapshotRestore, IpcTransport::SharedMem),
            at(ColdStartPath::FlashReload, IpcTransport::SharedMem),
            at(ColdStartPath::FreshSpawn, IpcTransport::SharedMem),
        );
        assert!(snapshot.coldstart_s < flash.coldstart_s);
        assert!(flash.coldstart_s < fresh.coldstart_s);
        // At the zero warm-memory price the sweep bounds with, hindsight
        // keeps every container warm and pays only the per-function first
        // cold starts — which cost the full registry spawn under every
        // path — so the bound is path-invariant and the cheaper modality
        // shows up purely as lower regret. (The path-aware repeat pricing
        // is exercised by `optimal_coldstart_seconds_with`; see
        // `crate::optimal`.)
        assert_eq!(snapshot.optimal_coldstart_s, fresh.optimal_coldstart_s);
        assert!(snapshot.regret_pct < fresh.regret_pct);
        let http = at(ColdStartPath::FlashReload, IpcTransport::Http);
        let socket = at(ColdStartPath::FlashReload, IpcTransport::UnixSocket);
        assert!(http.ipc_overhead_s > socket.ipc_overhead_s);
        assert!(http.mean_latency_ms >= flash.mean_latency_ms);
        let json = report.to_json();
        assert!(json.contains("\"cold_path\":\"snapshot\""));
        assert!(json.contains("\"ipc\":\"http\""));
    }
}
