//! Cold-start paths and request-path IPC transports — the two modality axes
//! of the cold-start subsystem.
//!
//! The paper prices cold starts by exactly two modalities: a fresh registry
//! spawn and the DSCS flash image reload. Production platforms ship a third
//! — CRIU-style process-snapshot restore — and differ on how the gateway
//! hands each request to the function runtime (shared-memory ring buffer,
//! Unix domain socket, or a local HTTP hop). Both choices are quantitative:
//! whether prewarming beats fast-restore, and how much the request-path
//! transport taxes every invocation, depend on the workload's idle-gap
//! distribution. This module makes them first-class swept axes:
//!
//! * [`ColdStartPath`] — which modality a cold start pays. `flash` (the
//!   default) reproduces the historical DSCS behaviour byte for byte;
//!   `fresh` always pays the registry spawn; `snapshot` restores repeat cold
//!   starts from a local process snapshot (the *first* cold start anywhere
//!   still pays the full registry spawn — there is nothing to snapshot yet).
//! * [`IpcTransport`] — the per-request marshalling + syscall latency
//!   charged on *every* started invocation, warm and cold. `shm` (the
//!   default) is modelled as free, so default-configured runs reproduce the
//!   historical numbers exactly.

use serde::{Deserialize, Serialize};

use dscs_simcore::time::SimDuration;

/// Which modality a cold start pays (see [`dscs_faas::coldstart`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColdStartPath {
    /// Every cold start pays the full registry pull + unpack + boot, even
    /// when the image sits on the drive's flash — the no-reuse baseline.
    FreshSpawn,
    /// The historical DSCS path: in-storage platforms reload evicted images
    /// from the drive's flash; everyone else re-pulls from the registry.
    FlashReload,
    /// Repeat cold starts restore a CRIU-style process snapshot from local
    /// storage (restore stream + page-fault warmup tail); the first cold
    /// start of a function still pays the full registry spawn, since no
    /// snapshot exists until the function has run once.
    SnapshotRestore,
}

impl ColdStartPath {
    /// Every cold-start path.
    pub const ALL: [ColdStartPath; 3] = [
        ColdStartPath::FreshSpawn,
        ColdStartPath::FlashReload,
        ColdStartPath::SnapshotRestore,
    ];

    /// Machine-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ColdStartPath::FreshSpawn => "fresh",
            ColdStartPath::FlashReload => "flash",
            ColdStartPath::SnapshotRestore => "snapshot",
        }
    }

    /// Parses a report name back into the path.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl Default for ColdStartPath {
    /// The historical DSCS behaviour.
    fn default() -> Self {
        ColdStartPath::FlashReload
    }
}

/// How the gateway hands each request to the function runtime.
///
/// The cost is charged per *started* invocation — warm and cold alike — and
/// covers argument marshalling plus the transport's syscall/protocol round
/// trip. Calibration follows published local-IPC microbenchmarks: a mapped
/// shared-memory ring buffer costs well under a microsecond (modelled as
/// free at this simulator's resolution), a Unix domain socket round trip
/// with copy-in/copy-out lands in the tens of microseconds, and a loopback
/// HTTP hop with header parse in the hundreds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IpcTransport {
    /// Shared-memory ring buffer: zero modelled latency (sub-microsecond in
    /// practice, below the simulator's resolution of interest).
    SharedMem,
    /// Unix domain socket: two syscalls plus a kernel copy each way.
    UnixSocket,
    /// Local HTTP hop: socket cost plus request framing and header parse.
    Http,
}

impl IpcTransport {
    /// Every IPC transport.
    pub const ALL: [IpcTransport; 3] = [
        IpcTransport::SharedMem,
        IpcTransport::UnixSocket,
        IpcTransport::Http,
    ];

    /// Machine-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            IpcTransport::SharedMem => "shm",
            IpcTransport::UnixSocket => "socket",
            IpcTransport::Http => "http",
        }
    }

    /// Parses a report name back into the transport.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|t| t.name() == name)
    }

    /// The marshalling + syscall latency charged on every started
    /// invocation. Exactly zero for [`IpcTransport::SharedMem`], so
    /// default-configured runs reproduce the historical numbers byte for
    /// byte.
    pub fn per_request_cost(&self) -> SimDuration {
        match self {
            IpcTransport::SharedMem => SimDuration::ZERO,
            IpcTransport::UnixSocket => SimDuration::from_micros(25),
            IpcTransport::Http => SimDuration::from_micros(250),
        }
    }
}

impl Default for IpcTransport {
    /// The cheapest transport — and the historical (uncharged) behaviour.
    fn default() -> Self {
        IpcTransport::SharedMem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for path in ColdStartPath::ALL {
            assert_eq!(ColdStartPath::from_name(path.name()), Some(path));
        }
        for ipc in IpcTransport::ALL {
            assert_eq!(IpcTransport::from_name(ipc.name()), Some(ipc));
        }
        assert_eq!(ColdStartPath::from_name("warp-drive"), None);
        assert_eq!(IpcTransport::from_name("pigeon"), None);
    }

    #[test]
    fn defaults_are_the_historical_behaviour() {
        assert_eq!(ColdStartPath::default(), ColdStartPath::FlashReload);
        assert_eq!(IpcTransport::default(), IpcTransport::SharedMem);
        assert_eq!(
            IpcTransport::default().per_request_cost(),
            SimDuration::ZERO,
            "the default transport must not perturb legacy numbers"
        );
    }

    #[test]
    fn transport_costs_are_strictly_ordered() {
        let shm = IpcTransport::SharedMem.per_request_cost();
        let socket = IpcTransport::UnixSocket.per_request_cost();
        let http = IpcTransport::Http.per_request_cost();
        assert!(shm < socket && socket < http);
        // Micro-scale costs: per request, never milliseconds.
        assert!(http.as_micros_f64() < 1000.0);
        assert!(socket.as_micros_f64() >= 10.0);
    }
}
