//! The cluster's data-placement layer: couples
//! [`dscs_storage::object_store::ObjectStore`] into dispatch.
//!
//! The paper's core claim is that pushing compute into the storage drives
//! wins because the data does not move — so the cluster simulation has to
//! know where each request's data *is*. [`DataLayer`] pre-populates a
//! rack-aware object store with every object a trace touches (each rack owns
//! a pod of storage nodes; replicas stay in their home rack, the data-gravity
//! layout the in-storage execution model assumes), then answers the two
//! questions the simulator asks on the hot path:
//!
//! * which racks hold a replica of this request's object (the locality-aware
//!   balancer's dispatch input), and
//! * what a non-local rack pays to fetch the object — the
//!   [`RemoteFetchModel`] price over the network/RPC stack and the drive's
//!   PCIe hop, replacing the old assumption that every rack reads locally.
//!
//! Placement is deterministic: the same trace, rack count and seed reproduce
//! the same layout, so sharded runs stay byte-for-byte reproducible.

use std::collections::HashMap;

use dscs_simcore::quantity::Bytes;
use dscs_simcore::rng::DeterministicRng;
use dscs_simcore::time::SimDuration;
use dscs_storage::object_store::{ObjectStore, RemoteFetchModel};

use crate::trace::TraceRequest;
use crate::workload::ObjectCatalog;

/// Storage pod each rack contributes to the store.
const CONVENTIONAL_PER_RACK: u32 = 4;
const DSCS_PER_RACK: u32 = 2;
/// Replication factor of the trace's objects.
const REPLICATION: usize = 3;
/// Replicas stay within the object's home rack (data gravity): in-storage
/// acceleration only pays off where the bytes already are.
const RACK_SPREAD: u32 = 1;

/// What one cross-rack fetch of a given size costs: the wall-clock latency
/// charged onto the invocation and the joules the fabric and remote drive
/// spend moving the bytes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FetchCost {
    pub(crate) latency: SimDuration,
    pub(crate) energy_j: f64,
}

/// The placement of every object one trace touches, plus the fetch-cost
/// model charged when a request runs on a rack without a replica.
#[derive(Debug, Clone)]
pub struct DataLayer {
    store: ObjectStore,
    racks: u32,
    /// (function, object) -> sorted racks holding a replica.
    placement: HashMap<(u32, u32), Vec<u32>>,
    fetch: RemoteFetchModel,
    /// Memoized per-size fetch costs (object sizes come from a small
    /// deterministic set, so the hot path never re-prices a fetch).
    fetch_costs: HashMap<Bytes, FetchCost>,
}

impl FetchCost {
    fn of(fetch: &RemoteFetchModel, size: Bytes) -> FetchCost {
        FetchCost {
            latency: fetch.fetch_latency(size),
            energy_j: fetch.fetch_energy_joules(size),
        }
    }
}

impl DataLayer {
    /// Builds the layer for `trace` over `racks` racks: a rack-aware store
    /// (every rack holds 4 conventional + 2 DSCS storage nodes), populated
    /// with each distinct object the trace reads, in trace order, from a
    /// placement RNG derived from `seed`.
    ///
    /// # Panics
    /// Panics if `racks` is zero.
    pub fn for_trace(trace: &[TraceRequest], racks: u32, seed: u64) -> DataLayer {
        let mut store = ObjectStore::with_rack_layout(
            racks,
            CONVENTIONAL_PER_RACK,
            DSCS_PER_RACK,
            REPLICATION,
            RACK_SPREAD,
        );
        let mut rng = DeterministicRng::seeded(seed);
        let fetch = RemoteFetchModel::datacenter_default();
        let mut placement: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
        let mut fetch_costs: HashMap<Bytes, FetchCost> = HashMap::new();
        for request in trace {
            let ident = (request.function, request.object);
            if placement.contains_key(&ident) {
                continue;
            }
            let key = ObjectCatalog::key(request.function, request.object);
            // Every benchmark is an ML pipeline over its stored input, so
            // every object is acceleratable: its primary replica lands on a
            // DSCS drive of the home rack.
            store
                .put(&key, request.object_bytes, true, &mut rng)
                .expect("rack layout always has DSCS nodes");
            let racks_holding = store.racks_holding(&key).expect("object just placed");
            placement.insert(ident, racks_holding);
            fetch_costs
                .entry(request.object_bytes)
                .or_insert_with(|| FetchCost::of(&fetch, request.object_bytes));
        }
        DataLayer {
            store,
            racks,
            placement,
            fetch,
            fetch_costs,
        }
    }

    /// Number of racks the layer spans.
    pub fn rack_count(&self) -> u32 {
        self.racks
    }

    /// The underlying object store.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// Number of distinct objects placed.
    pub fn object_count(&self) -> usize {
        self.placement.len()
    }

    /// The sorted racks holding a replica of `(function, object)`; empty for
    /// objects the layer never placed.
    pub fn replica_racks(&self, function: u32, object: u32) -> &[u32] {
        self.placement
            .get(&(function, object))
            .map_or(&[], Vec::as_slice)
    }

    /// Whether `rack` holds a replica of `(function, object)`.
    pub fn holds(&self, function: u32, object: u32, rack: u32) -> bool {
        self.replica_racks(function, object).contains(&rack)
    }

    /// The memoized (or, for sizes the trace never read, freshly priced)
    /// cost of fetching `size` bytes from a remote rack. The simulator's hot
    /// path uses this directly so one lookup yields both charges.
    pub(crate) fn fetch_cost(&self, size: Bytes) -> FetchCost {
        self.fetch_costs
            .get(&size)
            .copied()
            .unwrap_or_else(|| FetchCost::of(&self.fetch, size))
    }

    /// The deterministic latency a rack without a replica pays to fetch
    /// `size` bytes from a remote rack.
    pub fn fetch_latency(&self, size: Bytes) -> SimDuration {
        self.fetch_cost(size).latency
    }

    /// The joules the fabric and the remote drive's PCIe hop spend moving
    /// `size` bytes across racks (the energy side of [`DataLayer::fetch_latency`]).
    pub fn fetch_energy_joules(&self, size: Bytes) -> f64 {
        self.fetch_cost(size).energy_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RateProfile;
    use crate::workload::Workload;

    fn short_trace(seed: u64) -> Vec<TraceRequest> {
        let profile = RateProfile {
            segments: vec![(SimDuration::from_secs(5), 120.0)],
        };
        Workload::generate(&profile, &mut DeterministicRng::seeded(seed)).expect("valid")
    }

    #[test]
    fn covers_every_object_the_trace_reads() {
        let trace = short_trace(1);
        let data = DataLayer::for_trace(&trace, 3, 7);
        assert!(data.object_count() > 0);
        for request in &trace {
            let racks = data.replica_racks(request.function, request.object);
            assert!(!racks.is_empty(), "request {} unplaced", request.id);
            assert!(racks.iter().all(|&r| r < 3), "rack out of range: {racks:?}");
        }
        assert_eq!(data.rack_count(), 3);
        assert_eq!(data.store().object_count(), data.object_count());
    }

    #[test]
    fn placement_is_deterministic_per_seed() {
        let trace = short_trace(2);
        let a = DataLayer::for_trace(&trace, 4, 9);
        let b = DataLayer::for_trace(&trace, 4, 9);
        for request in &trace {
            assert_eq!(
                a.replica_racks(request.function, request.object),
                b.replica_racks(request.function, request.object)
            );
        }
    }

    #[test]
    fn unplaced_objects_report_no_replicas() {
        let trace = short_trace(3);
        let data = DataLayer::for_trace(&trace, 2, 11);
        assert!(data.replica_racks(9999, 0).is_empty());
        assert!(!data.holds(9999, 0, 0));
    }

    #[test]
    fn fetch_latency_is_positive_and_monotone_in_size() {
        let trace = short_trace(4);
        let data = DataLayer::for_trace(&trace, 2, 13);
        let small = data.fetch_latency(Bytes::from_kib(256));
        let large = data.fetch_latency(Bytes::from_mib(8));
        assert!(small > SimDuration::ZERO);
        assert!(large > small);
    }

    #[test]
    fn fetch_energy_is_positive_and_monotone_in_size() {
        let trace = short_trace(5);
        let data = DataLayer::for_trace(&trace, 2, 17);
        let small = data.fetch_energy_joules(Bytes::from_kib(256));
        let large = data.fetch_energy_joules(Bytes::from_mib(8));
        assert!(small > 0.0);
        assert!(large > small);
        // Memoized and uncached sizes price identically.
        for request in &trace {
            assert_eq!(
                data.fetch_energy_joules(request.object_bytes),
                DataLayer::for_trace(&trace, 2, 17).fetch_energy_joules(request.object_bytes)
            );
        }
    }
}
