//! The typed entry point to cluster runs: [`Experiment`], built by
//! [`ExperimentBuilder`], executed into an [`Outcome`].
//!
//! Four PRs of organic growth left the cluster with a positional-argument API
//! trio (`run` / `run_sharded` / `run_sharded_with_data`), panic-based
//! validation and tuple returns. This module replaces that surface with two
//! types:
//!
//! * [`Experiment`] — a validated, self-describing run specification: the
//!   platform under test, the request trace (or the [`Workload`] that
//!   generates it), the rack count, the front-end balancer, the full
//!   scheduler/keepalive/scaling configuration, an optional data-placement
//!   layer and the seed. An `Experiment` can only be obtained through
//!   [`ExperimentBuilder::build`], which returns `Result<Experiment,
//!   ConfigError>` — every formerly-panicking precondition is a typed,
//!   testable [`ConfigError`] variant instead.
//! * [`Outcome`] — the named-field result of one run: the aggregate
//!   [`ClusterReport`], the per-rack [`RackSummary`] list and the run's
//!   identifying metadata, replacing the old `(ClusterReport,
//!   Vec<RackSummary>)` tuple.
//!
//! The deprecated `ClusterSim` methods remain as thin shims that route
//! through the same consolidated validator and panic with their historical
//! messages, so legacy callers (and golden fixtures) behave bit-identically.
//!
//! # Example
//!
//! ```
//! use dscs_cluster::experiment::Experiment;
//! use dscs_cluster::policy::LoadBalancer;
//! use dscs_cluster::trace::RateProfile;
//! use dscs_platforms::PlatformKind;
//! use dscs_simcore::rng::DeterministicRng;
//! use dscs_simcore::time::SimDuration;
//!
//! let profile = RateProfile { segments: vec![(SimDuration::from_secs(5), 60.0)] };
//! let outcome = Experiment::builder(PlatformKind::DscsDsa)
//!     .trace(profile.generate(&mut DeterministicRng::seeded(1)))
//!     .racks(2)
//!     .balancer(LoadBalancer::LeastLoaded)
//!     .seed(7)
//!     .build()
//!     .expect("valid experiment")
//!     .run();
//! assert_eq!(
//!     outcome.report.completed + outcome.report.rejected,
//!     outcome.racks.iter().map(|r| r.completed + r.rejected).sum::<u64>()
//! );
//! ```

use std::fmt;
use std::sync::Arc;

use dscs_platforms::PlatformKind;
use dscs_simcore::rng::DeterministicRng;
use dscs_simcore::time::SimDuration;

use crate::coldpath::{ColdStartPath, IpcTransport};
use crate::data::DataLayer;
use crate::policy::{KeepalivePolicy, LoadBalancer, ScalingPolicy, SchedulerPolicy};
use crate::sim::{ClusterConfig, ClusterReport, ClusterSim, EngineSelection, RackSummary};
use crate::trace::TraceRequest;
use crate::workload::{Workload, WorkloadError, WorkloadSpec, WorkloadSpecError};

/// A violated precondition of a cluster run, reported instead of the panic
/// the pre-builder API raised.
///
/// Every variant corresponds to one `assert!` the deprecated
/// `run_sharded_with_data` / `ScalingPolicy::validate` path used to fire; the
/// deprecated shims still panic, but they do so by formatting these variants
/// through their historical messages, so there is exactly one validator.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The experiment has no trace (none supplied, or the supplied trace is
    /// empty): there is nothing to simulate.
    EmptyTrace,
    /// The experiment shards over zero racks.
    ZeroRacks,
    /// The attached data layer was built for a different rack count than the
    /// experiment shards over.
    DataLayerRackMismatch {
        /// Racks the data layer was built for.
        layer_racks: u32,
        /// Racks the experiment shards over.
        racks: u32,
    },
    /// An elastic scaling policy with `min_instances == 0`: the rack could
    /// never start work.
    ZeroMinInstances,
    /// `min_instances` exceeds `max_instances`.
    MinAboveMax {
        /// The configured minimum.
        min: u32,
        /// The configured maximum.
        max: u32,
    },
    /// A scaling policy with a zero decision interval (the simulation would
    /// tick forever without advancing).
    ZeroScalingInterval {
        /// The policy's report name (`"reactive"` or `"predictive"`).
        policy: &'static str,
    },
    /// A reactive scaling policy with a zero step.
    ZeroReactiveStep,
    /// Reactive thresholds that overlap: a queue depth satisfying both would
    /// make scale-down unreachable.
    OverlappingReactiveThresholds {
        /// Queue depth at or above which the rack scales up.
        scale_up_queue: usize,
        /// Queue depth at or below which the rack scales down.
        scale_down_queue: usize,
    },
    /// A non-finite or sub-unit predictive headroom.
    InvalidPredictiveHeadroom {
        /// The offending multiplier.
        headroom: f64,
    },
    /// A hybrid-histogram keepalive whose prewarm head percentile is not
    /// strictly below the tail percentile the eviction window uses: the
    /// container would be proactively re-warmed at or after its own
    /// eviction, so the prewarm could never land.
    PrewarmHeadAboveTail {
        /// The configured prewarm head percentile.
        head: f64,
        /// The tail percentile the eviction window is sized from.
        tail: f64,
    },
    /// A sweep axis with no values to sweep.
    EmptySweepAxis {
        /// The axis name (`"platforms"`, `"schedulers"`, ...).
        axis: &'static str,
    },
    /// The workload handed to [`ExperimentBuilder::workload`] failed its own
    /// validation.
    Workload(WorkloadError),
    /// The declarative spec handed to [`ExperimentBuilder::workload_spec`]
    /// (or listed on a sweep's workload axis) failed to realize — an unknown
    /// kind, an unreadable or malformed trace file, or an invalid underlying
    /// workload.
    WorkloadSpec(WorkloadSpecError),
}

impl ConfigError {
    /// The message the pre-builder API's `assert!` raised for this violation.
    /// The deprecated shims panic with exactly these strings so legacy
    /// `#[should_panic]` expectations keep matching.
    pub(crate) fn legacy_message(&self) -> String {
        match self {
            ConfigError::EmptyTrace => "trace must not be empty".into(),
            ConfigError::ZeroRacks => "need at least one rack".into(),
            ConfigError::DataLayerRackMismatch { .. } => {
                "data layer must cover exactly the sharded racks".into()
            }
            ConfigError::ZeroMinInstances => "elastic racks need at least one instance".into(),
            ConfigError::MinAboveMax { .. } => "min_instances must not exceed max_instances".into(),
            ConfigError::ZeroScalingInterval { policy } => {
                format!("{policy} interval must be non-zero")
            }
            ConfigError::ZeroReactiveStep => "reactive step must be at least one instance".into(),
            ConfigError::OverlappingReactiveThresholds { .. } => {
                "reactive thresholds must not overlap: a queue depth \
                 satisfying both would make scale-down unreachable"
                    .into()
            }
            ConfigError::InvalidPredictiveHeadroom { .. } => {
                "predictive headroom must be finite and >= 1".into()
            }
            // No legacy assert existed for this one (the old path accepted
            // the window and silently re-warmed after eviction); the shims
            // panic with the typed message.
            ConfigError::PrewarmHeadAboveTail { head, tail } => {
                format!("prewarm head percentile {head} must stay below the tail percentile {tail}")
            }
            ConfigError::EmptySweepAxis { axis } => {
                format!("sweep axis {axis} must not be empty")
            }
            ConfigError::Workload(err) => err.to_string(),
            ConfigError::WorkloadSpec(err) => err.to_string(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptyTrace => write!(f, "experiment trace must not be empty"),
            ConfigError::ZeroRacks => write!(f, "experiment needs at least one rack"),
            ConfigError::DataLayerRackMismatch { layer_racks, racks } => write!(
                f,
                "data layer covers {layer_racks} rack(s) but the experiment shards over {racks}"
            ),
            ConfigError::ZeroMinInstances => {
                write!(f, "elastic racks need min_instances of at least one")
            }
            ConfigError::MinAboveMax { min, max } => {
                write!(f, "min_instances {min} must not exceed max_instances {max}")
            }
            ConfigError::ZeroScalingInterval { policy } => {
                write!(f, "{policy} scaling interval must be non-zero")
            }
            ConfigError::ZeroReactiveStep => {
                write!(f, "reactive scaling step must be at least one instance")
            }
            ConfigError::OverlappingReactiveThresholds {
                scale_up_queue,
                scale_down_queue,
            } => write!(
                f,
                "reactive thresholds overlap: scale-down at {scale_down_queue} must stay below \
                 scale-up at {scale_up_queue}"
            ),
            ConfigError::InvalidPredictiveHeadroom { headroom } => {
                write!(f, "predictive headroom {headroom} must be finite and >= 1")
            }
            ConfigError::PrewarmHeadAboveTail { head, tail } => write!(
                f,
                "prewarm head percentile {head} must stay below the tail percentile {tail}"
            ),
            ConfigError::EmptySweepAxis { axis } => {
                write!(f, "sweep axis {axis} has no values to sweep")
            }
            ConfigError::Workload(err) => write!(f, "workload validation failed: {err}"),
            ConfigError::WorkloadSpec(err) => write!(f, "workload spec rejected: {err}"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Workload(err) => Some(err),
            ConfigError::WorkloadSpec(err) => Some(err),
            _ => None,
        }
    }
}

impl From<WorkloadError> for ConfigError {
    fn from(err: WorkloadError) -> Self {
        ConfigError::Workload(err)
    }
}

impl From<WorkloadSpecError> for ConfigError {
    fn from(err: WorkloadSpecError) -> Self {
        ConfigError::WorkloadSpec(err)
    }
}

/// The consolidated run validator: every precondition the deprecated
/// `run_sharded_with_data` asserted, as typed errors, in the historical
/// check order. Used by [`ExperimentBuilder::build`] and by the deprecated
/// shims (which turn the error back into the legacy panic).
pub(crate) fn validate_run(
    trace: &[TraceRequest],
    racks: u32,
    config: &ClusterConfig,
    data: Option<&DataLayer>,
) -> Result<(), ConfigError> {
    if trace.is_empty() {
        return Err(ConfigError::EmptyTrace);
    }
    if racks == 0 {
        return Err(ConfigError::ZeroRacks);
    }
    if let Some(data) = data {
        if data.rack_count() != racks {
            return Err(ConfigError::DataLayerRackMismatch {
                layer_racks: data.rack_count(),
                racks,
            });
        }
    }
    config.check()
}

/// A validated, self-describing cluster run: platform, trace, racks,
/// balancer, policies, optional data layer, seed. Obtained through
/// [`Experiment::builder`]; the constructor is private so every `Experiment`
/// in existence has passed the consolidated validator.
///
/// The trace and data layer are held behind [`Arc`]s, so cloning an
/// experiment (or building many variants over one trace, as the sweep does)
/// never copies the request list.
#[derive(Debug, Clone)]
pub struct Experiment {
    platform: PlatformKind,
    trace: Arc<Vec<TraceRequest>>,
    racks: u32,
    balancer: LoadBalancer,
    config: ClusterConfig,
    data: Option<Arc<DataLayer>>,
    seed: u64,
    rack_jobs: usize,
    optimal_bound: Option<f64>,
}

impl Experiment {
    /// Starts a builder for a run on `platform`, with a single rack, the
    /// round-robin balancer, [`ClusterConfig::default`] policies, no data
    /// layer, seed 0 and one rack worker.
    pub fn builder(platform: PlatformKind) -> ExperimentBuilder {
        ExperimentBuilder {
            platform,
            trace: None,
            racks: 1,
            balancer: LoadBalancer::RoundRobin,
            config: ClusterConfig::default(),
            data: None,
            place_data_seed: None,
            seed: 0,
            rack_jobs: 1,
            optimal_bound: None,
            pending: None,
        }
    }

    /// The platform under test.
    pub fn platform(&self) -> PlatformKind {
        self.platform
    }

    /// The request trace the run replays.
    pub fn trace(&self) -> &[TraceRequest] {
        &self.trace
    }

    /// Number of racks the front end shards over.
    pub fn racks(&self) -> u32 {
        self.racks
    }

    /// The front-end load balancer.
    pub fn balancer(&self) -> LoadBalancer {
        self.balancer
    }

    /// The full per-rack cluster configuration.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// The data-placement layer dispatch runs against, if any.
    pub fn data(&self) -> Option<&DataLayer> {
        self.data.as_deref()
    }

    /// The master seed (service jitter and per-rack RNG streams derive from
    /// it).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Worker threads used to simulate rack lanes when the balancer permits
    /// the partitioned engine (0 = one per core, 1 = inline). Results are
    /// byte-identical across every value — see
    /// [`EngineSelection::RackParallel`].
    pub fn rack_jobs(&self) -> usize {
        self.rack_jobs
    }

    /// Runs the experiment, evaluating the end-to-end model for the platform
    /// first. For many runs on one platform (policy sweeps), precompute a
    /// [`ClusterSim`] once and use [`Experiment::run_on`] instead.
    pub fn run(&self) -> Outcome {
        let sim = ClusterSim::new(self.platform, self.config);
        self.outcome(&sim)
    }

    /// Runs the experiment on a prebuilt simulator for the same platform,
    /// reusing its precomputed service times and cold-start costs. The
    /// simulator is reconfigured to this experiment's [`ClusterConfig`].
    ///
    /// # Panics
    /// Panics if `base` models a different platform — that is a programming
    /// error in the caller, not a configuration the builder could reject.
    pub fn run_on(&self, base: &ClusterSim) -> Outcome {
        assert_eq!(
            base.platform(),
            self.platform,
            "experiment platform must match the prebuilt simulator"
        );
        let sim = base.reconfigured(self.config);
        self.outcome(&sim)
    }

    fn outcome(&self, sim: &ClusterSim) -> Outcome {
        let (report, racks, engine) = sim.run_validated(
            &self.trace,
            self.seed,
            self.racks,
            self.balancer,
            self.data.as_deref(),
            self.rack_jobs,
        );
        // The bound is a pure function of (trace, platform): a sweep attaches
        // one precomputed value to every cell sharing the Arc'd trace (the
        // fetch_energy_joules memoization pattern); standalone runs compute
        // it here, a single O(trace) pass.
        let optimal_coldstart_s = self
            .optimal_bound
            .unwrap_or_else(|| crate::optimal::optimal_coldstart_seconds(&self.trace, sim));
        Outcome {
            report,
            racks,
            balancer: self.balancer,
            seed: self.seed,
            engine,
            optimal_coldstart_s: Some(optimal_coldstart_s),
        }
    }
}

/// Fluent builder for [`Experiment`]; see [`Experiment::builder`] for the
/// defaults. Every formerly-panicking precondition surfaces from
/// [`ExperimentBuilder::build`] as a [`ConfigError`].
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    platform: PlatformKind,
    trace: Option<Arc<Vec<TraceRequest>>>,
    racks: u32,
    balancer: LoadBalancer,
    config: ClusterConfig,
    data: Option<Arc<DataLayer>>,
    place_data_seed: Option<u64>,
    seed: u64,
    rack_jobs: usize,
    optimal_bound: Option<f64>,
    pending: Option<ConfigError>,
}

impl ExperimentBuilder {
    /// The request trace to replay. Accepts a `Vec<TraceRequest>` or an
    /// `Arc<Vec<TraceRequest>>` (shared, e.g. across sweep cells). Replaces
    /// any earlier trace — including one a failed
    /// [`ExperimentBuilder::workload`] call left pending.
    pub fn trace(mut self, trace: impl Into<Arc<Vec<TraceRequest>>>) -> Self {
        self.trace = Some(trace.into());
        self.pending = None;
        self
    }

    /// Generates the trace from `workload` (validating its parameters) with
    /// `rng`. A [`WorkloadError`] is carried until [`ExperimentBuilder::build`]
    /// and surfaces there as [`ConfigError::Workload`] — unless a later
    /// [`ExperimentBuilder::trace`] / workload call supplies a valid trace,
    /// which replaces the failed one.
    ///
    /// Deprecated: workload selection is declarative now. Express the same
    /// run as a [`WorkloadSpec`] — `WorkloadSpec::Azure { scale, seed }`
    /// instead of hand-generating an [`AzureWorkload`](crate::workload::AzureWorkload)
    /// trace, `WorkloadSpec::Inline { .. }` for a bespoke generator — and
    /// hand it to [`ExperimentBuilder::workload_spec`], which routes through
    /// the same pending-error validator.
    #[deprecated(
        since = "0.7.0",
        note = "use workload_spec(WorkloadSpec) — workload selection is declarative now"
    )]
    pub fn workload<W: Workload + ?Sized>(
        mut self,
        workload: &W,
        rng: &mut DeterministicRng,
    ) -> Self {
        match workload.generate(rng) {
            Ok(trace) => {
                self.trace = Some(Arc::new(trace));
                self.pending = None;
            }
            Err(err) => self.pending = Some(err.into()),
        }
        self
    }

    /// Realizes a declarative [`WorkloadSpec`] into the experiment's trace.
    /// A [`WorkloadSpecError`] is carried until [`ExperimentBuilder::build`]
    /// and surfaces there as [`ConfigError::WorkloadSpec`] — unless a later
    /// [`ExperimentBuilder::trace`] / `workload_spec` call supplies a valid
    /// trace, which replaces the failed one (the same carry discipline the
    /// deprecated [`ExperimentBuilder::workload`] shim uses).
    pub fn workload_spec(mut self, spec: &WorkloadSpec) -> Self {
        match spec.realize() {
            Ok(realized) => {
                self.trace = Some(realized.trace);
                self.pending = None;
            }
            Err(err) => self.pending = Some(err.into()),
        }
        self
    }

    /// Number of racks the front end shards over.
    pub fn racks(mut self, racks: u32) -> Self {
        self.racks = racks;
        self
    }

    /// The front-end load balancer.
    pub fn balancer(mut self, balancer: LoadBalancer) -> Self {
        self.balancer = balancer;
        self
    }

    /// Replaces the whole per-rack [`ClusterConfig`] at once (the per-field
    /// setters below adjust the current one).
    pub fn config(mut self, config: ClusterConfig) -> Self {
        self.config = config;
        self
    }

    /// Queue discipline used when an instance frees up.
    pub fn scheduler(mut self, scheduler: SchedulerPolicy) -> Self {
        self.config.scheduler = scheduler;
        self
    }

    /// Container keepalive policy deciding when invocations run cold.
    pub fn keepalive(mut self, keepalive: KeepalivePolicy) -> Self {
        self.config.keepalive = keepalive;
        self
    }

    /// How each rack's instance pool grows and shrinks.
    pub fn scaling(mut self, scaling: ScalingPolicy) -> Self {
        self.config.scaling = scaling;
        self
    }

    /// Which modality cold starts pay (fresh spawn, flash reload or
    /// snapshot restore).
    pub fn cold_path(mut self, cold_path: ColdStartPath) -> Self {
        self.config.cold_path = cold_path;
        self
    }

    /// The gateway→runtime IPC transport charged on every started
    /// invocation.
    pub fn ipc(mut self, ipc: IpcTransport) -> Self {
        self.config.ipc = ipc;
        self
    }

    /// The elastic instance bounds `[min, max]` (a fixed-cap rack always runs
    /// `max`).
    pub fn instances(mut self, min: u32, max: u32) -> Self {
        self.config.min_instances = min;
        self.config.max_instances = max;
        self
    }

    /// Scheduler queue depth per rack (requests beyond it are rejected).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.config.queue_depth = depth;
        self
    }

    /// Modelled delay between a scale-up decision and the new instances
    /// coming online.
    pub fn provisioning_delay(mut self, delay: SimDuration) -> Self {
        self.config.provisioning_delay = delay;
        self
    }

    /// Attaches a prebuilt data-placement layer; dispatch becomes data-aware
    /// and non-local starts pay the modelled cross-rack fetch. Accepts a
    /// `DataLayer` or an `Arc<DataLayer>` (shared across sweep cells).
    pub fn data_layer(mut self, data: impl Into<Arc<DataLayer>>) -> Self {
        self.data = Some(data.into());
        self.place_data_seed = None;
        self
    }

    /// Builds a data layer for the experiment's trace and rack count at
    /// [`ExperimentBuilder::build`] time, placing objects from a placement
    /// RNG derived from `seed`. Overridden by [`ExperimentBuilder::data_layer`].
    pub fn place_data(mut self, seed: u64) -> Self {
        self.place_data_seed = Some(seed);
        self.data = None;
        self
    }

    /// Master seed for the run (trace replay jitter, per-rack RNG streams).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker threads for the partitioned per-rack engine: 0 = one per
    /// available core, 1 (the default) = run every rack lane inline, N =
    /// up to N threads (capped at the rack count). Applies only when the
    /// balancer decouples the racks ([`LoadBalancer::RoundRobin`]); coupled
    /// balancers run the sequential engine regardless and report why
    /// ([`EngineSelection::Sequential`]). Results are byte-identical across
    /// every value — the knob trades wall-clock only, so it is *not* part of
    /// the experiment's identity.
    pub fn rack_jobs(mut self, rack_jobs: usize) -> Self {
        self.rack_jobs = rack_jobs;
        self
    }

    /// Attaches a precomputed offline-optimal cold-start bound
    /// ([`crate::optimal::optimal_coldstart_seconds`]) so the run's
    /// [`Outcome`] reuses it instead of recomputing — the bound depends only
    /// on the trace and platform, so a sweep computes it once per
    /// (workload, platform) pair and hands it to every policy cell.
    pub fn optimal_coldstart(mut self, bound_s: f64) -> Self {
        self.optimal_bound = Some(bound_s);
        self
    }

    /// Validates the whole specification and returns the run-ready
    /// [`Experiment`], or the first [`ConfigError`] found (in the historical
    /// check order: trace, racks, data layer, scaling parameters, elastic
    /// bounds).
    pub fn build(self) -> Result<Experiment, ConfigError> {
        if let Some(err) = self.pending {
            return Err(err);
        }
        let trace = self.trace.unwrap_or_default();
        let data = match (self.data, self.place_data_seed) {
            (Some(data), _) => Some(data),
            (None, Some(seed)) if !trace.is_empty() && self.racks > 0 => {
                Some(Arc::new(DataLayer::for_trace(&trace, self.racks, seed)))
            }
            // An empty trace or zero racks fails validation below before the
            // placement layer could be built.
            (None, _) => None,
        };
        validate_run(&trace, self.racks, &self.config, data.as_deref())?;
        Ok(Experiment {
            platform: self.platform,
            trace,
            racks: self.racks,
            balancer: self.balancer,
            config: self.config,
            data,
            seed: self.seed,
            rack_jobs: self.rack_jobs,
            optimal_bound: self.optimal_bound,
        })
    }
}

/// The named-field result of one [`Experiment::run`]: what the old
/// `(ClusterReport, Vec<RackSummary>)` tuple carried, plus the run's
/// identifying metadata so downstream consumers (sweep cells, CLI tables)
/// can label results without re-threading the spec by hand.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct Outcome {
    /// The aggregate cluster report (all racks).
    pub report: ClusterReport,
    /// Per-rack summaries, indexed by rack.
    pub racks: Vec<RackSummary>,
    /// The balancer the run dispatched under.
    pub balancer: LoadBalancer,
    /// The seed the run replayed with.
    pub seed: u64,
    /// Which engine executed the run: the partitioned per-rack engine (with
    /// its worker count) or the whole-cluster sequential loop (with the
    /// reason the run could not be partitioned). Deterministic — a function
    /// of the balancer and `rack_jobs`, never of timing.
    pub engine: EngineSelection,
    /// The offline-optimal lower bound on aggregate cold-start seconds for
    /// this run's trace and platform ([`crate::optimal`]); the policy's
    /// regret is `report.coldstart_s - bound`. Always populated by the run
    /// paths (precomputed via [`ExperimentBuilder::optimal_coldstart`] or
    /// computed on the fly).
    pub optimal_coldstart_s: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RateProfile;

    fn short_trace(seed: u64) -> Vec<TraceRequest> {
        let profile = RateProfile {
            segments: vec![(SimDuration::from_secs(5), 80.0)],
        };
        profile.generate(&mut DeterministicRng::seeded(seed))
    }

    #[test]
    fn builder_runs_and_accounts_for_every_request() {
        let trace = short_trace(1);
        let requests = trace.len() as u64;
        let outcome = Experiment::builder(PlatformKind::DscsDsa)
            .trace(trace)
            .racks(2)
            .balancer(LoadBalancer::LeastLoaded)
            .seed(3)
            .build()
            .expect("valid experiment")
            .run();
        assert_eq!(outcome.report.completed + outcome.report.rejected, requests);
        assert_eq!(outcome.racks.len(), 2);
        assert_eq!(outcome.balancer, LoadBalancer::LeastLoaded);
        assert_eq!(outcome.seed, 3);
    }

    #[test]
    fn empty_trace_is_a_typed_error() {
        let err = Experiment::builder(PlatformKind::DscsDsa)
            .build()
            .expect_err("no trace");
        assert_eq!(err, ConfigError::EmptyTrace);
        let err = Experiment::builder(PlatformKind::DscsDsa)
            .trace(Vec::new())
            .build()
            .expect_err("empty trace");
        assert_eq!(err, ConfigError::EmptyTrace);
    }

    #[test]
    fn zero_racks_is_a_typed_error() {
        let err = Experiment::builder(PlatformKind::DscsDsa)
            .trace(short_trace(2))
            .racks(0)
            .build()
            .expect_err("zero racks");
        assert_eq!(err, ConfigError::ZeroRacks);
    }

    #[test]
    fn data_layer_rack_mismatch_is_a_typed_error() {
        let trace = short_trace(3);
        let data = DataLayer::for_trace(&trace, 3, 7);
        let err = Experiment::builder(PlatformKind::DscsDsa)
            .trace(trace)
            .racks(2)
            .data_layer(data)
            .build()
            .expect_err("mismatched layer");
        assert_eq!(
            err,
            ConfigError::DataLayerRackMismatch {
                layer_racks: 3,
                racks: 2
            }
        );
    }

    #[test]
    fn place_data_builds_a_matching_layer() {
        let experiment = Experiment::builder(PlatformKind::DscsDsa)
            .trace(short_trace(4))
            .racks(3)
            .place_data(11)
            .build()
            .expect("valid experiment");
        let data = experiment.data().expect("layer placed");
        assert_eq!(data.rack_count(), 3);
        assert!(data.object_count() > 0);
    }

    #[test]
    #[allow(deprecated)]
    fn workload_errors_surface_at_build_time() {
        use crate::workload::AzureWorkload;
        let bad = AzureWorkload {
            base_rps: -5.0,
            ..AzureWorkload::default()
        };
        let err = Experiment::builder(PlatformKind::DscsDsa)
            .workload(&bad, &mut DeterministicRng::seeded(1))
            .build()
            .expect_err("invalid workload");
        assert!(matches!(err, ConfigError::Workload(_)));
        assert!(err.to_string().contains("workload validation failed"));
    }

    #[test]
    #[allow(deprecated)]
    fn a_later_valid_trace_replaces_a_failed_workload() {
        use crate::workload::AzureWorkload;
        let bad = AzureWorkload {
            base_rps: -5.0,
            ..AzureWorkload::default()
        };
        // A failed workload() must not poison the builder once a valid trace
        // (or a valid workload) is supplied afterwards.
        let outcome = Experiment::builder(PlatformKind::DscsDsa)
            .workload(&bad, &mut DeterministicRng::seeded(1))
            .trace(short_trace(8))
            .build()
            .expect("the later trace supersedes the failed workload")
            .run();
        assert!(outcome.report.completed > 0);
        let good = AzureWorkload {
            functions: 4,
            base_rps: 40.0,
            horizon: SimDuration::from_secs(5),
            step: SimDuration::from_secs(1),
            ..AzureWorkload::default()
        };
        assert!(Experiment::builder(PlatformKind::DscsDsa)
            .workload(&bad, &mut DeterministicRng::seeded(1))
            .workload(&good, &mut DeterministicRng::seeded(2))
            .build()
            .is_ok());
    }

    #[test]
    fn workload_spec_realizes_into_the_experiment_trace() {
        use crate::at_scale::SweepScale;
        let spec = WorkloadSpec::Azure {
            scale: SweepScale::Smoke,
            seed: 7,
        };
        let experiment = Experiment::builder(PlatformKind::DscsDsa)
            .workload_spec(&spec)
            .racks(2)
            .build()
            .expect("valid spec");
        let realized = spec.realize().expect("valid spec");
        assert_eq!(experiment.trace(), realized.trace.as_slice());
        assert!(!experiment.trace().is_empty());
    }

    #[test]
    fn workload_spec_errors_surface_at_build_time_and_can_be_superseded() {
        let missing = WorkloadSpec::TraceFile {
            path: "/nonexistent/trace.csv".into(),
            day: 1,
        };
        let err = Experiment::builder(PlatformKind::DscsDsa)
            .workload_spec(&missing)
            .build()
            .expect_err("unreadable trace file");
        assert!(matches!(
            err,
            ConfigError::WorkloadSpec(WorkloadSpecError::Ingest(_))
        ));
        assert!(err.to_string().contains("workload spec rejected"));
        // The same carry discipline as the deprecated shim: a later valid
        // trace supersedes the failed spec.
        assert!(Experiment::builder(PlatformKind::DscsDsa)
            .workload_spec(&missing)
            .trace(short_trace(9))
            .build()
            .is_ok());
    }

    #[test]
    fn elastic_bound_violations_are_typed_errors() {
        let zero_min = Experiment::builder(PlatformKind::DscsDsa)
            .trace(short_trace(5))
            .scaling(ScalingPolicy::reactive_default())
            .instances(0, 100)
            .build()
            .expect_err("zero min");
        assert_eq!(zero_min, ConfigError::ZeroMinInstances);
        let inverted = Experiment::builder(PlatformKind::DscsDsa)
            .trace(short_trace(5))
            .scaling(ScalingPolicy::predictive_default())
            .instances(64, 8)
            .build()
            .expect_err("min above max");
        assert_eq!(inverted, ConfigError::MinAboveMax { min: 64, max: 8 });
    }

    #[test]
    fn a_prewarm_head_at_or_above_the_tail_is_a_typed_error() {
        use crate::policy::{KeepalivePolicy, HYBRID_TAIL};
        let bad = KeepalivePolicy::HybridHistogram {
            range: SimDuration::from_secs(600),
            bin: SimDuration::from_secs(10),
            head: HYBRID_TAIL,
        };
        let err = Experiment::builder(PlatformKind::DscsDsa)
            .trace(short_trace(5))
            .keepalive(bad)
            .build()
            .expect_err("head == tail must be rejected");
        assert_eq!(
            err,
            ConfigError::PrewarmHeadAboveTail {
                head: HYBRID_TAIL,
                tail: HYBRID_TAIL,
            }
        );
        // The default prewarm head stays valid.
        assert!(Experiment::builder(PlatformKind::DscsDsa)
            .trace(short_trace(5))
            .keepalive(KeepalivePolicy::prewarm_default())
            .build()
            .is_ok());
    }

    #[test]
    fn outcomes_carry_the_optimal_coldstart_bound() {
        let trace = short_trace(12);
        let base = ClusterSim::new(PlatformKind::DscsDsa, ClusterConfig::default());
        let computed = crate::optimal::optimal_coldstart_seconds(&trace, &base);
        let outcome = Experiment::builder(PlatformKind::DscsDsa)
            .trace(trace.clone())
            .seed(4)
            .build()
            .expect("valid")
            .run_on(&base);
        assert_eq!(outcome.optimal_coldstart_s, Some(computed));
        assert!(
            computed > 0.0 && computed <= outcome.report.coldstart_s,
            "bound {computed} must floor the measured {}",
            outcome.report.coldstart_s
        );
        // A precomputed bound is passed through untouched.
        let attached = Experiment::builder(PlatformKind::DscsDsa)
            .trace(trace)
            .optimal_coldstart(computed)
            .build()
            .expect("valid")
            .run_on(&base);
        assert_eq!(attached.optimal_coldstart_s, Some(computed));
    }

    #[test]
    fn run_on_reuses_a_prebuilt_simulator() {
        let trace = short_trace(6);
        let base = ClusterSim::new(PlatformKind::DscsDsa, ClusterConfig::default());
        let experiment = Experiment::builder(PlatformKind::DscsDsa)
            .trace(trace)
            .seed(9)
            .build()
            .expect("valid");
        let a = experiment.run_on(&base);
        let b = experiment.run();
        assert_eq!(a, b, "prebuilt and fresh simulators agree bit-for-bit");
    }

    #[test]
    #[should_panic(expected = "must match the prebuilt simulator")]
    fn run_on_rejects_a_mismatched_platform() {
        let base = ClusterSim::new(PlatformKind::BaselineCpu, ClusterConfig::default());
        let experiment = Experiment::builder(PlatformKind::DscsDsa)
            .trace(short_trace(7))
            .build()
            .expect("valid");
        let _ = experiment.run_on(&base);
    }

    #[test]
    fn config_error_display_is_informative() {
        let errors: Vec<ConfigError> = vec![
            ConfigError::EmptyTrace,
            ConfigError::ZeroRacks,
            ConfigError::DataLayerRackMismatch {
                layer_racks: 4,
                racks: 2,
            },
            ConfigError::ZeroMinInstances,
            ConfigError::MinAboveMax { min: 9, max: 3 },
            ConfigError::ZeroScalingInterval { policy: "reactive" },
            ConfigError::ZeroReactiveStep,
            ConfigError::OverlappingReactiveThresholds {
                scale_up_queue: 4,
                scale_down_queue: 8,
            },
            ConfigError::InvalidPredictiveHeadroom { headroom: 0.5 },
            ConfigError::PrewarmHeadAboveTail {
                head: 0.99,
                tail: 0.99,
            },
            ConfigError::EmptySweepAxis { axis: "platforms" },
            ConfigError::WorkloadSpec(WorkloadSpecError::UnknownKind {
                kind: "tide".into(),
            }),
        ];
        for err in errors {
            assert!(!err.to_string().is_empty());
            assert!(!err.legacy_message().is_empty());
        }
    }
}
