//! # dscs-cluster
//!
//! At-scale datacenter simulation for the DSCS-Serverless evaluation
//! (Figure 13): a 200-instance rack served by an FCFS scheduler with a
//! 10 000-deep queue, driven by a bursty 20-minute Poisson trace, with
//! per-request service times taken from the end-to-end model.
//!
//! * [`trace`] — bursty request-trace generation (Figure 13a).
//! * [`sim`] — the discrete-event cluster simulation and its reported series
//!   (queued functions over time, wall-clock latency over time).
//!
//! # Example
//!
//! ```
//! use dscs_cluster::trace::RateProfile;
//! use dscs_cluster::sim::simulate_platform;
//! use dscs_platforms::PlatformKind;
//! use dscs_simcore::rng::DeterministicRng;
//! use dscs_simcore::time::SimDuration;
//!
//! // A short, light trace keeps the doc test fast.
//! let profile = RateProfile { segments: vec![(SimDuration::from_secs(10), 40.0)] };
//! let trace = profile.generate(&mut DeterministicRng::seeded(1));
//! let report = simulate_platform(PlatformKind::DscsDsa, &trace, 2);
//! assert_eq!(report.completed as usize, trace.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sim;
pub mod trace;

pub use sim::{simulate_platform, ClusterConfig, ClusterReport, ClusterSim};
pub use trace::{RateProfile, TraceRequest};
