//! # dscs-cluster
//!
//! At-scale datacenter simulation for the DSCS-Serverless evaluation: racks of
//! up to 200 function instances behind bounded scheduler queues, driven by
//! pluggable workloads, scheduler policies, keepalive policies and a
//! multi-rack front-end load balancer.
//!
//! The one entry point to cluster runs is [`experiment::ExperimentBuilder`]:
//! a fluent, validating builder that produces an [`experiment::Experiment`]
//! (or a typed [`experiment::ConfigError`]) and runs it into an
//! [`experiment::Outcome`]. Sweeps over whole policy grids are declared with
//! [`at_scale::SweepSpec`]. The older positional `ClusterSim::run*` methods
//! remain as deprecated shims that delegate to the same validated core.
//!
//! * [`trace`] — the bursty Figure-13a request trace ([`RateProfile`]).
//! * [`workload`] — the [`Workload`] trait, the Azure-functions-style
//!   synthetic generator ([`AzureWorkload`]: Zipf popularity skew, diurnal
//!   cycles, burst episodes), and the declarative [`WorkloadSpec`] selection
//!   surface (`Azure`/`Bursty`/`TraceFile`/`Inline`) every entry point —
//!   builder, sweep, CLI — realizes workloads through.
//! * [`ingest`] — trace-file ingestion: a streaming parser for the Azure
//!   Functions 2019 invocations-per-function CSV schema behind
//!   [`TraceFileWorkload`], plus the bucketing emitter the `generate-trace`
//!   CLI uses to close the generate → parse → simulate round trip.
//! * [`policy`] — scheduler policies (FCFS, shortest-job-first, per-benchmark
//!   fair), keepalive policies (none, fixed window, hybrid histogram with an
//!   optional prewarm head percentile), instance-pool scaling policies
//!   (fixed cap, reactive, predictive) and front-end load balancers
//!   (round-robin, least-loaded, data-locality-aware with spill).
//! * [`coldpath`] — the cold-start path and IPC transport axes:
//!   [`ColdStartPath`] (fresh spawn / flash reload / snapshot restore) picks
//!   which modality cold starts pay, and [`IpcTransport`] (shm / socket /
//!   http) charges a per-request marshalling + syscall latency on every
//!   started invocation.
//! * [`data`] — the data-placement layer: a rack-aware
//!   `dscs-storage` object store pre-populated with every object a trace
//!   reads, plus the cross-rack fetch costs (latency *and* joules) charged
//!   to non-local dispatch.
//! * [`experiment`] — [`Experiment`], [`ExperimentBuilder`], [`Outcome`] and
//!   [`ConfigError`]: the typed run specification every entry point builds
//!   on.
//! * [`optimal`] — the offline-optimal lower bound on aggregate cold-start
//!   cost for a fixed trace (the per-gap segment bound), behind the sweep's
//!   per-cell `regret_pct` column.
//! * [`sim`] — the discrete-event cluster simulation: cold starts priced by
//!   `dscs-faas`'s container-lifecycle model, elastic per-rack instance pools
//!   with modelled provisioning delay, multi-rack sharding, and the reported
//!   series (queued functions over time, wall-clock latency over time).
//! * [`at_scale`] — the declarative policy sweep ([`SweepSpec`]) behind
//!   `reproduce at-scale` and the CI perf artifact (`BENCH_cluster.json`).
//! * [`perf_gate`] — the CI perf-regression gate: diffs two at-scale reports
//!   and fails on latency regressions beyond a threshold.
//!
//! # Example
//!
//! ```
//! use dscs_cluster::experiment::Experiment;
//! use dscs_cluster::policy::{KeepalivePolicy, LoadBalancer};
//! use dscs_cluster::trace::RateProfile;
//! use dscs_platforms::PlatformKind;
//! use dscs_simcore::rng::DeterministicRng;
//! use dscs_simcore::time::SimDuration;
//!
//! // A short, light trace keeps the doc test fast.
//! let profile = RateProfile { segments: vec![(SimDuration::from_secs(10), 40.0)] };
//! let trace = profile.generate(&mut DeterministicRng::seeded(1));
//! let outcome = Experiment::builder(PlatformKind::DscsDsa)
//!     .trace(trace.clone())
//!     .racks(2)
//!     .balancer(LoadBalancer::LeastLoaded)
//!     .keepalive(KeepalivePolicy::prewarm_default())
//!     .place_data(9)           // build a rack-aware object placement
//!     .seed(2)
//!     .build()
//!     .expect("a well-formed experiment")
//!     .run();
//! assert_eq!(outcome.report.completed as usize, trace.len());
//! assert_eq!(outcome.racks.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod at_scale;
pub mod coldpath;
pub mod data;
pub mod experiment;
pub mod ingest;
pub mod optimal;
pub mod perf_gate;
pub mod policy;
pub mod sim;
pub mod trace;
pub mod workload;

pub use at_scale::{
    at_scale_sweep, AtScaleOptions, AtScaleReport, CrossValidation, SweepCell, SweepScale,
    SweepSpec,
};
pub use coldpath::{ColdStartPath, IpcTransport};
pub use data::DataLayer;
pub use experiment::{ConfigError, Experiment, ExperimentBuilder, Outcome};
pub use ingest::{DaySummary, IngestError, MemoryPercentile, TraceFileWorkload};
pub use optimal::{optimal_coldstart_seconds, optimal_coldstart_seconds_with, regret_pct};
pub use perf_gate::{compare_reports, GateOutcome};
pub use policy::{
    KeepalivePolicy, KeepaliveState, KeepaliveStats, LoadBalancer, ScalingPolicy, SchedQueue,
    SchedulerPolicy, HYBRID_TAIL,
};
pub use sim::{ClusterConfig, ClusterReport, ClusterSim, EngineSelection, RackSummary};
pub use trace::{RateProfile, TraceRequest};
pub use workload::{
    AzureWorkload, ObjectCatalog, ObjectPopulation, RealizedWorkload, Workload, WorkloadError,
    WorkloadSpec, WorkloadSpecError,
};
