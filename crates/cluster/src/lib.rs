//! # dscs-cluster
//!
//! At-scale datacenter simulation for the DSCS-Serverless evaluation: racks of
//! up to 200 function instances behind bounded scheduler queues, driven by
//! pluggable workloads, scheduler policies, keepalive policies and a
//! multi-rack front-end load balancer.
//!
//! * [`trace`] — the bursty Figure-13a request trace ([`RateProfile`]).
//! * [`workload`] — the [`Workload`] trait and the Azure-functions-style
//!   synthetic generator ([`AzureWorkload`]: Zipf popularity skew, diurnal
//!   cycles, burst episodes).
//! * [`policy`] — scheduler policies (FCFS, shortest-job-first, per-benchmark
//!   fair), keepalive policies (none, fixed window, hybrid histogram with an
//!   optional prewarm head percentile), instance-pool scaling policies
//!   (fixed cap, reactive, predictive) and front-end load balancers
//!   (round-robin, least-loaded, data-locality-aware with spill).
//! * [`data`] — the data-placement layer: a rack-aware
//!   `dscs-storage` object store pre-populated with every object a trace
//!   reads, plus the cross-rack fetch costs charged to non-local dispatch.
//! * [`sim`] — the discrete-event cluster simulation: cold starts priced by
//!   `dscs-faas`'s container-lifecycle model, elastic per-rack instance pools
//!   with modelled provisioning delay, multi-rack sharding, and the reported
//!   series (queued functions over time, wall-clock latency over time).
//! * [`at_scale`] — the policy sweep behind `reproduce at-scale` and the CI
//!   perf artifact (`BENCH_cluster.json`).
//! * [`perf_gate`] — the CI perf-regression gate: diffs two at-scale reports
//!   and fails on latency regressions beyond a threshold.
//!
//! # Example
//!
//! ```
//! use dscs_cluster::trace::RateProfile;
//! use dscs_cluster::sim::simulate_platform;
//! use dscs_platforms::PlatformKind;
//! use dscs_simcore::rng::DeterministicRng;
//! use dscs_simcore::time::SimDuration;
//!
//! // A short, light trace keeps the doc test fast.
//! let profile = RateProfile { segments: vec![(SimDuration::from_secs(10), 40.0)] };
//! let trace = profile.generate(&mut DeterministicRng::seeded(1));
//! let report = simulate_platform(PlatformKind::DscsDsa, &trace, 2);
//! assert_eq!(report.completed as usize, trace.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod at_scale;
pub mod data;
pub mod perf_gate;
pub mod policy;
pub mod sim;
pub mod trace;
pub mod workload;

pub use at_scale::{at_scale_sweep, AtScaleOptions, AtScaleReport, SweepCell, SweepScale};
pub use data::DataLayer;
pub use perf_gate::{compare_reports, GateOutcome};
pub use policy::{
    KeepalivePolicy, KeepaliveState, KeepaliveStats, LoadBalancer, ScalingPolicy, SchedQueue,
    SchedulerPolicy,
};
pub use sim::{simulate_platform, ClusterConfig, ClusterReport, ClusterSim, RackSummary};
pub use trace::{RateProfile, TraceRequest};
pub use workload::{AzureWorkload, ObjectCatalog, ObjectPopulation, Workload, WorkloadError};
