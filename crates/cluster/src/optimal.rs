//! Offline-optimal lower bound on aggregate cold-start cost for a fixed
//! trace, after the segment / path-cover estimators of dslab-faas: with the
//! whole trace in hand, the best any keepalive policy could possibly do is
//! decided independently per idle gap, so summing the cheaper branch of every
//! gap yields a bound no online policy can beat.
//!
//! # The per-gap argument
//!
//! Fix one function and sort its invocations by arrival. Its first invocation
//! is unavoidable: no container for it exists anywhere, so *every* policy
//! pays one full registry cold start. Between consecutive invocations the
//! omniscient policy faces a binary choice for the idle gap of length `g`:
//!
//! * **keep** the container warm across the gap, paying `g ×
//!   warm_cost_per_sec` of warm-memory cost (the same currency the
//!   warm-seconds ledger tracks), or
//! * **let it die** and pay one repeat cold start when the next invocation
//!   arrives (priced by the same [`dscs_faas::coldstart`] model the
//!   simulator charges, under the simulator's configured
//!   [`crate::coldpath::ColdStartPath`] — the flash reload on in-storage
//!   platforms, the snapshot restore when the modality is
//!   `SnapshotRestore`, the registry pull everywhere else — so the bound
//!   always prices repeats by the cell's own modality).
//!
//! Any real policy's choices for a gap cost at least
//! `min(g × warm_cost_per_sec, repeat_cold)`, and gaps are independent in
//! hindsight, so the sum over all gaps plus the unavoidable first cold starts
//! lower bounds every policy simultaneously.
//!
//! # The default bound is on cold-start *seconds*
//!
//! The sweep's regret column compares this bound against the measured
//! [`crate::sim::ClusterReport::coldstart_s`], which counts cold-start
//! seconds only — warm memory is accounted separately (`warm_seconds`). For
//! a bound on cold-start seconds alone the keep branch is free
//! (`warm_cost_per_sec = 0`): hindsight keeps every container warm across
//! every gap and pays nothing but the per-function first cold start. That is
//! exactly what [`optimal_coldstart_seconds`] computes, and it is a true
//! lower bound for every scheduler / keepalive / scaling / balancer
//! combination the simulator can run (each extra rack only *adds* first cold
//! starts, prewarming cannot anticipate a never-seen function, and flash
//! caching only discounts repeats).
//!
//! [`optimal_coldstart_seconds_with`] exposes the general estimator for a
//! combined keep-warm-vs-cold cost analysis at a caller-chosen
//! `warm_cost_per_sec`.

use std::collections::HashMap;

use dscs_simcore::time::SimTime;

use crate::sim::ClusterSim;
use crate::trace::TraceRequest;

/// Offline-optimal lower bound on the aggregate cold-start seconds any
/// policy pays replaying `trace` on `sim`'s platform: the sum, over distinct
/// functions, of one full registry cold start (see the module docs for why
/// nothing else is unavoidable in hindsight).
///
/// Deterministic: a pure single pass over the trace in arrival order, so the
/// same trace and platform produce a bit-identical bound on every call.
/// `O(n)` time, `O(functions)` memory.
pub fn optimal_coldstart_seconds(trace: &[TraceRequest], sim: &ClusterSim) -> f64 {
    optimal_coldstart_seconds_with(trace, sim, 0.0)
}

/// The general per-gap segment bound at a caller-chosen warm-memory price.
///
/// Per function: the first invocation pays a full registry cold start; every
/// idle gap `g` between consecutive invocations contributes
/// `min(g × warm_cost_per_sec, repeat_cold)` where `repeat_cold` is
/// [`ClusterSim::repeat_cold_start_cost`] for the function's benchmark.
/// With `warm_cost_per_sec = 0` this reduces to
/// [`optimal_coldstart_seconds`].
///
/// Gaps are measured arrival-to-arrival (the trace is the only offline
/// knowledge; service times are jittered at run time), which can only
/// *overstate* an idle gap and therefore never breaks the keep branch's
/// lower-bound direction when `warm_cost_per_sec` is zero.
///
/// # Panics
/// Debug-asserts that `warm_cost_per_sec` is finite and non-negative.
pub fn optimal_coldstart_seconds_with(
    trace: &[TraceRequest],
    sim: &ClusterSim,
    warm_cost_per_sec: f64,
) -> f64 {
    debug_assert!(
        warm_cost_per_sec.is_finite() && warm_cost_per_sec >= 0.0,
        "warm cost must be a finite non-negative rate, got {warm_cost_per_sec}"
    );
    let mut last_arrival: HashMap<u32, SimTime> = HashMap::new();
    let mut bound = 0.0;
    for request in trace {
        match last_arrival.get_mut(&request.function) {
            None => {
                // First invocation anywhere: a full registry cold start is
                // unavoidable for every policy.
                bound += sim.cold_start_cost(request.benchmark).as_secs_f64();
                last_arrival.insert(request.function, request.arrival);
            }
            Some(previous) => {
                let gap = request.arrival.saturating_since(*previous).as_secs_f64();
                let keep = gap * warm_cost_per_sec;
                let die = sim.repeat_cold_start_cost(request.benchmark).as_secs_f64();
                bound += keep.min(die);
                *previous = request.arrival;
            }
        }
    }
    bound
}

/// Policy regret against the offline-optimal bound, as a fraction: how far
/// `measured_coldstart_s` sits above `bound_s`, relative to the bound.
///
/// Zero when the bound is zero (an empty trace has nothing to regret) and
/// never negative: the bound is a mathematical floor on the measurement, so
/// any negative raw ratio can only be last-ulp noise from the two sides
/// summing the same cold-start costs in different orders (the simulator
/// accumulates per rack in event order, the bound in trace order). Such
/// noise is clamped to exactly `0.0`.
pub fn regret_pct(measured_coldstart_s: f64, bound_s: f64) -> f64 {
    if bound_s > 0.0 {
        ((measured_coldstart_s - bound_s) / bound_s).max(0.0)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use dscs_core::benchmarks::Benchmark;
    use dscs_platforms::PlatformKind;
    use dscs_simcore::quantity::Bytes;
    use dscs_simcore::rng::DeterministicRng;
    use dscs_simcore::time::SimDuration;

    use super::*;
    use crate::sim::ClusterConfig;
    use crate::trace::RateProfile;
    use crate::workload::AzureWorkload;
    use crate::workload::Workload;

    fn sim(platform: PlatformKind) -> ClusterSim {
        ClusterSim::new(platform, ClusterConfig::default())
    }

    fn azure_trace(seed: u64) -> Vec<TraceRequest> {
        AzureWorkload {
            functions: 16,
            base_rps: 120.0,
            horizon: SimDuration::from_secs(20),
            ..AzureWorkload::default()
        }
        .generate(&mut DeterministicRng::seeded(seed))
        .expect("valid workload")
    }

    #[test]
    fn zero_warm_cost_bound_is_one_registry_cold_start_per_function() {
        let sim = sim(PlatformKind::DscsDsa);
        let trace = azure_trace(7);
        let mut expected = 0.0;
        let mut seen = std::collections::HashSet::new();
        for request in &trace {
            if seen.insert(request.function) {
                expected += sim.cold_start_cost(request.benchmark).as_secs_f64();
            }
        }
        assert_eq!(optimal_coldstart_seconds(&trace, &sim), expected);
    }

    #[test]
    fn bound_is_a_pure_function_of_the_trace() {
        let sim = sim(PlatformKind::BaselineCpu);
        let trace = Arc::new(azure_trace(11));
        let a = optimal_coldstart_seconds_with(&trace, &sim, 0.05);
        let b = optimal_coldstart_seconds_with(&trace, &sim, 0.05);
        assert_eq!(a.to_bits(), b.to_bits(), "bit-identical across calls");
    }

    /// One function invoked three times with one-second gaps: every branch
    /// of the estimator is hand-computable.
    fn three_invocation_fixture() -> Vec<TraceRequest> {
        (0..3)
            .map(|i| TraceRequest {
                id: i,
                arrival: SimTime::from_nanos(i * 1_000_000_000),
                benchmark: Benchmark::ALL[0],
                function: 0,
                object: 0,
                object_bytes: Bytes::from_kib(64),
            })
            .collect()
    }

    #[test]
    fn warm_cost_moves_gaps_between_the_keep_and_die_branches() {
        let sim = sim(PlatformKind::BaselineCpu);
        let trace = azure_trace(3);
        let free = optimal_coldstart_seconds_with(&trace, &sim, 0.0);
        let cheap = optimal_coldstart_seconds_with(&trace, &sim, 1e-3);
        let dear = optimal_coldstart_seconds_with(&trace, &sim, 1e3);
        assert!(free <= cheap && cheap <= dear, "{free} / {cheap} / {dear}");
    }

    #[test]
    fn the_three_invocation_fixture_pins_the_exact_bound() {
        let sim = sim(PlatformKind::BaselineCpu);
        let fixture = three_invocation_fixture();
        let first = sim.cold_start_cost(Benchmark::ALL[0]).as_secs_f64();
        let repeat = sim.repeat_cold_start_cost(Benchmark::ALL[0]).as_secs_f64();
        // Free warm memory: hindsight keeps the container across both gaps
        // and pays only the unavoidable first cold start.
        assert_eq!(optimal_coldstart_seconds(&fixture, &sim), first);
        // A warm price where keeping across a one-second gap undercuts the
        // repeat cold start: first + two kept gaps.
        let wc = repeat / 10.0;
        let mid = optimal_coldstart_seconds_with(&fixture, &sim, wc);
        assert!((mid - (first + 2.0 * wc)).abs() < 1e-12, "{mid}");
        // An exorbitant warm price: both gaps die, so the bound is the first
        // cold start plus one repeat cold start per additional invocation.
        let dear = optimal_coldstart_seconds_with(&fixture, &sim, 1e3);
        assert!((dear - (first + 2.0 * repeat)).abs() < 1e-12, "{dear}");
    }

    #[test]
    fn flash_platforms_price_repeat_gaps_below_registry_platforms() {
        let dsa = sim(PlatformKind::DscsDsa);
        let cpu = sim(PlatformKind::BaselineCpu);
        assert!(dsa.caches_images_on_flash());
        assert!(!cpu.caches_images_on_flash());
        let trace = RateProfile {
            segments: vec![(SimDuration::from_secs(5), 50.0)],
        }
        .generate(&mut DeterministicRng::seeded(5));
        // With warm memory priced high enough that every gap pays the die
        // branch, the flash platform's cheaper repeats show up in the bound.
        let dsa_bound = optimal_coldstart_seconds_with(&trace, &dsa, 1e3);
        let cpu_bound = optimal_coldstart_seconds_with(&trace, &cpu, 1e3);
        assert!(
            dsa_bound < cpu_bound,
            "flash repeats must be cheaper: {dsa_bound} vs {cpu_bound}"
        );
    }

    /// The bound is path-aware: repeat gaps are priced by the simulator's
    /// configured cold-start path, so — at a warm price dear enough that
    /// every gap pays the die branch — the three modalities order exactly
    /// as their repeat pricing does, while the zero-warm-cost bound (one
    /// registry cold start per function) is identical under every path.
    #[test]
    fn repeat_gaps_are_priced_by_the_configured_cold_start_path() {
        let trace = azure_trace(9);
        let bound_under = |path| {
            let sim = ClusterSim::new(
                PlatformKind::DscsDsa,
                ClusterConfig {
                    cold_path: path,
                    ..ClusterConfig::default()
                },
            );
            (
                optimal_coldstart_seconds(&trace, &sim),
                optimal_coldstart_seconds_with(&trace, &sim, 1e3),
            )
        };
        let (fresh_free, fresh) = bound_under(crate::coldpath::ColdStartPath::FreshSpawn);
        let (flash_free, flash) = bound_under(crate::coldpath::ColdStartPath::FlashReload);
        let (snap_free, snapshot) = bound_under(crate::coldpath::ColdStartPath::SnapshotRestore);
        assert_eq!(fresh_free, flash_free);
        assert_eq!(flash_free, snap_free);
        assert!(
            snapshot < flash && flash < fresh,
            "snapshot {snapshot} / flash {flash} / fresh {fresh}"
        );
    }

    #[test]
    fn regret_pct_is_zero_for_an_empty_bound_and_relative_otherwise() {
        assert_eq!(regret_pct(3.0, 0.0), 0.0);
        assert_eq!(regret_pct(3.0, 2.0), 0.5);
        assert_eq!(regret_pct(2.0, 2.0), 0.0);
        // Summation-order noise one ulp below the bound clamps to exactly 0.
        let bound = 27.745655552000002_f64;
        assert_eq!(regret_pct(27.745655552, bound), 0.0);
    }
}
