//! Perf-trajectory regression gate over at-scale sweep reports.
//!
//! CI uploads every build's `BENCH_cluster.json` (see [`crate::at_scale`]).
//! This module diffs the current report against the previous run's artifact,
//! cell by cell, and flags mean/p99 latency regressions beyond a threshold —
//! the repo's tracked performance trajectory becomes a gate instead of a
//! graph. The comparison is schema-tolerant in two ways. Within one schema
//! version, cells are matched by their full policy identity (workload,
//! platform, scheduler, keepalive, scaling, balancer, cold-start path, IPC
//! transport — the scaling/balancer/cold-path/IPC axes default to
//! `"fixed"`/`"round-robin"`/`"flash"`/`"shm"` when a cell omits them,
//! which can only happen for untagged or hand-trimmed reports, since
//! tagged reports always carry every axis their schema defines), and cells
//! present on only one side are reported as skipped rather than failing.
//! Across schema versions (e.g. a v4 baseline against a v5 current report,
//! which added the engine-throughput fields), the gate passes vacuously with
//! an explanatory note instead of comparing incomparable numbers or erroring
//! on missing fields — so the first CI run after a schema bump stays green
//! and the next run re-arms the gate.
//!
//! Besides the modelled latencies, the gate watches the *engine's* measured
//! `events_per_sec` (per cell and in aggregate, present since schema v5 in
//! the throughput JSON variant). Drops beyond the threshold are reported as
//! **warnings only** — wall-clock throughput on shared CI runners is noisy,
//! so a drop flags "look at engine speed" without failing the build; reports
//! without the measured fields (including the first baseline-less build)
//! simply produce no warnings.
//!
//! Since schema v7 the gate also watches per-cell policy regret
//! (`regret_pct`, the distance above the offline-optimal cold-start bound of
//! [`crate::optimal`]): increases beyond the threshold, in percentage
//! points, are again warnings only. Pre-v7 baselines carry no regret fields
//! and pass vacuously — either through the schema-bump path or, for
//! hand-trimmed same-schema reports, because missing fields warn nothing.

use std::fmt;

use dscs_simcore::json::JsonValue;

/// The latency metrics the gate compares per cell.
const GATED_METRICS: [&str; 2] = ["mean_latency_ms", "p99_latency_ms"];

/// Latencies below this floor (in ms) are noise, not signal; the gate skips
/// them rather than flagging a large relative change on a tiny base.
const METRIC_FLOOR_MS: f64 = 0.01;

/// Policy-regret increases below this many percentage points are noise; the
/// gate warns only on jumps past it.
const REGRET_FLOOR_POINTS: f64 = 0.01;

/// One metric regression beyond the threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Cell identity, e.g. `azure/DSCS-DSA/fcfs/hybrid-prewarm/reactive`.
    pub cell: String,
    /// The metric that regressed (`mean_latency_ms` or `p99_latency_ms`).
    pub metric: &'static str,
    /// Baseline value (previous run).
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Relative change in percent (positive = slower).
    pub change_pct: f64,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} {:.3} -> {:.3} ms (+{:.1}%)",
            self.cell, self.metric, self.baseline, self.current, self.change_pct
        )
    }
}

/// One measured engine-throughput drop beyond the threshold. Warn-only:
/// wall-clock throughput on shared runners is noisy, so these never fail
/// the gate — they flag that engine speed deserves a look.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputWarning {
    /// Cell identity, or `"(aggregate)"` for the report-level throughput.
    pub cell: String,
    /// Baseline events per second (previous run).
    pub baseline: f64,
    /// Current events per second.
    pub current: f64,
    /// Relative drop in percent (positive = slower engine).
    pub drop_pct: f64,
}

impl fmt::Display for ThroughputWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: events_per_sec {:.0} -> {:.0} (-{:.1}%)",
            self.cell, self.baseline, self.current, self.drop_pct
        )
    }
}

/// One policy-regret increase beyond the threshold (schema v7 reports carry
/// a per-cell `regret_pct` against the offline-optimal cold-start bound).
/// Warn-only, like throughput: a regret jump says "look at the cold-start
/// path" without failing the build, and pre-v7 baselines — which carry no
/// regret fields — simply produce no warnings.
#[derive(Debug, Clone, PartialEq)]
pub struct RegretWarning {
    /// Cell identity.
    pub cell: String,
    /// Baseline regret (fraction above the offline bound, previous run).
    pub baseline: f64,
    /// Current regret.
    pub current: f64,
    /// Increase in percentage points. Regret is already relative to the
    /// bound, so the gate diffs it absolutely — a zero-regret baseline
    /// (policy matched the bound) would make any relative change infinite.
    pub increase_points: f64,
}

impl fmt::Display for RegretWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: regret_pct {:.3} -> {:.3} (+{:.2} points)",
            self.cell, self.baseline, self.current, self.increase_points
        )
    }
}

/// Outcome of one gate comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// Cells whose metrics were compared on both sides.
    pub compared: usize,
    /// Cells present on only one side (schema or sweep-shape drift).
    pub skipped: usize,
    /// Metric regressions beyond the threshold, worst first.
    pub regressions: Vec<Regression>,
    /// Measured `events_per_sec` drops beyond the threshold, worst first.
    /// Warnings, not failures: they never affect [`GateOutcome::passed`].
    pub throughput_warnings: Vec<ThroughputWarning>,
    /// Policy-regret increases beyond the threshold (in percentage points),
    /// worst first. Warnings, not failures; empty for reports without the
    /// v7 regret fields.
    pub regret_warnings: Vec<RegretWarning>,
    /// Set when the reports carry different schema versions: the comparison
    /// was skipped entirely and the gate passed vacuously, for this reason.
    pub schema_note: Option<String>,
}

impl GateOutcome {
    /// Whether the gate passes (no regression beyond the threshold).
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Errors produced by [`compare_reports`].
#[derive(Debug, Clone, PartialEq)]
pub enum GateError {
    /// A report failed to parse as JSON.
    Malformed {
        /// Which side failed (`"baseline"` or `"current"`).
        which: &'static str,
        /// The parser's message.
        message: String,
    },
    /// A report parsed but has no `cells` array.
    MissingCells {
        /// Which side is missing cells.
        which: &'static str,
    },
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::Malformed { which, message } => {
                write!(f, "{which} report is not valid JSON: {message}")
            }
            GateError::MissingCells { which } => {
                write!(f, "{which} report has no cells array")
            }
        }
    }
}

impl std::error::Error for GateError {}

/// The full policy identity of one sweep cell. Pre-v2 reports have no
/// `scaling` key (those cells ran the fixed cap); pre-v3 reports have no
/// per-cell `balancer` key (those sweeps ran round-robin); pre-v6 reports
/// have no `workload_source` key (every cell replayed a synthetic
/// generator). Workload source is part of the identity so a trace-file cell
/// is never diffed against a synthetic cell that happens to share its
/// workload name.
fn cell_key(cell: &JsonValue) -> Option<String> {
    let field = |key: &str, default: Option<&str>| {
        cell.get(key)
            .and_then(JsonValue::as_str)
            .or(default)
            .map(str::to_string)
    };
    Some(
        [
            field("workload", None)?,
            field("workload_source", Some("synthetic"))?,
            field("platform", None)?,
            field("scheduler", None)?,
            field("keepalive", None)?,
            field("scaling", Some("fixed"))?,
            field("balancer", Some("round-robin"))?,
            field("cold_path", Some("flash"))?,
            field("ipc", Some("shm"))?,
        ]
        .join("/"),
    )
}

/// The report's schema tag; reports predating the tag count as `"(untagged)"`.
fn schema_of(report: &JsonValue) -> &str {
    report
        .get("schema")
        .and_then(JsonValue::as_str)
        .unwrap_or("(untagged)")
}

fn cells(report: &JsonValue, which: &'static str) -> Result<Vec<JsonValue>, GateError> {
    report
        .get("cells")
        .and_then(JsonValue::as_array)
        .map(<[JsonValue]>::to_vec)
        .ok_or(GateError::MissingCells { which })
}

/// Diffs `current` against `baseline` (both rendered at-scale reports) and
/// returns every mean/p99 latency regression beyond `threshold_pct` percent.
pub fn compare_reports(
    baseline: &str,
    current: &str,
    threshold_pct: f64,
) -> Result<GateOutcome, GateError> {
    let parse = |text: &str, which: &'static str| {
        JsonValue::parse(text).map_err(|err| GateError::Malformed {
            which,
            message: err.to_string(),
        })
    };
    let baseline = parse(baseline, "baseline")?;
    let current = parse(current, "current")?;
    let baseline_cells = cells(&baseline, "baseline")?;
    let current_cells = cells(&current, "current")?;

    // A schema bump means the cells are not comparable (the report layout —
    // or the modelled physics behind the numbers — changed). Pass vacuously
    // with a note rather than diffing incomparable latencies; the next run's
    // baseline will carry the new schema and the gate re-arms.
    let (baseline_schema, current_schema) = (schema_of(&baseline), schema_of(&current));
    if baseline_schema != current_schema {
        return Ok(GateOutcome {
            compared: 0,
            skipped: baseline_cells.len() + current_cells.len(),
            regressions: Vec::new(),
            throughput_warnings: Vec::new(),
            regret_warnings: Vec::new(),
            schema_note: Some(format!(
                "baseline schema {baseline_schema} != current schema {current_schema}; \
                 reports are not comparable, passing vacuously"
            )),
        });
    }

    let baseline_by_key: Vec<(String, &JsonValue)> = baseline_cells
        .iter()
        .filter_map(|c| cell_key(c).map(|k| (k, c)))
        .collect();

    let mut compared = 0;
    let mut skipped = 0;
    let mut regressions = Vec::new();
    let mut throughput_warnings = Vec::new();
    let mut regret_warnings = Vec::new();
    let mut matched_keys = 0;
    // Measured engine throughput: warn (never fail) when a drop exceeds the
    // threshold. Sides lacking the measured key — deterministic reports, or
    // pre-v5 baselines — produce no warning. Non-finite or zero baselines
    // (a sweep too fast to time, or a hand-damaged artifact) also warn
    // nothing: dividing by them would poison the worst-first sort below
    // with inf/NaN percentages.
    let mut check_throughput = |label: String, base: &JsonValue, cur: &JsonValue| {
        let (Some(before), Some(after)) = (
            base.get("events_per_sec").and_then(JsonValue::as_f64),
            cur.get("events_per_sec").and_then(JsonValue::as_f64),
        ) else {
            return;
        };
        if !before.is_finite() || !after.is_finite() {
            return;
        }
        if before > 0.0 && after < before * (1.0 - threshold_pct / 100.0) {
            throughput_warnings.push(ThroughputWarning {
                cell: label,
                baseline: before,
                current: after,
                drop_pct: (1.0 - after / before) * 100.0,
            });
        }
    };
    check_throughput("(aggregate)".to_string(), &baseline, &current);
    for cell in &current_cells {
        let Some(key) = cell_key(cell) else {
            skipped += 1;
            continue;
        };
        let Some((_, base)) = baseline_by_key.iter().find(|(k, _)| *k == key) else {
            skipped += 1;
            continue;
        };
        matched_keys += 1;
        compared += 1;
        check_throughput(key.clone(), base, cell);
        // Policy regret (v7): warn when a cell drifted away from the offline
        // bound by more than `threshold_pct` percentage points. Absolute
        // comparison — see [`RegretWarning::increase_points`]; cells lacking
        // the field (pre-v7 hand-trimmed reports) warn nothing.
        if let (Some(before), Some(after)) = (
            base.get("regret_pct").and_then(JsonValue::as_f64),
            cell.get("regret_pct").and_then(JsonValue::as_f64),
        ) {
            let increase = (after - before) * 100.0;
            if before.is_finite()
                && after.is_finite()
                && increase > threshold_pct.max(REGRET_FLOOR_POINTS)
            {
                regret_warnings.push(RegretWarning {
                    cell: key.clone(),
                    baseline: before,
                    current: after,
                    increase_points: increase,
                });
            }
        }
        for metric in GATED_METRICS {
            let (Some(before), Some(after)) = (
                base.get(metric).and_then(JsonValue::as_f64),
                cell.get(metric).and_then(JsonValue::as_f64),
            ) else {
                continue;
            };
            if before < METRIC_FLOOR_MS && after < METRIC_FLOOR_MS {
                continue;
            }
            if before > 0.0 && after > before * (1.0 + threshold_pct / 100.0) {
                regressions.push(Regression {
                    cell: key.clone(),
                    metric,
                    baseline: before,
                    current: after,
                    change_pct: (after / before - 1.0) * 100.0,
                });
            }
        }
    }
    skipped += baseline_by_key.len().saturating_sub(matched_keys);
    regressions.sort_by(|a, b| {
        b.change_pct
            .partial_cmp(&a.change_pct)
            .expect("finite percentages")
            .then_with(|| a.cell.cmp(&b.cell))
    });
    throughput_warnings.sort_by(|a, b| {
        b.drop_pct
            .partial_cmp(&a.drop_pct)
            .expect("finite percentages")
            .then_with(|| a.cell.cmp(&b.cell))
    });
    regret_warnings.sort_by(|a, b| {
        b.increase_points
            .partial_cmp(&a.increase_points)
            .expect("finite points")
            .then_with(|| a.cell.cmp(&b.cell))
    });
    Ok(GateOutcome {
        compared,
        skipped,
        regressions,
        throughput_warnings,
        regret_warnings,
        schema_note: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cells: &[(&str, f64, f64)]) -> String {
        let mut root = JsonValue::object();
        root.push("schema", "dscs-at-scale-v2");
        root.push(
            "cells",
            JsonValue::Array(
                cells
                    .iter()
                    .map(|&(keepalive, mean, p99)| {
                        let mut c = JsonValue::object();
                        c.push("workload", "azure");
                        c.push("platform", "DSCS-DSA");
                        c.push("scheduler", "fcfs");
                        c.push("keepalive", keepalive);
                        c.push("scaling", "fixed");
                        c.push("mean_latency_ms", mean);
                        c.push("p99_latency_ms", p99);
                        c
                    })
                    .collect(),
            ),
        );
        root.render()
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(&[("fixed-window", 10.0, 20.0)]);
        let outcome = compare_reports(&r, &r, 10.0).expect("valid");
        assert!(outcome.passed());
        assert_eq!(outcome.compared, 1);
        assert_eq!(outcome.skipped, 0);
    }

    #[test]
    fn regressions_beyond_threshold_fail_worst_first() {
        let base = report(&[("fixed-window", 10.0, 20.0), ("no-keepalive", 5.0, 9.0)]);
        let cur = report(&[("fixed-window", 10.5, 25.0), ("no-keepalive", 8.0, 9.0)]);
        let outcome = compare_reports(&base, &cur, 10.0).expect("valid");
        assert!(!outcome.passed());
        // mean 10 -> 10.5 is +5%, below threshold; p99 20 -> 25 and
        // mean 5 -> 8 are beyond it.
        assert_eq!(outcome.regressions.len(), 2);
        assert_eq!(outcome.regressions[0].metric, "mean_latency_ms");
        assert!((outcome.regressions[0].change_pct - 60.0).abs() < 1e-9);
        assert_eq!(outcome.regressions[1].metric, "p99_latency_ms");
        assert!(outcome.regressions[0].to_string().contains("no-keepalive"));
    }

    #[test]
    fn improvements_and_new_cells_pass() {
        let base = report(&[("fixed-window", 10.0, 20.0)]);
        let cur = report(&[("fixed-window", 8.0, 15.0), ("hybrid-prewarm", 50.0, 90.0)]);
        let outcome = compare_reports(&base, &cur, 10.0).expect("valid");
        assert!(outcome.passed());
        assert_eq!(outcome.compared, 1);
        assert_eq!(outcome.skipped, 1, "the new cell is skipped, not failed");
    }

    /// Satellite regression test: a baseline carrying an older schema
    /// version (e.g. the v2 artifact of the run before a schema bump) passes
    /// vacuously with an explanatory note instead of erroring on missing
    /// fields or flagging spurious regressions against changed physics.
    #[test]
    fn older_schema_baselines_pass_vacuously_with_a_note() {
        let mut v2_cell = JsonValue::object();
        v2_cell.push("workload", "azure");
        v2_cell.push("platform", "DSCS-DSA");
        v2_cell.push("scheduler", "fcfs");
        v2_cell.push("keepalive", "fixed-window");
        v2_cell.push("scaling", "fixed");
        v2_cell.push("mean_latency_ms", 10.0);
        v2_cell.push("p99_latency_ms", 20.0);
        let mut v2 = JsonValue::object();
        v2.push("schema", "dscs-at-scale-v2");
        v2.push("cells", JsonValue::Array(vec![v2_cell]));

        let mut v3 = JsonValue::parse(&report(&[("fixed-window", 1000.0, 2000.0)])).expect("json");
        let JsonValue::Object(pairs) = &mut v3 else {
            panic!("report is an object")
        };
        pairs[0].1 = JsonValue::from("dscs-at-scale-v3");

        // A 100x "regression" against the old schema still passes: the
        // numbers are not comparable across the bump.
        let outcome = compare_reports(&v2.render(), &v3.render(), 10.0).expect("valid");
        assert!(outcome.passed());
        assert_eq!(outcome.compared, 0);
        assert_eq!(outcome.skipped, 2);
        let note = outcome.schema_note.expect("note explains the vacuous pass");
        assert!(note.contains("dscs-at-scale-v2") && note.contains("dscs-at-scale-v3"));

        // Same schema on both sides: the gate compares and arms normally.
        let same = compare_reports(
            &report(&[("fixed-window", 10.0, 20.0)]),
            &report(&[("fixed-window", 10.0, 20.0)]),
            10.0,
        )
        .expect("valid");
        assert_eq!(same.schema_note, None);
        assert_eq!(same.compared, 1);
    }

    #[test]
    fn cells_differing_only_by_balancer_are_distinct() {
        let cell = |balancer: &str, mean: f64| {
            let mut c = JsonValue::object();
            c.push("workload", "azure");
            c.push("platform", "DSCS-DSA");
            c.push("scheduler", "fcfs");
            c.push("keepalive", "fixed-window");
            c.push("scaling", "fixed");
            c.push("balancer", balancer);
            c.push("mean_latency_ms", mean);
            c.push("p99_latency_ms", mean * 2.0);
            c
        };
        let make = |cells: Vec<JsonValue>| {
            let mut root = JsonValue::object();
            root.push("schema", "dscs-at-scale-v3");
            root.push("cells", JsonValue::Array(cells));
            root.render()
        };
        let base = make(vec![cell("round-robin", 10.0), cell("locality", 5.0)]);
        // The locality cell regresses, the round-robin cell improves: the
        // gate must not cross-match them.
        let cur = make(vec![cell("round-robin", 9.0), cell("locality", 8.0)]);
        let outcome = compare_reports(&base, &cur, 10.0).expect("valid");
        assert_eq!(outcome.compared, 2);
        assert_eq!(outcome.regressions.len(), 2, "locality mean and p99");
        assert!(outcome.regressions[0].cell.contains("locality"));
    }

    /// Satellite regression test: the v8 modality axes are part of cell
    /// identity, so a snapshot-restore cell is never diffed against the
    /// flash-reload cell sharing its policy point, and an http-transport
    /// cell is never diffed against its shm twin. Cells omitting the keys
    /// (hand-trimmed reports) default to the historical `"flash"`/`"shm"`.
    #[test]
    fn cells_differing_only_by_cold_path_or_ipc_are_distinct() {
        let cell = |path: Option<&str>, ipc: Option<&str>, mean: f64| {
            let mut c = JsonValue::object();
            c.push("workload", "azure");
            c.push("platform", "DSCS-DSA");
            c.push("scheduler", "fcfs");
            c.push("keepalive", "fixed-window");
            c.push("scaling", "fixed");
            c.push("balancer", "round-robin");
            if let Some(path) = path {
                c.push("cold_path", path);
            }
            if let Some(ipc) = ipc {
                c.push("ipc", ipc);
            }
            c.push("mean_latency_ms", mean);
            c.push("p99_latency_ms", mean * 2.0);
            c
        };
        let make = |cells: Vec<JsonValue>| {
            let mut root = JsonValue::object();
            root.push("schema", "dscs-at-scale-v8");
            root.push("cells", JsonValue::Array(cells));
            root.render()
        };
        let base = make(vec![
            cell(Some("flash"), Some("shm"), 10.0),
            cell(Some("snapshot"), Some("shm"), 5.0),
            cell(Some("flash"), Some("http"), 12.0),
        ]);
        // Only the snapshot cell regresses; its flash/http neighbours
        // improve. Cross-matching any of them would hide the regression or
        // flag a spurious one.
        let cur = make(vec![
            cell(Some("flash"), Some("shm"), 9.0),
            cell(Some("snapshot"), Some("shm"), 8.0),
            cell(Some("flash"), Some("http"), 11.0),
        ]);
        let outcome = compare_reports(&base, &cur, 10.0).expect("valid");
        assert_eq!(outcome.compared, 3);
        assert_eq!(outcome.regressions.len(), 2, "snapshot mean and p99");
        assert!(outcome.regressions[0].cell.contains("snapshot"));
        // A cell lacking the keys defaults to "flash"/"shm", so same-version
        // reports that omit them still match their historical twins.
        let untagged = make(vec![cell(None, None, 10.0)]);
        let tagged = make(vec![cell(Some("flash"), Some("shm"), 10.0)]);
        let defaulted = compare_reports(&untagged, &tagged, 10.0).expect("valid");
        assert_eq!(defaulted.compared, 1);
        assert_eq!(defaulted.skipped, 0);
    }

    /// Engine-throughput drops warn without failing: a >10% `events_per_sec`
    /// regression (per cell and aggregate) is reported, worst first, but the
    /// gate still passes; reports without the measured fields warn nothing.
    /// Satellite regression test: the workload's source is part of cell
    /// identity, so a trace-file replay of "azure" traffic is never diffed
    /// against the synthetic "azure" cell (within one schema version; a
    /// cross-version comparison already passes vacuously).
    #[test]
    fn cells_differing_only_by_workload_source_are_distinct() {
        let cell = |source: Option<&str>, mean: f64| {
            let mut c = JsonValue::object();
            c.push("workload", "azure");
            if let Some(source) = source {
                c.push("workload_source", source);
            }
            c.push("platform", "DSCS-DSA");
            c.push("scheduler", "fcfs");
            c.push("keepalive", "fixed-window");
            c.push("scaling", "fixed");
            c.push("balancer", "round-robin");
            c.push("mean_latency_ms", mean);
            c.push("p99_latency_ms", mean * 2.0);
            c
        };
        let make = |cells: Vec<JsonValue>| {
            let mut root = JsonValue::object();
            root.push("schema", "dscs-at-scale-v6");
            root.push("cells", JsonValue::Array(cells));
            root.render()
        };
        let base = make(vec![
            cell(Some("synthetic"), 10.0),
            cell(Some("trace-file:day1.csv"), 5.0),
        ]);
        // The trace-file cell regresses, the synthetic cell improves: the
        // gate must not cross-match them on the shared workload name.
        let cur = make(vec![
            cell(Some("synthetic"), 9.0),
            cell(Some("trace-file:day1.csv"), 8.0),
        ]);
        let outcome = compare_reports(&base, &cur, 10.0).expect("valid");
        assert_eq!(outcome.compared, 2);
        assert_eq!(outcome.regressions.len(), 2, "trace-file mean and p99");
        assert!(outcome.regressions[0].cell.contains("trace-file:day1.csv"));
        // A cell lacking the key defaults to "synthetic", so same-version
        // reports that omit it still match their synthetic twins.
        let untagged = make(vec![cell(None, 10.0)]);
        let tagged = make(vec![cell(Some("synthetic"), 10.0)]);
        let matched = compare_reports(&untagged, &tagged, 10.0).expect("valid");
        assert_eq!(matched.compared, 1);
        assert_eq!(matched.skipped, 0);
    }

    #[test]
    fn throughput_drops_warn_but_never_fail() {
        let make = |aggregate_eps: f64, cell_eps: f64| {
            let mut c = JsonValue::object();
            c.push("workload", "azure");
            c.push("platform", "DSCS-DSA");
            c.push("scheduler", "fcfs");
            c.push("keepalive", "fixed-window");
            c.push("scaling", "fixed");
            c.push("balancer", "round-robin");
            c.push("mean_latency_ms", 10.0);
            c.push("p99_latency_ms", 20.0);
            c.push("events_per_sec", cell_eps);
            let mut root = JsonValue::object();
            root.push("schema", "dscs-at-scale-v5");
            root.push("events_per_sec", aggregate_eps);
            root.push("cells", JsonValue::Array(vec![c]));
            root.render()
        };
        // Aggregate halves (-50%), the cell drops 20%: both warned, worst
        // first, and the gate still passes.
        let outcome = compare_reports(&make(1e6, 1e5), &make(5e5, 8e4), 10.0).expect("valid");
        assert!(outcome.passed(), "throughput drops must not fail the gate");
        assert_eq!(outcome.regressions, Vec::new());
        assert_eq!(outcome.throughput_warnings.len(), 2);
        assert_eq!(outcome.throughput_warnings[0].cell, "(aggregate)");
        assert!((outcome.throughput_warnings[0].drop_pct - 50.0).abs() < 1e-9);
        assert!(outcome.throughput_warnings[1].cell.contains("azure"));
        assert!(outcome.throughput_warnings[0]
            .to_string()
            .contains("events_per_sec"));
        // Within threshold, or faster: no warnings.
        let fine = compare_reports(&make(1e6, 1e5), &make(9.5e5, 2e5), 10.0).expect("valid");
        assert_eq!(fine.throughput_warnings, Vec::new());
        // Baselines without the measured fields (deterministic reports)
        // produce no warnings either.
        let bare = report(&[("fixed-window", 10.0, 20.0)]);
        let warned = compare_reports(&bare, &bare, 10.0).expect("valid");
        assert_eq!(warned.throughput_warnings, Vec::new());
    }

    /// Satellite regression test: a baseline cell carrying
    /// `events_per_sec: 0.0` (a sweep too fast for the wall clock to
    /// resolve) must produce no warning at all — not an inf/NaN drop
    /// percentage that poisons the worst-first sort.
    #[test]
    fn zero_throughput_baselines_warn_nothing() {
        let make = |eps: f64| {
            let mut c = JsonValue::object();
            c.push("workload", "azure");
            c.push("platform", "DSCS-DSA");
            c.push("scheduler", "fcfs");
            c.push("keepalive", "fixed-window");
            c.push("scaling", "fixed");
            c.push("balancer", "round-robin");
            c.push("mean_latency_ms", 10.0);
            c.push("p99_latency_ms", 20.0);
            c.push("events_per_sec", eps);
            let mut root = JsonValue::object();
            root.push("schema", "dscs-at-scale-v5");
            root.push("events_per_sec", eps);
            root.push("cells", JsonValue::Array(vec![c]));
            root.render()
        };
        let outcome = compare_reports(&make(0.0), &make(1e5), 10.0).expect("valid");
        assert!(outcome.passed());
        assert_eq!(outcome.throughput_warnings, Vec::new());
        // And a genuine drop onto a zero current value still warns cleanly:
        // the percentage is computed off the (positive) baseline.
        let dropped = compare_reports(&make(1e5), &make(0.0), 10.0).expect("valid");
        assert_eq!(dropped.throughput_warnings.len(), 2);
        assert!(dropped
            .throughput_warnings
            .iter()
            .all(|w| w.drop_pct.is_finite()));
    }

    /// Regret increases warn (worst first) without failing; decreases and
    /// sub-threshold drifts warn nothing, and reports lacking the v7 regret
    /// fields pass vacuously.
    #[test]
    fn regret_increases_warn_but_never_fail() {
        let make = |regrets: &[(&str, f64)]| {
            let mut root = JsonValue::object();
            root.push("schema", "dscs-at-scale-v7");
            root.push(
                "cells",
                JsonValue::Array(
                    regrets
                        .iter()
                        .map(|&(keepalive, regret)| {
                            let mut c = JsonValue::object();
                            c.push("workload", "azure");
                            c.push("platform", "DSCS-DSA");
                            c.push("scheduler", "fcfs");
                            c.push("keepalive", keepalive);
                            c.push("scaling", "fixed");
                            c.push("balancer", "round-robin");
                            c.push("mean_latency_ms", 10.0);
                            c.push("p99_latency_ms", 20.0);
                            c.push("regret_pct", regret);
                            c
                        })
                        .collect(),
                ),
            );
            root.render()
        };
        // no-keepalive jumps 0.50 -> 1.00 (+50 points), fixed-window drifts
        // +0.05 points: only the jump warns, and the gate still passes.
        let base = make(&[("no-keepalive", 0.50), ("fixed-window", 0.10)]);
        let cur = make(&[("no-keepalive", 1.00), ("fixed-window", 0.1005)]);
        let outcome = compare_reports(&base, &cur, 10.0).expect("valid");
        assert!(outcome.passed(), "regret is warn-only");
        assert_eq!(outcome.regret_warnings.len(), 1);
        let warning = &outcome.regret_warnings[0];
        assert!(warning.cell.contains("no-keepalive"));
        assert!((warning.increase_points - 50.0).abs() < 1e-9);
        assert!(warning.to_string().contains("regret_pct"));
        // Improvements warn nothing.
        let improved = compare_reports(&cur, &base, 10.0).expect("valid");
        assert_eq!(improved.regret_warnings, Vec::new());
        // A same-schema report without regret fields warns nothing (the
        // cross-schema pre-v7 case already passes vacuously with a note).
        let bare = report(&[("fixed-window", 10.0, 20.0)]);
        let vacuous = compare_reports(&bare, &bare, 10.0).expect("valid");
        assert_eq!(vacuous.regret_warnings, Vec::new());
    }

    #[test]
    fn malformed_reports_are_typed_errors() {
        let good = report(&[("fixed-window", 10.0, 20.0)]);
        assert!(matches!(
            compare_reports("not json", &good, 10.0),
            Err(GateError::Malformed {
                which: "baseline",
                ..
            })
        ));
        assert!(matches!(
            compare_reports(&good, "{}", 10.0),
            Err(GateError::MissingCells { which: "current" })
        ));
    }
}
