//! Pluggable scheduling, keepalive and load-balancing policies.
//!
//! The paper's at-scale evaluation fixes one policy point: FCFS scheduling,
//! a 10-minute fixed keepalive, one rack. Serverless-platform studies (e.g.
//! *Serverless in the Wild*'s hybrid-histogram keepalive) show the policy
//! choice dominates cold-start behaviour and therefore tail latency, so the
//! cluster simulation threads three policy axes through every run:
//!
//! * [`SchedulerPolicy`] — which queued request starts next when an instance
//!   frees up (FCFS, shortest-job-first by model cost, per-benchmark fair).
//! * [`KeepalivePolicy`] — how long an idle function's container stays warm
//!   (none, fixed window, hybrid histogram learned from idle times), including
//!   the histogram's *prewarm window*: the head percentile of observed idle
//!   gaps, below which the container is released and proactively re-warmed in
//!   anticipation of the predicted next invocation.
//! * [`ScalingPolicy`] — how a rack's instance pool grows and shrinks (fixed
//!   cap, reactive queue-depth scaling, predictive scaling from the keepalive
//!   histograms' arrival-rate estimates).
//! * [`LoadBalancer`] — how a multi-rack front end shards arriving requests
//!   (round-robin, least-loaded, data-locality-aware with a spill
//!   threshold).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use dscs_core::benchmarks::Benchmark;
use dscs_simcore::time::{SimDuration, SimTime};

use crate::experiment::ConfigError;

/// Which queued request is started next when capacity frees up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// First-come-first-served (the paper's policy).
    Fcfs,
    /// Shortest job first, by the platform's modelled service time for the
    /// request's benchmark. Starves heavy benchmarks under overload but
    /// minimises mean latency.
    ShortestJobFirst,
    /// Round-robin over per-benchmark FIFO queues, so one hot application
    /// cannot starve the others.
    FairPerBenchmark,
}

impl SchedulerPolicy {
    /// Every scheduler policy.
    pub const ALL: [SchedulerPolicy; 3] = [
        SchedulerPolicy::Fcfs,
        SchedulerPolicy::ShortestJobFirst,
        SchedulerPolicy::FairPerBenchmark,
    ];

    /// Machine-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerPolicy::Fcfs => "fcfs",
            SchedulerPolicy::ShortestJobFirst => "sjf",
            SchedulerPolicy::FairPerBenchmark => "fair",
        }
    }
}

/// How long an idle function's container stays warm before eviction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KeepalivePolicy {
    /// Evict immediately: every non-concurrent invocation is a cold start.
    NoKeepalive,
    /// Keep every container warm for a fixed window after its last use
    /// (OpenWhisk-style; the paper assumes 10 minutes).
    FixedWindow(SimDuration),
    /// Hybrid histogram (after *Serverless in the Wild*): learn each
    /// function's idle-time distribution in a per-function histogram and keep
    /// the container warm to the tail percentile of observed idle times,
    /// falling back to `range` while the pattern is uncertain.
    ///
    /// With `head > 0`, the policy also *prewarms*: once a function's pattern
    /// is learned, its container is released at finish (freeing its memory)
    /// and proactively re-warmed at the head percentile of the observed idle
    /// gaps, so the predicted next invocation still finds a warm instance —
    /// the study's head/tail window pair. `head == 0` disables prewarming and
    /// keeps the container warm for the whole eviction window, the pre-PR-3
    /// behaviour.
    HybridHistogram {
        /// Maximum window (and histogram span).
        range: SimDuration,
        /// Histogram bin width.
        bin: SimDuration,
        /// Prewarm head percentile in `[0, 1)`; `0` disables prewarming.
        head: f64,
    },
}

impl KeepalivePolicy {
    /// The paper's fixed 10-minute keepalive.
    pub fn paper_default() -> Self {
        KeepalivePolicy::FixedWindow(SimDuration::from_secs(600))
    }

    /// The default hybrid-histogram configuration (10-minute range, 10-second
    /// bins — scaled-down analogues of the 4-hour/1-minute Azure study),
    /// without prewarming.
    pub fn hybrid_default() -> Self {
        KeepalivePolicy::HybridHistogram {
            range: SimDuration::from_secs(600),
            bin: SimDuration::from_secs(10),
            head: 0.0,
        }
    }

    /// The hybrid histogram with its prewarm window enabled at the study's
    /// 5th-percentile head.
    pub fn prewarm_default() -> Self {
        KeepalivePolicy::HybridHistogram {
            range: SimDuration::from_secs(600),
            bin: SimDuration::from_secs(10),
            head: 0.05,
        }
    }

    /// A representative instance of every keepalive policy.
    pub fn all_default() -> [KeepalivePolicy; 4] {
        [
            KeepalivePolicy::NoKeepalive,
            KeepalivePolicy::paper_default(),
            KeepalivePolicy::hybrid_default(),
            KeepalivePolicy::prewarm_default(),
        ]
    }

    /// Machine-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            KeepalivePolicy::NoKeepalive => "no-keepalive",
            KeepalivePolicy::FixedWindow(_) => "fixed-window",
            KeepalivePolicy::HybridHistogram { head, .. } if *head > 0.0 => "hybrid-prewarm",
            KeepalivePolicy::HybridHistogram { .. } => "hybrid-histogram",
        }
    }

    /// Checks the policy parameters, returning the first violation found.
    /// Today the one typed check is the hybrid histogram's prewarm head:
    /// it must stay *strictly below* the tail percentile the eviction window
    /// is sized from ([`HYBRID_TAIL`]) — a head at or above the tail would
    /// schedule the proactive re-warm at or after the container's own
    /// eviction, so the prewarm could never land. `head ∈ [0, 1)` alone
    /// (the historical assertion) admits that misconfiguration.
    pub fn check(&self) -> Result<(), ConfigError> {
        match self {
            KeepalivePolicy::HybridHistogram { head, .. } if *head >= HYBRID_TAIL => {
                Err(ConfigError::PrewarmHeadAboveTail {
                    head: *head,
                    tail: HYBRID_TAIL,
                })
            }
            _ => Ok(()),
        }
    }
}

/// Default queue depth above which the locality-aware balancer abandons a
/// replica rack and spills to the least-loaded rack.
pub const DEFAULT_SPILL_THRESHOLD: usize = 64;

/// How a multi-rack front end shards arriving requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoadBalancer {
    /// Rotate through racks in arrival order.
    RoundRobin,
    /// Send each request to the rack with the fewest in-flight plus queued
    /// requests (ties broken by lowest rack index, for determinism).
    LeastLoaded,
    /// Data-locality-aware: prefer the least-loaded rack holding a replica of
    /// the request's object (no cross-rack fetch), but spill to the globally
    /// least-loaded rack — paying the fetch — once the best replica rack's
    /// queue exceeds `spill_threshold`. This is the locality-vs-load tension
    /// the in-storage execution model lives on: data does not move, so either
    /// the request goes to the data or the bytes cross the fabric.
    LocalityAware {
        /// Queue depth at a replica rack beyond which the request spills to
        /// the least-loaded rack instead.
        spill_threshold: usize,
    },
}

impl LoadBalancer {
    /// Every balancer (the locality policy at its default spill threshold).
    pub const ALL: [LoadBalancer; 3] = [
        LoadBalancer::RoundRobin,
        LoadBalancer::LeastLoaded,
        LoadBalancer::LocalityAware {
            spill_threshold: DEFAULT_SPILL_THRESHOLD,
        },
    ];

    /// The locality-aware balancer at its default spill threshold.
    pub fn locality_default() -> Self {
        LoadBalancer::LocalityAware {
            spill_threshold: DEFAULT_SPILL_THRESHOLD,
        }
    }

    /// Machine-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            LoadBalancer::RoundRobin => "round-robin",
            LoadBalancer::LeastLoaded => "least-loaded",
            LoadBalancer::LocalityAware { .. } => "locality",
        }
    }
}

/// How a rack's function-instance pool grows and shrinks.
///
/// The paper pins each rack at a fixed 200-instance cap. Production
/// serverless platforms instead scale the pool elastically: reactively on
/// observed queue pressure, or predictively from learned arrival rates. Both
/// elastic policies respect the rack's `[min_instances, max_instances]`
/// bounds and pay a modelled provisioning delay on every scale-up, so the
/// simulation exposes the scaling-lag vs. cold-start tradeoff.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScalingPolicy {
    /// The paper's policy: the rack always runs `max_instances`.
    Fixed,
    /// Queue-depth reactive scaling, evaluated every `interval`: grow by
    /// `step` while the queue is at or above `scale_up_queue`, shrink by
    /// `step` while it is at or below `scale_down_queue`.
    Reactive {
        /// Queue depth at or above which the rack requests more instances.
        scale_up_queue: usize,
        /// Queue depth at or below which the rack releases instances.
        scale_down_queue: usize,
        /// Instances added or removed per scaling decision.
        step: u32,
        /// Decision evaluation interval (the policy's reaction lag).
        interval: SimDuration,
    },
    /// Predictive scaling, evaluated every `interval`: size the pool to the
    /// keepalive histograms' aggregate arrival-rate estimate times the mean
    /// modelled service time, padded by `headroom`.
    Predictive {
        /// Decision evaluation interval.
        interval: SimDuration,
        /// Capacity multiplier on the predicted demand (>= 1 keeps slack).
        headroom: f64,
    },
}

impl ScalingPolicy {
    /// The default reactive configuration: react every 5 seconds, grow by 32
    /// instances when 32+ requests queue, shrink when the queue is nearly
    /// empty.
    pub fn reactive_default() -> Self {
        ScalingPolicy::Reactive {
            scale_up_queue: 32,
            scale_down_queue: 2,
            step: 32,
            interval: SimDuration::from_secs(5),
        }
    }

    /// The default predictive configuration: re-estimate every 5 seconds with
    /// 25% capacity headroom over the predicted demand.
    pub fn predictive_default() -> Self {
        ScalingPolicy::Predictive {
            interval: SimDuration::from_secs(5),
            headroom: 1.25,
        }
    }

    /// A representative instance of every scaling policy.
    pub fn all_default() -> [ScalingPolicy; 3] {
        [
            ScalingPolicy::Fixed,
            ScalingPolicy::reactive_default(),
            ScalingPolicy::predictive_default(),
        ]
    }

    /// Machine-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ScalingPolicy::Fixed => "fixed",
            ScalingPolicy::Reactive { .. } => "reactive",
            ScalingPolicy::Predictive { .. } => "predictive",
        }
    }

    /// The decision interval, or `None` for the fixed cap (which never
    /// re-evaluates).
    pub fn interval(&self) -> Option<SimDuration> {
        match self {
            ScalingPolicy::Fixed => None,
            ScalingPolicy::Reactive { interval, .. }
            | ScalingPolicy::Predictive { interval, .. } => Some(*interval),
        }
    }

    /// Checks the policy parameters, returning the first violation found: a
    /// zero decision interval (the simulation would tick forever without
    /// advancing), a zero reactive step, overlapping reactive thresholds, or
    /// a non-finite / sub-unit predictive headroom.
    pub fn check(&self) -> Result<(), ConfigError> {
        match self {
            ScalingPolicy::Fixed => Ok(()),
            ScalingPolicy::Reactive {
                scale_up_queue,
                scale_down_queue,
                step,
                interval,
            } => {
                if interval.is_zero() {
                    return Err(ConfigError::ZeroScalingInterval { policy: "reactive" });
                }
                if *step == 0 {
                    return Err(ConfigError::ZeroReactiveStep);
                }
                if scale_down_queue >= scale_up_queue {
                    return Err(ConfigError::OverlappingReactiveThresholds {
                        scale_up_queue: *scale_up_queue,
                        scale_down_queue: *scale_down_queue,
                    });
                }
                Ok(())
            }
            ScalingPolicy::Predictive { interval, headroom } => {
                if interval.is_zero() {
                    return Err(ConfigError::ZeroScalingInterval {
                        policy: "predictive",
                    });
                }
                if !(headroom.is_finite() && *headroom >= 1.0) {
                    return Err(ConfigError::InvalidPredictiveHeadroom {
                        headroom: *headroom,
                    });
                }
                Ok(())
            }
        }
    }

    /// Checks the policy parameters, panicking on the first violation.
    ///
    /// # Panics
    /// Panics with the historical assertion messages on any violation
    /// [`ScalingPolicy::check`] reports.
    #[deprecated(
        since = "0.2.0",
        note = "use ScalingPolicy::check, which returns a typed ConfigError"
    )]
    pub fn validate(&self) {
        if let Err(err) = self.check() {
            panic!("{}", err.legacy_message());
        }
    }
}

/// A policy-driven scheduler queue over request indices into a trace.
///
/// All disciplines are deterministic: ties (equal service times, the
/// round-robin cursor) resolve by submission order.
///
/// `len`/`is_empty` are derived from the underlying per-policy structures
/// rather than a separately maintained counter. An earlier revision cached
/// the count and decremented it on pop, which under the fair round-robin
/// policy left the cached value trusting that no per-benchmark subqueue went
/// stale between a drain and the next audit; deriving the count makes the
/// accessors structurally consistent with the subqueues by construction.
#[derive(Debug)]
pub struct SchedQueue {
    policy: SchedulerPolicy,
    fcfs: VecDeque<usize>,
    // SJF: min-heap on (service nanos, submission seq), so equal service
    // times pop in FIFO order.
    sjf: BinaryHeap<Reverse<(u64, u64, usize)>>,
    seq: u64,
    per_bench: Vec<VecDeque<usize>>,
    cursor: usize,
}

impl SchedQueue {
    /// Creates an empty queue under `policy`.
    pub fn new(policy: SchedulerPolicy) -> Self {
        SchedQueue {
            policy,
            fcfs: VecDeque::new(),
            sjf: BinaryHeap::new(),
            seq: 0,
            per_bench: (0..Benchmark::ALL.len()).map(|_| VecDeque::new()).collect(),
            cursor: 0,
        }
    }

    /// Number of queued requests, counted from the live per-policy structures.
    pub fn len(&self) -> usize {
        match self.policy {
            SchedulerPolicy::Fcfs => self.fcfs.len(),
            SchedulerPolicy::ShortestJobFirst => self.sjf.len(),
            SchedulerPolicy::FairPerBenchmark => self.per_bench.iter().map(VecDeque::len).sum(),
        }
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues trace index `idx` for `benchmark` with modelled service time
    /// `service` (used by shortest-job-first ordering).
    pub fn push(&mut self, idx: usize, benchmark: Benchmark, service: SimDuration) {
        match self.policy {
            SchedulerPolicy::Fcfs => self.fcfs.push_back(idx),
            SchedulerPolicy::ShortestJobFirst => {
                self.sjf.push(Reverse((service.as_nanos(), self.seq, idx)));
                self.seq += 1;
            }
            SchedulerPolicy::FairPerBenchmark => {
                let b = Benchmark::ALL
                    .iter()
                    .position(|&x| x == benchmark)
                    .expect("benchmark in suite");
                self.per_bench[b].push_back(idx);
            }
        }
    }

    /// Removes and returns the next request to start, per the policy.
    pub fn pop(&mut self) -> Option<usize> {
        match self.policy {
            SchedulerPolicy::Fcfs => self.fcfs.pop_front(),
            SchedulerPolicy::ShortestJobFirst => self.sjf.pop().map(|Reverse((_, _, idx))| idx),
            SchedulerPolicy::FairPerBenchmark => {
                let n = self.per_bench.len();
                let mut found = None;
                for step in 0..n {
                    let b = (self.cursor + step) % n;
                    if let Some(idx) = self.per_bench[b].pop_front() {
                        self.cursor = (b + 1) % n;
                        found = Some(idx);
                        break;
                    }
                }
                found
            }
        }
    }
}

/// Runtime warm/cold bookkeeping for one rack under a [`KeepalivePolicy`].
///
/// Tracks, per function id, when its most recent invocation finishes and (for
/// the hybrid policy, or whenever arrival tracking is requested) a histogram
/// of observed idle gaps. The decision rule is conservative in the
/// *Serverless in the Wild* sense: a container is never evicted before the
/// policy's current window for its function has elapsed. With a prewarm head
/// percentile configured, the container is instead *released* at finish and
/// proactively re-warmed at the head percentile of the learned idle gaps —
/// trading a sliver of cold-start risk for the memory the container would
/// have held during the gap the pattern says never sees an arrival.
///
/// The state also keeps the warm-memory ledger the Figure-17-style comparison
/// needs: warm-seconds held per function pool and the share of them wasted
/// (held to eviction without a reuse), plus prewarm hits (invocations that
/// found a proactively warmed instance).
#[derive(Debug)]
pub struct KeepaliveState {
    policy: KeepalivePolicy,
    last_finish: HashMap<u32, SimTime>,
    histograms: HashMap<u32, IdleHistogram>,
    /// Per-function arrival statistics backing the learned arrival-rate
    /// estimate the predictive autoscaler consumes (fed by
    /// [`KeepaliveState::note_arrival`]).
    arrivals: HashMap<u32, ArrivalTrack>,
    /// Whether idle gaps are observed into the histograms (the hybrid
    /// policy's learning signal).
    observe_gaps: bool,
    /// Histogram geometry used for gap observation.
    gap_bin: SimDuration,
    gap_range: SimDuration,
    stats: KeepaliveStats,
}

/// Per-function arrival statistics behind the exponentially-decayed rate
/// estimate: an event counter whose mass decays with time constant
/// [`ARRIVAL_RATE_TAU_S`], so recent arrivals dominate and a diurnal rate
/// shift is tracked within a few time constants instead of being averaged
/// against the whole observed history. (A binned idle-gap mean cannot
/// resolve sub-bin inter-arrivals, which is exactly where demand is highest —
/// the decayed counter resolves them exactly.)
#[derive(Debug, Clone, Copy)]
struct ArrivalTrack {
    count: u64,
    first: SimTime,
    last: SimTime,
    /// Exponentially-decayed arrival mass as of `last`.
    decayed: f64,
}

/// Warm-memory and prewarming counters accumulated by a [`KeepaliveState`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KeepaliveStats {
    /// Warm starts the prewarm policy *predicted*: invocations of a
    /// learned-pattern function (under a non-zero head percentile) whose
    /// idle gap landed inside the prewarm-to-eviction band. When the
    /// function's prewarm window is non-zero the instance had actually been
    /// released and proactively re-warmed; with a zero window (all gaps
    /// inside the first bin) the prediction is degenerate — the container
    /// was simply kept warm — but the arrival still counts as anticipated.
    pub prewarm_hits: u64,
    /// Total container-idle seconds the policy held memory warm.
    pub warm_seconds: f64,
    /// The subset of [`KeepaliveStats::warm_seconds`] that never led to a
    /// warm start: windows held to eviction (or to the end of the run)
    /// without a reuse.
    pub wasted_warm_seconds: f64,
}

/// Minimum idle-gap observations before the hybrid histogram trusts its
/// learned tail over the conservative full range.
const HYBRID_MIN_SAMPLES: u64 = 10;
/// Fraction of observations the learned window must cover (the study's 99th
/// percentile). Public because it is also the exclusive upper bound on the
/// hybrid histogram's prewarm head percentile ([`KeepalivePolicy::check`]).
pub const HYBRID_TAIL: f64 = 0.99;
/// Safety margin multiplier on the learned tail window.
const HYBRID_MARGIN: f64 = 1.10;
/// Out-of-bounds rate above which the pattern is declared too spread to learn.
const HYBRID_OOB_LIMIT: f64 = 0.10;

#[derive(Debug, Default)]
struct IdleHistogram {
    bins: Vec<u64>,
    total: u64,
    out_of_bounds: u64,
}

impl IdleHistogram {
    fn observe(&mut self, idle: SimDuration, bin: SimDuration, range: SimDuration) {
        let n_bins = (range.as_nanos().div_ceil(bin.as_nanos())) as usize;
        if self.bins.is_empty() {
            self.bins = vec![0; n_bins.max(1)];
        }
        let idx = (idle.as_nanos() / bin.as_nanos()) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
            self.total += 1;
        } else {
            self.out_of_bounds += 1;
        }
    }

    /// The bin index covering `tail` of the observed mass.
    fn tail_bin(&self, tail: f64) -> usize {
        let mut seen = 0u64;
        for (i, &count) in self.bins.iter().enumerate() {
            seen += count;
            if seen as f64 >= tail * self.total as f64 {
                return i;
            }
        }
        self.bins.len().saturating_sub(1)
    }

    fn oob_rate(&self) -> f64 {
        let all = self.total + self.out_of_bounds;
        if all == 0 {
            0.0
        } else {
            self.out_of_bounds as f64 / all as f64
        }
    }
}

/// Histogram geometry used for arrival-rate tracking when the keepalive
/// policy itself is not histogram-based.
const TRACKING_RANGE: SimDuration = SimDuration::from_secs(600);
const TRACKING_BIN: SimDuration = SimDuration::from_secs(10);

/// Time constant (seconds) of the exponentially-decayed arrival-rate
/// estimator: arrivals older than a few minutes stop influencing the
/// predictive autoscaler's demand estimate.
const ARRIVAL_RATE_TAU_S: f64 = 60.0;

impl KeepaliveState {
    /// Creates empty state for `policy`.
    ///
    /// # Panics
    /// Panics if a hybrid-histogram policy has a zero bin width, a range
    /// smaller than one bin (the histogram would be degenerate), or a head
    /// percentile outside `[0, 1)`.
    pub fn new(policy: KeepalivePolicy) -> Self {
        let (observe_gaps, gap_bin, gap_range) = match policy {
            KeepalivePolicy::HybridHistogram { range, bin, head } => {
                assert!(
                    !bin.is_zero(),
                    "hybrid-histogram bin width must be non-zero"
                );
                assert!(range >= bin, "hybrid-histogram range must cover one bin");
                assert!(
                    (0.0..1.0).contains(&head),
                    "hybrid-histogram head percentile must be in [0, 1)"
                );
                (true, bin, range)
            }
            _ => (false, TRACKING_BIN, TRACKING_RANGE),
        };
        KeepaliveState {
            policy,
            last_finish: HashMap::new(),
            histograms: HashMap::new(),
            arrivals: HashMap::new(),
            observe_gaps,
            gap_bin,
            gap_range,
            stats: KeepaliveStats::default(),
        }
    }

    /// The policy this state enforces.
    pub fn policy(&self) -> KeepalivePolicy {
        self.policy
    }

    /// The accumulated prewarm/warm-memory counters.
    pub fn stats(&self) -> KeepaliveStats {
        self.stats
    }

    /// Whether the hybrid histogram for `function` has learned a trustworthy
    /// pattern (enough samples, few out-of-range gaps).
    fn learned(&self, function: u32) -> bool {
        self.histograms.get(&function).is_some_and(|hist| {
            hist.total >= HYBRID_MIN_SAMPLES && hist.oob_rate() <= HYBRID_OOB_LIMIT
        })
    }

    /// The current keepalive window for `function`: how long past its last
    /// finish a warm container survives.
    pub fn window(&self, function: u32) -> SimDuration {
        match self.policy {
            KeepalivePolicy::NoKeepalive => SimDuration::ZERO,
            KeepalivePolicy::FixedWindow(w) => w,
            KeepalivePolicy::HybridHistogram { range, bin, .. } => {
                if !self.learned(function) {
                    // Pattern unknown or too spread: stay conservative so a
                    // warm container is never evicted early.
                    return range;
                }
                let hist = &self.histograms[&function];
                let learned = bin * (hist.tail_bin(HYBRID_TAIL) as u64 + 1);
                (learned * HYBRID_MARGIN).min(range)
            }
        }
    }

    /// The current prewarm window for `function`: how long past its last
    /// finish the released container stays cold before it is proactively
    /// re-warmed. Zero — prewarming disabled, container warm from the finish
    /// on — unless the policy has a non-zero head percentile and the
    /// function's pattern is learned.
    ///
    /// The window is the left edge of the bin covering the head percentile of
    /// observed idle gaps (the study's 5th-percentile prewarm point): at most
    /// `head` of the observed mass lies below it, which is exactly the
    /// accepted cold-start risk the released memory buys. A function whose
    /// gaps all land in the first bin gets a zero window — its container is
    /// never released, and prewarming degenerates to the plain hybrid
    /// keepalive. Always `<=` the eviction window.
    pub fn prewarm_window(&self, function: u32) -> SimDuration {
        let KeepalivePolicy::HybridHistogram { bin, head, .. } = self.policy else {
            return SimDuration::ZERO;
        };
        if head <= 0.0 || !self.learned(function) {
            return SimDuration::ZERO;
        }
        let edge = self.histograms[&function].tail_bin(head);
        (bin * edge as u64).min(self.window(function))
    }

    /// Whether an invocation of `function` arriving at `now` finds a warm
    /// container, given its most recent finish time. A function whose
    /// previous invocation is still running (finish in the future) is always
    /// warm; with prewarming, an idle gap shorter than the prewarm window
    /// lands before the proactive re-warm and runs cold.
    pub fn is_warm(&self, function: u32, now: SimTime) -> bool {
        match self.last_finish.get(&function) {
            None => false,
            Some(&finish) => {
                let idle = now.saturating_since(finish);
                idle <= self.window(function)
                    && (idle.is_zero() || idle >= self.prewarm_window(function))
            }
        }
    }

    /// Records that an invocation of `function` starting at `now` will finish
    /// at `finish`, feeding the observed idle gap to the learning policy and
    /// the warm-memory ledger.
    pub fn record_invocation(&mut self, function: u32, now: SimTime, finish: SimTime) {
        if let Some(&prev) = self.last_finish.get(&function) {
            let idle = now.saturating_since(prev);
            let window = self.window(function);
            let prewarm = self.prewarm_window(function);
            if idle <= window && (idle.is_zero() || idle >= prewarm) {
                // Warm start: the pool held memory from the prewarm point (or
                // the finish, without prewarming) until this arrival.
                self.stats.warm_seconds += idle.saturating_sub(prewarm).as_secs_f64();
                if !idle.is_zero() && self.prewarm_enabled() && self.learned(function) {
                    self.stats.prewarm_hits += 1;
                }
            } else if idle > window {
                // Evicted before this arrival: the whole held window was
                // wasted.
                let held = window.saturating_sub(prewarm).as_secs_f64();
                self.stats.warm_seconds += held;
                self.stats.wasted_warm_seconds += held;
            }
            // Third case — cold because the arrival landed before the
            // prewarm point: the container was released at finish, so no
            // memory was held at all.
            if self.observe_gaps {
                let (bin, range) = (self.gap_bin, self.gap_range);
                self.histograms
                    .entry(function)
                    .or_default()
                    .observe(idle, bin, range);
            }
        }
        // Keep the furthest-out finish time: with many concurrent instances
        // the container pool stays warm until the last one drains.
        let entry = self.last_finish.entry(function).or_insert(finish);
        if finish > *entry {
            *entry = finish;
        }
    }

    /// Closes the warm-memory ledger at the end of a run: every container
    /// still warm at `end` held its (remaining) window without a further
    /// reuse, which counts as wasted. Functions are flushed in id order so
    /// the floating-point accumulation is deterministic.
    pub fn finish_accounting(&mut self, end: SimTime) {
        let mut functions: Vec<u32> = self.last_finish.keys().copied().collect();
        functions.sort_unstable();
        for function in functions {
            let finish = self.last_finish[&function];
            let elapsed = end.saturating_since(finish);
            let window = self.window(function);
            let prewarm = self.prewarm_window(function);
            let held = elapsed.min(window).saturating_sub(prewarm).as_secs_f64();
            self.stats.warm_seconds += held;
            self.stats.wasted_warm_seconds += held;
        }
    }

    /// Records that a request for `function` *arrived* at `now` (whether or
    /// not it could start immediately). The predictive autoscaler feeds this
    /// so its demand estimate tracks offered load rather than the throttled
    /// start rate a backlogged rack would otherwise observe.
    pub fn note_arrival(&mut self, function: u32, now: SimTime) {
        let track = self.arrivals.entry(function).or_insert(ArrivalTrack {
            count: 0,
            first: now,
            last: now,
            decayed: 0.0,
        });
        let dt = now.saturating_since(track.last).as_secs_f64();
        track.decayed = track.decayed * (-dt / ARRIVAL_RATE_TAU_S).exp() + 1.0;
        track.count += 1;
        track.last = now;
    }

    /// Aggregate arrival-rate estimate in requests/second at `now`, from the
    /// per-function arrival statistics kept alongside the keepalive
    /// histograms.
    ///
    /// Each function contributes an *exponentially-decayed* rate: its arrival
    /// mass decays with a 60-second time constant, is decayed
    /// further to `now`, de-biased by the half-event a discrete sum
    /// over-counts, and normalised by the effective window
    /// `tau * (1 - exp(-age/tau))` so the estimate is unbiased during warmup
    /// too. A whole-history mean — the previous implementation — adapts to a
    /// diurnal rate shift only as fast as the history grows; the decayed
    /// estimate forgets the stale rate within a few time constants, which is
    /// what lets the predictive autoscaler track shifting demand (see the
    /// step-change unit test).
    ///
    /// Functions are summed in id order so the floating-point accumulation is
    /// deterministic. Zero until at least one function has two arrivals (via
    /// [`KeepaliveState::note_arrival`]).
    pub fn arrival_rate_estimate(&self, now: SimTime) -> f64 {
        let mut functions: Vec<u32> = self.arrivals.keys().copied().collect();
        functions.sort_unstable();
        functions
            .iter()
            .map(|f| {
                let track = &self.arrivals[f];
                let age = now.saturating_since(track.first).as_secs_f64();
                if track.count < 2 || age <= 0.0 {
                    return 0.0;
                }
                let staleness = now.saturating_since(track.last).as_secs_f64();
                let mass = (track.decayed * (-staleness / ARRIVAL_RATE_TAU_S).exp() - 0.5).max(0.0);
                let window = ARRIVAL_RATE_TAU_S * (1.0 - (-age / ARRIVAL_RATE_TAU_S).exp());
                mass / window
            })
            .sum()
    }

    fn prewarm_enabled(&self) -> bool {
        matches!(self.policy, KeepalivePolicy::HybridHistogram { head, .. } if head > 0.0)
    }

    #[cfg(test)]
    fn last_finish_for_test(&self, function: u32) -> SimTime {
        self.last_finish[&function]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn fcfs_pops_in_submission_order() {
        let mut q = SchedQueue::new(SchedulerPolicy::Fcfs);
        for i in 0..5 {
            q.push(
                i,
                Benchmark::ALL[i % 8],
                SimDuration::from_millis(5 - i as u64),
            );
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sjf_pops_cheapest_first_with_fifo_ties() {
        let mut q = SchedQueue::new(SchedulerPolicy::ShortestJobFirst);
        q.push(0, Benchmark::ALL[0], SimDuration::from_millis(30));
        q.push(1, Benchmark::ALL[1], SimDuration::from_millis(10));
        q.push(2, Benchmark::ALL[2], SimDuration::from_millis(10));
        q.push(3, Benchmark::ALL[3], SimDuration::from_millis(20));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![1, 2, 3, 0]);
    }

    #[test]
    fn fair_round_robins_across_benchmarks() {
        let mut q = SchedQueue::new(SchedulerPolicy::FairPerBenchmark);
        // Three requests of benchmark 0, one of benchmark 1.
        q.push(10, Benchmark::ALL[0], SimDuration::from_millis(1));
        q.push(11, Benchmark::ALL[0], SimDuration::from_millis(1));
        q.push(12, Benchmark::ALL[0], SimDuration::from_millis(1));
        q.push(20, Benchmark::ALL[1], SimDuration::from_millis(1));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).collect();
        // The lone benchmark-1 request is served second, not last.
        assert_eq!(order, vec![10, 20, 11, 12]);
        assert!(q.is_empty());
    }

    #[test]
    fn no_keepalive_is_always_cold_after_finish() {
        let mut s = KeepaliveState::new(KeepalivePolicy::NoKeepalive);
        assert!(!s.is_warm(0, secs(0)));
        s.record_invocation(0, secs(0), secs(1));
        // Still running: warm.
        assert!(s.is_warm(0, secs(1)));
        // One nanosecond after finish: cold.
        assert!(!s.is_warm(0, SimTime::from_nanos(1_000_000_001)));
    }

    #[test]
    fn fixed_window_honours_its_window() {
        let mut s = KeepaliveState::new(KeepalivePolicy::FixedWindow(SimDuration::from_secs(60)));
        s.record_invocation(7, secs(0), secs(10));
        assert!(s.is_warm(7, secs(70)));
        assert!(!s.is_warm(7, secs(71)));
    }

    #[test]
    fn hybrid_starts_conservative_then_learns_the_tail() {
        let policy = KeepalivePolicy::HybridHistogram {
            range: SimDuration::from_secs(600),
            bin: SimDuration::from_secs(10),
            head: 0.0,
        };
        let mut s = KeepaliveState::new(policy);
        // Unknown function: full range.
        assert_eq!(s.window(3), SimDuration::from_secs(600));
        // Invocations every ~25 s: idle gaps land in the 20-30 s bin.
        let mut t = 0u64;
        for _ in 0..40 {
            s.record_invocation(3, secs(t), secs(t + 1));
            t += 26;
        }
        let w = s.window(3);
        assert!(
            w >= SimDuration::from_secs(30) && w < SimDuration::from_secs(60),
            "learned window {w}"
        );
        // The learned window still covers the observed pattern.
        assert!(s.is_warm(3, s.last_finish_for_test(3) + SimDuration::from_secs(25)));
    }

    #[test]
    fn hybrid_never_shrinks_below_observed_tail() {
        let policy = KeepalivePolicy::HybridHistogram {
            range: SimDuration::from_secs(600),
            bin: SimDuration::from_secs(10),
            head: 0.0,
        };
        let mut s = KeepaliveState::new(policy);
        let mut t = 0u64;
        for _ in 0..50 {
            s.record_invocation(1, secs(t), secs(t + 1));
            t += 45; // 44 s idle gaps
        }
        // Window must cover the 44 s gaps (bin 4 -> >= 50 s).
        assert!(s.window(1) >= SimDuration::from_secs(45), "{}", s.window(1));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bin_hybrid_histogram_is_rejected() {
        let _ = KeepaliveState::new(KeepalivePolicy::HybridHistogram {
            range: SimDuration::from_secs(600),
            bin: SimDuration::ZERO,
            head: 0.0,
        });
    }

    #[test]
    #[should_panic(expected = "head percentile")]
    fn out_of_range_prewarm_head_is_rejected() {
        let _ = KeepaliveState::new(KeepalivePolicy::HybridHistogram {
            range: SimDuration::from_secs(600),
            bin: SimDuration::from_secs(10),
            head: 1.0,
        });
    }

    #[test]
    fn concurrent_instances_keep_the_pool_warm() {
        let mut s = KeepaliveState::new(KeepalivePolicy::FixedWindow(SimDuration::from_secs(5)));
        s.record_invocation(0, secs(0), secs(100));
        s.record_invocation(0, secs(1), secs(2)); // shorter, finishes earlier
        assert!(s.is_warm(0, secs(50)), "long-running instance keeps warm");
    }

    /// Satellite regression test: `len`/`is_empty` stay consistent with the
    /// fair round-robin subqueues across interleaved pushes, pops and full
    /// drains — including pops on an already-empty queue, which previously
    /// relied on a separately maintained counter.
    #[test]
    fn fair_queue_len_stays_consistent_through_drains() {
        let mut q = SchedQueue::new(SchedulerPolicy::FairPerBenchmark);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None, "pop on empty returns None");
        assert_eq!(q.len(), 0, "pop on empty must not desync len");

        // Uneven load: three requests on benchmark 0, one on benchmark 3.
        q.push(0, Benchmark::ALL[0], SimDuration::from_millis(1));
        q.push(1, Benchmark::ALL[0], SimDuration::from_millis(1));
        q.push(2, Benchmark::ALL[3], SimDuration::from_millis(1));
        q.push(3, Benchmark::ALL[0], SimDuration::from_millis(1));
        assert_eq!(q.len(), 4);

        let mut remaining = 4;
        while q.pop().is_some() {
            remaining -= 1;
            assert_eq!(q.len(), remaining, "len tracks the live subqueues");
            assert_eq!(q.is_empty(), remaining == 0);
        }
        assert_eq!(remaining, 0);

        // After a full drain the stale (empty) subqueues and the round-robin
        // cursor must not leak phantom length.
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.len(), 0);

        // The queue keeps working after the drain.
        q.push(9, Benchmark::ALL[5], SimDuration::from_millis(1));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(9));
        assert!(q.is_empty());
    }

    #[test]
    fn scaling_policy_names_and_defaults() {
        assert_eq!(ScalingPolicy::Fixed.name(), "fixed");
        assert_eq!(ScalingPolicy::reactive_default().name(), "reactive");
        assert_eq!(ScalingPolicy::predictive_default().name(), "predictive");
        assert_eq!(ScalingPolicy::Fixed.interval(), None);
        for policy in ScalingPolicy::all_default() {
            assert_eq!(policy.check(), Ok(()));
        }
        assert!(ScalingPolicy::reactive_default().interval().is_some());
    }

    #[test]
    fn zero_interval_reactive_scaling_is_rejected() {
        let err = ScalingPolicy::Reactive {
            scale_up_queue: 1,
            scale_down_queue: 0,
            step: 1,
            interval: SimDuration::ZERO,
        }
        .check()
        .expect_err("zero interval");
        assert_eq!(err, ConfigError::ZeroScalingInterval { policy: "reactive" });
    }

    #[test]
    fn overlapping_reactive_thresholds_are_rejected() {
        let err = ScalingPolicy::Reactive {
            scale_up_queue: 4,
            scale_down_queue: 8,
            step: 1,
            interval: SimDuration::from_secs(5),
        }
        .check()
        .expect_err("overlap");
        assert_eq!(
            err,
            ConfigError::OverlappingReactiveThresholds {
                scale_up_queue: 4,
                scale_down_queue: 8
            }
        );
    }

    #[test]
    fn sub_unit_predictive_headroom_is_rejected() {
        let err = ScalingPolicy::Predictive {
            interval: SimDuration::from_secs(5),
            headroom: 0.5,
        }
        .check()
        .expect_err("sub-unit headroom");
        assert_eq!(
            err,
            ConfigError::InvalidPredictiveHeadroom { headroom: 0.5 }
        );
    }

    /// The deprecated panicking validator still raises the historical
    /// message, since legacy callers assert on it.
    #[test]
    #[should_panic(expected = "predictive headroom must be finite and >= 1")]
    #[allow(deprecated)]
    fn deprecated_validate_panics_with_the_legacy_message() {
        ScalingPolicy::Predictive {
            interval: SimDuration::from_secs(5),
            headroom: f64::NAN,
        }
        .validate();
    }

    #[test]
    fn keepalive_check_rejects_a_head_at_or_above_the_tail() {
        let policy = |head| KeepalivePolicy::HybridHistogram {
            range: SimDuration::from_secs(600),
            bin: SimDuration::from_secs(10),
            head,
        };
        assert_eq!(policy(0.0).check(), Ok(()));
        assert_eq!(policy(0.05).check(), Ok(()));
        assert_eq!(policy(HYBRID_TAIL - 1e-9).check(), Ok(()));
        for head in [HYBRID_TAIL, 0.995] {
            assert_eq!(
                policy(head).check(),
                Err(ConfigError::PrewarmHeadAboveTail {
                    head,
                    tail: HYBRID_TAIL,
                }),
                "head {head} must be rejected"
            );
        }
        // The non-hybrid policies have nothing to misconfigure.
        assert_eq!(KeepalivePolicy::NoKeepalive.check(), Ok(()));
        assert_eq!(KeepalivePolicy::paper_default().check(), Ok(()));
    }

    #[test]
    fn prewarm_window_is_zero_until_the_pattern_is_learned() {
        let mut s = KeepaliveState::new(KeepalivePolicy::prewarm_default());
        assert_eq!(s.prewarm_window(0), SimDuration::ZERO);
        // Reliable 45 s gaps: the head percentile floor lands at the 40 s bin
        // edge once learned, and stays below the eviction window.
        let mut t = 0u64;
        for _ in 0..40 {
            s.record_invocation(0, secs(t), secs(t + 1));
            t += 46;
        }
        let prewarm = s.prewarm_window(0);
        assert_eq!(prewarm, SimDuration::from_secs(40), "head-bin left edge");
        assert!(prewarm <= s.window(0));
    }

    #[test]
    fn prewarm_releases_the_container_before_its_window() {
        let mut s = KeepaliveState::new(KeepalivePolicy::prewarm_default());
        let mut t = 0u64;
        for _ in 0..40 {
            s.record_invocation(7, secs(t), secs(t + 1));
            t += 46;
        }
        let finish = s.last_finish_for_test(7);
        // Before the prewarm point: released, cold (except while running).
        assert!(s.is_warm(7, finish), "still running/just finished is warm");
        assert!(
            !s.is_warm(7, finish + SimDuration::from_secs(10)),
            "released before the prewarm point"
        );
        // Between prewarm and eviction: proactively warmed.
        assert!(s.is_warm(7, finish + SimDuration::from_secs(45)));
        // Past the eviction window: evicted.
        assert!(!s.is_warm(7, finish + SimDuration::from_secs(599)));
    }

    #[test]
    fn prewarm_hits_and_warm_seconds_accumulate() {
        let mut s = KeepaliveState::new(KeepalivePolicy::prewarm_default());
        let mut t = 0u64;
        for _ in 0..40 {
            s.record_invocation(3, secs(t), secs(t + 1));
            t += 46;
        }
        let stats = s.stats();
        assert!(stats.prewarm_hits > 0, "learned arrivals count as hits");
        assert!(stats.warm_seconds > 0.0);
        // Without prewarming the same history holds strictly more memory.
        let mut baseline = KeepaliveState::new(KeepalivePolicy::hybrid_default());
        let mut t = 0u64;
        for _ in 0..40 {
            baseline.record_invocation(3, secs(t), secs(t + 1));
            t += 46;
        }
        assert_eq!(baseline.stats().prewarm_hits, 0);
        assert!(baseline.stats().warm_seconds > stats.warm_seconds);
    }

    #[test]
    fn finish_accounting_charges_residual_warmth_as_wasted() {
        let mut s = KeepaliveState::new(KeepalivePolicy::FixedWindow(SimDuration::from_secs(60)));
        s.record_invocation(0, secs(0), secs(10));
        s.finish_accounting(secs(1000));
        let stats = s.stats();
        assert!((stats.warm_seconds - 60.0).abs() < 1e-9, "{stats:?}");
        assert!((stats.wasted_warm_seconds - 60.0).abs() < 1e-9, "{stats:?}");

        let mut none = KeepaliveState::new(KeepalivePolicy::NoKeepalive);
        none.record_invocation(0, secs(0), secs(10));
        none.finish_accounting(secs(1000));
        assert_eq!(none.stats().warm_seconds, 0.0, "no-keepalive holds nothing");
    }

    #[test]
    fn arrival_rate_estimate_tracks_noted_arrivals() {
        // One arrival every 20 s => 0.05 req/s, under any keepalive policy.
        let mut s = KeepaliveState::new(KeepalivePolicy::paper_default());
        assert_eq!(s.arrival_rate_estimate(secs(0)), 0.0, "no observations yet");
        for i in 0..30u64 {
            s.note_arrival(0, secs(i * 20));
        }
        let rate = s.arrival_rate_estimate(secs(29 * 20));
        assert!(
            (rate - 0.05).abs() < 0.05 * 0.05,
            "estimate {rate} should be within 5% of 1/20"
        );
        // Two functions sum their rates; sub-second inter-arrivals resolve
        // exactly (a binned estimator could not see past its bin width).
        let mut s = KeepaliveState::new(KeepalivePolicy::paper_default());
        for i in 0..30u64 {
            s.note_arrival(0, secs(i * 20));
        }
        for i in 0..601u64 {
            s.note_arrival(1, secs(520) + SimDuration::from_millis(i * 100));
        }
        let rate = s.arrival_rate_estimate(secs(580));
        assert!(
            (rate - 10.05).abs() < 0.5,
            "estimate {rate} should be ~10.05"
        );
    }

    /// Satellite regression test: the exponentially-decayed estimator
    /// converges to a step change in the offered rate much faster than the
    /// whole-history mean it replaced — the lag the ROADMAP called out.
    #[test]
    fn decayed_estimate_tracks_a_rate_step_faster_than_whole_history() {
        let mut s = KeepaliveState::new(KeepalivePolicy::paper_default());
        // Phase 1: 600 s at 0.1 req/s (one arrival every 10 s).
        let mut count = 0u64;
        for i in 0..60u64 {
            s.note_arrival(0, secs(i * 10));
            count += 1;
        }
        // Phase 2: the rate steps to 1 req/s for 240 s (four time constants).
        let mut last = secs(590);
        for i in 0..241u64 {
            last = secs(600 + i);
            s.note_arrival(0, last);
            count += 1;
        }
        let windowed = s.arrival_rate_estimate(last);
        let whole_history = (count - 1) as f64 / last.saturating_since(secs(0)).as_secs_f64();
        let true_rate = 1.0;
        assert!(
            (windowed - true_rate).abs() < 0.1,
            "decayed estimate {windowed} should sit near the new rate"
        );
        assert!(
            (whole_history - true_rate).abs() > 5.0 * (windowed - true_rate).abs(),
            "whole-history {whole_history} must lag far behind windowed {windowed}"
        );
    }

    /// After a long silence the decayed estimate forgets the old rate; the
    /// whole-history mean cannot.
    #[test]
    fn decayed_estimate_fades_when_arrivals_stop() {
        let mut s = KeepaliveState::new(KeepalivePolicy::paper_default());
        for i in 0..120u64 {
            s.note_arrival(0, secs(i));
        }
        let active = s.arrival_rate_estimate(secs(119));
        assert!(active > 0.8, "active estimate {active}");
        let faded = s.arrival_rate_estimate(secs(119 + 600));
        assert!(
            faded < 0.01 * active,
            "ten time constants of silence must fade the estimate: {faded}"
        );
    }
}
