//! Pluggable scheduling, keepalive and load-balancing policies.
//!
//! The paper's at-scale evaluation fixes one policy point: FCFS scheduling,
//! a 10-minute fixed keepalive, one rack. Serverless-platform studies (e.g.
//! *Serverless in the Wild*'s hybrid-histogram keepalive) show the policy
//! choice dominates cold-start behaviour and therefore tail latency, so the
//! cluster simulation threads three policy axes through every run:
//!
//! * [`SchedulerPolicy`] — which queued request starts next when an instance
//!   frees up (FCFS, shortest-job-first by model cost, per-benchmark fair).
//! * [`KeepalivePolicy`] — how long an idle function's container stays warm
//!   (none, fixed window, hybrid histogram learned from idle times).
//! * [`LoadBalancer`] — how a multi-rack front end shards arriving requests
//!   (round-robin, least-loaded).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use dscs_core::benchmarks::Benchmark;
use dscs_simcore::time::{SimDuration, SimTime};

/// Which queued request is started next when capacity frees up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// First-come-first-served (the paper's policy).
    Fcfs,
    /// Shortest job first, by the platform's modelled service time for the
    /// request's benchmark. Starves heavy benchmarks under overload but
    /// minimises mean latency.
    ShortestJobFirst,
    /// Round-robin over per-benchmark FIFO queues, so one hot application
    /// cannot starve the others.
    FairPerBenchmark,
}

impl SchedulerPolicy {
    /// Every scheduler policy.
    pub const ALL: [SchedulerPolicy; 3] = [
        SchedulerPolicy::Fcfs,
        SchedulerPolicy::ShortestJobFirst,
        SchedulerPolicy::FairPerBenchmark,
    ];

    /// Machine-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerPolicy::Fcfs => "fcfs",
            SchedulerPolicy::ShortestJobFirst => "sjf",
            SchedulerPolicy::FairPerBenchmark => "fair",
        }
    }
}

/// How long an idle function's container stays warm before eviction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KeepalivePolicy {
    /// Evict immediately: every non-concurrent invocation is a cold start.
    NoKeepalive,
    /// Keep every container warm for a fixed window after its last use
    /// (OpenWhisk-style; the paper assumes 10 minutes).
    FixedWindow(SimDuration),
    /// Hybrid histogram (after *Serverless in the Wild*): learn each
    /// function's idle-time distribution in a per-function histogram and keep
    /// the container warm to the tail percentile of observed idle times,
    /// falling back to `range` while the pattern is uncertain.
    HybridHistogram {
        /// Maximum window (and histogram span).
        range: SimDuration,
        /// Histogram bin width.
        bin: SimDuration,
    },
}

impl KeepalivePolicy {
    /// The paper's fixed 10-minute keepalive.
    pub fn paper_default() -> Self {
        KeepalivePolicy::FixedWindow(SimDuration::from_secs(600))
    }

    /// The default hybrid-histogram configuration (10-minute range, 10-second
    /// bins — scaled-down analogues of the 4-hour/1-minute Azure study).
    pub fn hybrid_default() -> Self {
        KeepalivePolicy::HybridHistogram {
            range: SimDuration::from_secs(600),
            bin: SimDuration::from_secs(10),
        }
    }

    /// A representative instance of every keepalive policy.
    pub fn all_default() -> [KeepalivePolicy; 3] {
        [
            KeepalivePolicy::NoKeepalive,
            KeepalivePolicy::paper_default(),
            KeepalivePolicy::hybrid_default(),
        ]
    }

    /// Machine-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            KeepalivePolicy::NoKeepalive => "no-keepalive",
            KeepalivePolicy::FixedWindow(_) => "fixed-window",
            KeepalivePolicy::HybridHistogram { .. } => "hybrid-histogram",
        }
    }
}

/// How a multi-rack front end shards arriving requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoadBalancer {
    /// Rotate through racks in arrival order.
    RoundRobin,
    /// Send each request to the rack with the fewest in-flight plus queued
    /// requests (ties broken by lowest rack index, for determinism).
    LeastLoaded,
}

impl LoadBalancer {
    /// Every balancer.
    pub const ALL: [LoadBalancer; 2] = [LoadBalancer::RoundRobin, LoadBalancer::LeastLoaded];

    /// Machine-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            LoadBalancer::RoundRobin => "round-robin",
            LoadBalancer::LeastLoaded => "least-loaded",
        }
    }
}

/// A policy-driven scheduler queue over request indices into a trace.
///
/// All disciplines are deterministic: ties (equal service times, the
/// round-robin cursor) resolve by submission order.
#[derive(Debug)]
pub struct SchedQueue {
    policy: SchedulerPolicy,
    fcfs: VecDeque<usize>,
    // SJF: min-heap on (service nanos, submission seq), so equal service
    // times pop in FIFO order.
    sjf: BinaryHeap<Reverse<(u64, u64, usize)>>,
    seq: u64,
    per_bench: Vec<VecDeque<usize>>,
    cursor: usize,
    len: usize,
}

impl SchedQueue {
    /// Creates an empty queue under `policy`.
    pub fn new(policy: SchedulerPolicy) -> Self {
        SchedQueue {
            policy,
            fcfs: VecDeque::new(),
            sjf: BinaryHeap::new(),
            seq: 0,
            per_bench: (0..Benchmark::ALL.len()).map(|_| VecDeque::new()).collect(),
            cursor: 0,
            len: 0,
        }
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueues trace index `idx` for `benchmark` with modelled service time
    /// `service` (used by shortest-job-first ordering).
    pub fn push(&mut self, idx: usize, benchmark: Benchmark, service: SimDuration) {
        match self.policy {
            SchedulerPolicy::Fcfs => self.fcfs.push_back(idx),
            SchedulerPolicy::ShortestJobFirst => {
                self.sjf.push(Reverse((service.as_nanos(), self.seq, idx)));
                self.seq += 1;
            }
            SchedulerPolicy::FairPerBenchmark => {
                let b = Benchmark::ALL
                    .iter()
                    .position(|&x| x == benchmark)
                    .expect("benchmark in suite");
                self.per_bench[b].push_back(idx);
            }
        }
        self.len += 1;
    }

    /// Removes and returns the next request to start, per the policy.
    pub fn pop(&mut self) -> Option<usize> {
        let popped = match self.policy {
            SchedulerPolicy::Fcfs => self.fcfs.pop_front(),
            SchedulerPolicy::ShortestJobFirst => self.sjf.pop().map(|Reverse((_, _, idx))| idx),
            SchedulerPolicy::FairPerBenchmark => {
                let n = self.per_bench.len();
                let mut found = None;
                for step in 0..n {
                    let b = (self.cursor + step) % n;
                    if let Some(idx) = self.per_bench[b].pop_front() {
                        self.cursor = (b + 1) % n;
                        found = Some(idx);
                        break;
                    }
                }
                found
            }
        };
        if popped.is_some() {
            self.len -= 1;
        }
        popped
    }
}

/// Runtime warm/cold bookkeeping for one rack under a [`KeepalivePolicy`].
///
/// Tracks, per function id, when its most recent invocation finishes and (for
/// the hybrid policy) a histogram of observed idle gaps. The decision rule is
/// conservative in the *Serverless in the Wild* sense: a container is never
/// evicted before the policy's current window for its function has elapsed.
#[derive(Debug)]
pub struct KeepaliveState {
    policy: KeepalivePolicy,
    last_finish: HashMap<u32, SimTime>,
    histograms: HashMap<u32, IdleHistogram>,
}

/// Minimum idle-gap observations before the hybrid histogram trusts its
/// learned tail over the conservative full range.
const HYBRID_MIN_SAMPLES: u64 = 10;
/// Fraction of observations the learned window must cover (the study's 99th
/// percentile).
const HYBRID_TAIL: f64 = 0.99;
/// Safety margin multiplier on the learned tail window.
const HYBRID_MARGIN: f64 = 1.10;
/// Out-of-bounds rate above which the pattern is declared too spread to learn.
const HYBRID_OOB_LIMIT: f64 = 0.10;

#[derive(Debug, Default)]
struct IdleHistogram {
    bins: Vec<u64>,
    total: u64,
    out_of_bounds: u64,
}

impl IdleHistogram {
    fn observe(&mut self, idle: SimDuration, bin: SimDuration, range: SimDuration) {
        let n_bins = (range.as_nanos().div_ceil(bin.as_nanos())) as usize;
        if self.bins.is_empty() {
            self.bins = vec![0; n_bins.max(1)];
        }
        let idx = (idle.as_nanos() / bin.as_nanos()) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
            self.total += 1;
        } else {
            self.out_of_bounds += 1;
        }
    }

    /// The bin index covering `tail` of the observed mass.
    fn tail_bin(&self, tail: f64) -> usize {
        let mut seen = 0u64;
        for (i, &count) in self.bins.iter().enumerate() {
            seen += count;
            if seen as f64 >= tail * self.total as f64 {
                return i;
            }
        }
        self.bins.len().saturating_sub(1)
    }

    fn oob_rate(&self) -> f64 {
        let all = self.total + self.out_of_bounds;
        if all == 0 {
            0.0
        } else {
            self.out_of_bounds as f64 / all as f64
        }
    }
}

impl KeepaliveState {
    /// Creates empty state for `policy`.
    ///
    /// # Panics
    /// Panics if a hybrid-histogram policy has a zero bin width or a range
    /// smaller than one bin (the histogram would be degenerate).
    pub fn new(policy: KeepalivePolicy) -> Self {
        if let KeepalivePolicy::HybridHistogram { range, bin } = policy {
            assert!(
                !bin.is_zero(),
                "hybrid-histogram bin width must be non-zero"
            );
            assert!(range >= bin, "hybrid-histogram range must cover one bin");
        }
        KeepaliveState {
            policy,
            last_finish: HashMap::new(),
            histograms: HashMap::new(),
        }
    }

    /// The policy this state enforces.
    pub fn policy(&self) -> KeepalivePolicy {
        self.policy
    }

    /// The current keepalive window for `function`: how long past its last
    /// finish a warm container survives.
    pub fn window(&self, function: u32) -> SimDuration {
        match self.policy {
            KeepalivePolicy::NoKeepalive => SimDuration::ZERO,
            KeepalivePolicy::FixedWindow(w) => w,
            KeepalivePolicy::HybridHistogram { range, bin } => {
                let Some(hist) = self.histograms.get(&function) else {
                    return range;
                };
                if hist.total < HYBRID_MIN_SAMPLES || hist.oob_rate() > HYBRID_OOB_LIMIT {
                    // Pattern unknown or too spread: stay conservative so a
                    // warm container is never evicted early.
                    return range;
                }
                let learned = bin * (hist.tail_bin(HYBRID_TAIL) as u64 + 1);
                (learned * HYBRID_MARGIN).min(range)
            }
        }
    }

    /// Whether an invocation of `function` arriving at `now` finds a warm
    /// container, given its most recent finish time. A function whose previous
    /// invocation is still running (finish in the future) is always warm.
    pub fn is_warm(&self, function: u32, now: SimTime) -> bool {
        match self.last_finish.get(&function) {
            None => false,
            Some(&finish) => now.saturating_since(finish) <= self.window(function),
        }
    }

    /// Records that an invocation of `function` starting at `now` will finish
    /// at `finish`, feeding the observed idle gap to the learning policy.
    pub fn record_invocation(&mut self, function: u32, now: SimTime, finish: SimTime) {
        if let KeepalivePolicy::HybridHistogram { range, bin } = self.policy {
            if let Some(&prev) = self.last_finish.get(&function) {
                let idle = now.saturating_since(prev);
                self.histograms
                    .entry(function)
                    .or_default()
                    .observe(idle, bin, range);
            }
        }
        // Keep the furthest-out finish time: with many concurrent instances
        // the container pool stays warm until the last one drains.
        let entry = self.last_finish.entry(function).or_insert(finish);
        if finish > *entry {
            *entry = finish;
        }
    }

    #[cfg(test)]
    fn last_finish_for_test(&self, function: u32) -> SimTime {
        self.last_finish[&function]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn fcfs_pops_in_submission_order() {
        let mut q = SchedQueue::new(SchedulerPolicy::Fcfs);
        for i in 0..5 {
            q.push(
                i,
                Benchmark::ALL[i % 8],
                SimDuration::from_millis(5 - i as u64),
            );
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sjf_pops_cheapest_first_with_fifo_ties() {
        let mut q = SchedQueue::new(SchedulerPolicy::ShortestJobFirst);
        q.push(0, Benchmark::ALL[0], SimDuration::from_millis(30));
        q.push(1, Benchmark::ALL[1], SimDuration::from_millis(10));
        q.push(2, Benchmark::ALL[2], SimDuration::from_millis(10));
        q.push(3, Benchmark::ALL[3], SimDuration::from_millis(20));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![1, 2, 3, 0]);
    }

    #[test]
    fn fair_round_robins_across_benchmarks() {
        let mut q = SchedQueue::new(SchedulerPolicy::FairPerBenchmark);
        // Three requests of benchmark 0, one of benchmark 1.
        q.push(10, Benchmark::ALL[0], SimDuration::from_millis(1));
        q.push(11, Benchmark::ALL[0], SimDuration::from_millis(1));
        q.push(12, Benchmark::ALL[0], SimDuration::from_millis(1));
        q.push(20, Benchmark::ALL[1], SimDuration::from_millis(1));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).collect();
        // The lone benchmark-1 request is served second, not last.
        assert_eq!(order, vec![10, 20, 11, 12]);
        assert!(q.is_empty());
    }

    #[test]
    fn no_keepalive_is_always_cold_after_finish() {
        let mut s = KeepaliveState::new(KeepalivePolicy::NoKeepalive);
        assert!(!s.is_warm(0, secs(0)));
        s.record_invocation(0, secs(0), secs(1));
        // Still running: warm.
        assert!(s.is_warm(0, secs(1)));
        // One nanosecond after finish: cold.
        assert!(!s.is_warm(0, SimTime::from_nanos(1_000_000_001)));
    }

    #[test]
    fn fixed_window_honours_its_window() {
        let mut s = KeepaliveState::new(KeepalivePolicy::FixedWindow(SimDuration::from_secs(60)));
        s.record_invocation(7, secs(0), secs(10));
        assert!(s.is_warm(7, secs(70)));
        assert!(!s.is_warm(7, secs(71)));
    }

    #[test]
    fn hybrid_starts_conservative_then_learns_the_tail() {
        let policy = KeepalivePolicy::HybridHistogram {
            range: SimDuration::from_secs(600),
            bin: SimDuration::from_secs(10),
        };
        let mut s = KeepaliveState::new(policy);
        // Unknown function: full range.
        assert_eq!(s.window(3), SimDuration::from_secs(600));
        // Invocations every ~25 s: idle gaps land in the 20-30 s bin.
        let mut t = 0u64;
        for _ in 0..40 {
            s.record_invocation(3, secs(t), secs(t + 1));
            t += 26;
        }
        let w = s.window(3);
        assert!(
            w >= SimDuration::from_secs(30) && w < SimDuration::from_secs(60),
            "learned window {w}"
        );
        // The learned window still covers the observed pattern.
        assert!(s.is_warm(3, s.last_finish_for_test(3) + SimDuration::from_secs(25)));
    }

    #[test]
    fn hybrid_never_shrinks_below_observed_tail() {
        let policy = KeepalivePolicy::HybridHistogram {
            range: SimDuration::from_secs(600),
            bin: SimDuration::from_secs(10),
        };
        let mut s = KeepaliveState::new(policy);
        let mut t = 0u64;
        for _ in 0..50 {
            s.record_invocation(1, secs(t), secs(t + 1));
            t += 45; // 44 s idle gaps
        }
        // Window must cover the 44 s gaps (bin 4 -> >= 50 s).
        assert!(s.window(1) >= SimDuration::from_secs(45), "{}", s.window(1));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bin_hybrid_histogram_is_rejected() {
        let _ = KeepaliveState::new(KeepalivePolicy::HybridHistogram {
            range: SimDuration::from_secs(600),
            bin: SimDuration::ZERO,
        });
    }

    #[test]
    fn concurrent_instances_keep_the_pool_warm() {
        let mut s = KeepaliveState::new(KeepalivePolicy::FixedWindow(SimDuration::from_secs(5)));
        s.record_invocation(0, secs(0), secs(100));
        s.record_invocation(0, secs(1), secs(2)); // shorter, finishes earlier
        assert!(s.is_warm(0, secs(50)), "long-running instance keeps warm");
    }
}
