//! At-scale cluster simulation (Figure 13).
//!
//! A discrete-event simulation of a rack serving the request trace: up to 200
//! function instances (the paper's cap), a 10 000-deep FCFS scheduler queue,
//! and per-request service times taken from the end-to-end model for the
//! platform under test (baseline CPU with remote storage, or DSCS-Serverless).
//! The outputs are the series Figure 13 plots: offered load, queued functions
//! over time, and wall-clock request latency over time.

use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use dscs_core::benchmarks::Benchmark;
use dscs_core::endtoend::{EvalOptions, SystemModel};
use dscs_platforms::PlatformKind;
use dscs_simcore::events::Simulator;
use dscs_simcore::rng::DeterministicRng;
use dscs_simcore::series::TimeSeries;
use dscs_simcore::stats::Summary;
use dscs_simcore::time::{SimDuration, SimTime};

use crate::trace::TraceRequest;

/// Cluster configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Maximum concurrent function instances (the paper caps both systems at 200).
    pub max_instances: u32,
    /// Scheduler queue depth (requests beyond this are rejected).
    pub queue_depth: usize,
    /// Per-request service-time jitter: multiplicative lognormal sigma.
    pub service_jitter_sigma: f64,
    /// Bucket width for the reported time series.
    pub bucket: SimDuration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            max_instances: 200,
            queue_depth: 10_000,
            service_jitter_sigma: 0.15,
            bucket: SimDuration::from_secs(60),
        }
    }
}

/// Result of one cluster simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// The platform simulated.
    pub platform: PlatformKind,
    /// Offered load per bucket (requests per second) — Figure 13a.
    pub offered_rps: Vec<f64>,
    /// Mean number of queued requests per bucket — Figure 13b.
    pub queued: Vec<f64>,
    /// Mean wall-clock latency per bucket in milliseconds — Figures 13c/13d.
    pub latency_ms: Vec<f64>,
    /// Number of completed requests.
    pub completed: u64,
    /// Number of rejected requests (queue overflow).
    pub rejected: u64,
    /// Summary of all wall-clock latencies (seconds).
    pub latency_summary: Option<Summary>,
    /// Total simulated time to drain the trace (wall-clock makespan).
    pub makespan: SimDuration,
}

impl ClusterReport {
    /// Mean wall-clock latency over the whole run, in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        self.latency_summary
            .as_ref()
            .map_or(0.0, |s| s.mean() * 1e3)
    }

    /// Peak queue depth observed (per-bucket mean maximum).
    pub fn peak_queue(&self) -> f64 {
        self.queued.iter().copied().fold(0.0, f64::max)
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Arrival(usize),
    Completion,
}

/// The cluster simulator.
#[derive(Debug)]
pub struct ClusterSim {
    config: ClusterConfig,
    service_times: HashMap<Benchmark, SimDuration>,
}

impl ClusterSim {
    /// Builds a simulator for `platform`, pre-computing per-benchmark service
    /// times from the end-to-end model (median storage latency; queueing, not
    /// the storage tail, dominates at scale).
    pub fn new(platform: PlatformKind, config: ClusterConfig) -> Self {
        let system = SystemModel::new();
        let options = EvalOptions {
            quantile: 0.50,
            ..EvalOptions::default()
        };
        let service_times = Benchmark::ALL
            .iter()
            .map(|&b| (b, system.evaluate(b, platform, options).total_latency()))
            .collect();
        ClusterSim {
            config,
            service_times,
        }
    }

    /// The service time used for one benchmark.
    pub fn service_time(&self, benchmark: Benchmark) -> SimDuration {
        self.service_times[&benchmark]
    }

    /// Runs the trace on `platform` and reports the Figure 13 series.
    pub fn run(&self, platform: PlatformKind, trace: &[TraceRequest], seed: u64) -> ClusterReport {
        assert!(!trace.is_empty(), "trace must not be empty");
        let horizon =
            trace.last().expect("non-empty").arrival - SimTime::ZERO + SimDuration::from_secs(120);
        let mut offered = TimeSeries::new(self.config.bucket, horizon);
        let mut queued_series = TimeSeries::new(self.config.bucket, horizon);
        let mut latency_series = TimeSeries::new(self.config.bucket, horizon);

        let mut rng = DeterministicRng::seeded(seed);
        let mut sim: Simulator<Event> = Simulator::new();
        for (idx, request) in trace.iter().enumerate() {
            sim.schedule_at(request.arrival, Event::Arrival(idx));
            offered.record_event(request.arrival);
        }

        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut busy: u32 = 0;
        let mut completed: u64 = 0;
        let mut rejected: u64 = 0;
        let mut latencies: Vec<f64> = Vec::with_capacity(trace.len());

        sim.run(|sim, now, event| {
            match event {
                Event::Arrival(idx) => {
                    if queue.len() >= self.config.queue_depth {
                        rejected += 1;
                    } else {
                        queue.push_back(idx);
                    }
                }
                Event::Completion => {
                    busy -= 1;
                }
            }
            // Greedily start queued requests on free instances (FCFS).
            while busy < self.config.max_instances {
                let Some(idx) = queue.pop_front() else { break };
                let request = &trace[idx];
                let base = self.service_times[&request.benchmark];
                let jitter = (self.config.service_jitter_sigma * rng.standard_normal()).exp();
                let service = base * jitter;
                let wait = now.saturating_since(request.arrival);
                let wall = wait + service;
                latencies.push(wall.as_secs_f64());
                latency_series.record(request.arrival, wall.as_millis_f64());
                completed += 1;
                busy += 1;
                sim.schedule_in(service, Event::Completion);
            }
            queued_series.record(now, queue.len() as f64);
        });

        let makespan = sim.now() - SimTime::ZERO;
        ClusterReport {
            platform,
            offered_rps: offered.rates_per_sec(),
            queued: queued_series.means_filled(),
            latency_ms: latency_series.means_filled(),
            completed,
            rejected,
            latency_summary: if latencies.is_empty() {
                None
            } else {
                Some(Summary::from_samples(&latencies))
            },
            makespan,
        }
    }
}

/// Convenience runner: simulates one platform over a trace with default
/// cluster configuration.
pub fn simulate_platform(
    platform: PlatformKind,
    trace: &[TraceRequest],
    seed: u64,
) -> ClusterReport {
    ClusterSim::new(platform, ClusterConfig::default()).run(platform, trace, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RateProfile;
    use dscs_simcore::time::SimDuration;

    fn short_trace(rate: f64, secs: u64, seed: u64) -> Vec<TraceRequest> {
        let profile = RateProfile {
            segments: vec![(SimDuration::from_secs(secs), rate)],
        };
        profile.generate(&mut DeterministicRng::seeded(seed))
    }

    #[test]
    fn all_requests_complete_under_light_load() {
        let trace = short_trace(50.0, 20, 1);
        let report = simulate_platform(PlatformKind::DscsDsa, &trace, 2);
        assert_eq!(report.completed + report.rejected, trace.len() as u64);
        assert_eq!(report.rejected, 0);
        assert!(report.mean_latency_ms() > 0.0);
    }

    #[test]
    fn dscs_sustains_more_load_than_the_baseline() {
        // At a load the DSCS cluster absorbs, the baseline CPU cluster builds a
        // queue and its wall-clock latency climbs (Figure 13c vs 13d).
        let trace = short_trace(1500.0, 60, 3);
        let dscs = simulate_platform(PlatformKind::DscsDsa, &trace, 4);
        let baseline = simulate_platform(PlatformKind::BaselineCpu, &trace, 4);
        assert!(baseline.peak_queue() > dscs.peak_queue());
        assert!(baseline.mean_latency_ms() > dscs.mean_latency_ms());
    }

    #[test]
    fn baseline_latency_grows_over_time_under_sustained_overload() {
        let trace = short_trace(2500.0, 120, 5);
        let report = simulate_platform(PlatformKind::BaselineCpu, &trace, 6);
        let series = &report.latency_ms;
        assert!(series.len() >= 2);
        assert!(
            series.last().expect("non-empty") > series.first().expect("non-empty"),
            "latency should climb: {series:?}"
        );
    }

    #[test]
    fn queue_overflow_rejects_requests() {
        let config = ClusterConfig {
            max_instances: 2,
            queue_depth: 10,
            ..ClusterConfig::default()
        };
        let trace = short_trace(500.0, 20, 7);
        let sim = ClusterSim::new(PlatformKind::BaselineCpu, config);
        let report = sim.run(PlatformKind::BaselineCpu, &trace, 8);
        assert!(report.rejected > 0);
        assert_eq!(report.completed + report.rejected, trace.len() as u64);
    }

    #[test]
    fn service_times_come_from_the_end_to_end_model() {
        let sim = ClusterSim::new(PlatformKind::DscsDsa, ClusterConfig::default());
        let light = sim.service_time(Benchmark::CreditRiskAssessment);
        let heavy = sim.service_time(Benchmark::ConversationalChatbot);
        assert!(heavy > light);
    }

    #[test]
    fn makespan_extends_past_the_trace_when_overloaded() {
        let trace = short_trace(2500.0, 60, 9);
        let report = simulate_platform(PlatformKind::BaselineCpu, &trace, 10);
        assert!(report.makespan > SimDuration::from_secs(60));
    }
}
