//! At-scale cluster simulation (Figure 13 and beyond).
//!
//! A discrete-event simulation of one or more racks serving a request trace.
//! Each rack holds up to `max_instances` concurrent function instances (the
//! paper caps both systems at 200 per rack) behind a bounded scheduler queue;
//! a front-end load balancer shards arrivals across racks. Per-request service
//! times come from the end-to-end model for the platform under test, and cold
//! starts — priced by [`dscs_faas::coldstart::ColdStartModel`] and governed by
//! the configured [`KeepalivePolicy`] — are charged onto the request that
//! finds its function's container cold. DSCS-Serverless platforms cache
//! evicted images on the drive's flash, so their repeat cold starts pull over
//! the P2P path instead of the remote registry.
//!
//! The outputs are the series Figure 13 plots (offered load, queued functions
//! over time, wall-clock request latency over time) plus cold-start counts and
//! per-rack summaries for the at-scale policy sweeps.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use dscs_core::benchmarks::Benchmark;
use dscs_core::endtoend::{EvalOptions, SystemModel};
use dscs_faas::coldstart::{ColdStartModel, ImageSource};
use dscs_platforms::{PlatformKind, PlatformLocation};
use dscs_simcore::events::Simulator;
use dscs_simcore::quantity::Bytes;
use dscs_simcore::rng::DeterministicRng;
use dscs_simcore::series::TimeSeries;
use dscs_simcore::stats::Summary;
use dscs_simcore::time::{SimDuration, SimTime};

use crate::policy::{KeepalivePolicy, KeepaliveState, LoadBalancer, SchedQueue, SchedulerPolicy};
use crate::trace::TraceRequest;

/// Per-rack cluster configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Maximum concurrent function instances per rack (the paper caps both
    /// systems at 200).
    pub max_instances: u32,
    /// Scheduler queue depth per rack (requests beyond this are rejected).
    pub queue_depth: usize,
    /// Per-request service-time jitter: multiplicative lognormal sigma.
    pub service_jitter_sigma: f64,
    /// Bucket width for the reported time series.
    pub bucket: SimDuration,
    /// Queue discipline used when an instance frees up.
    pub scheduler: SchedulerPolicy,
    /// Container keepalive policy deciding when invocations run cold.
    pub keepalive: KeepalivePolicy,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            max_instances: 200,
            queue_depth: 10_000,
            service_jitter_sigma: 0.15,
            bucket: SimDuration::from_secs(60),
            scheduler: SchedulerPolicy::Fcfs,
            keepalive: KeepalivePolicy::paper_default(),
        }
    }
}

/// Result of one cluster simulation (aggregated over all racks).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// The platform simulated.
    pub platform: PlatformKind,
    /// Offered load per bucket (requests per second) — Figure 13a.
    pub offered_rps: Vec<f64>,
    /// Mean number of queued requests per bucket (all racks) — Figure 13b.
    pub queued: Vec<f64>,
    /// Mean wall-clock latency per bucket in milliseconds — Figures 13c/13d.
    pub latency_ms: Vec<f64>,
    /// Number of completed requests.
    pub completed: u64,
    /// Number of rejected requests (queue overflow).
    pub rejected: u64,
    /// Number of requests that paid a cold start.
    pub cold_starts: u64,
    /// Summary of all wall-clock latencies (seconds).
    pub latency_summary: Option<Summary>,
    /// Total simulated time to drain the trace (wall-clock makespan).
    pub makespan: SimDuration,
}

impl ClusterReport {
    /// Mean wall-clock latency over the whole run, in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        self.latency_summary
            .as_ref()
            .map_or(0.0, |s| s.mean() * 1e3)
    }

    /// The p99 wall-clock latency over the whole run, in milliseconds.
    pub fn p99_latency_ms(&self) -> f64 {
        self.latency_summary.as_ref().map_or(0.0, |s| s.p99() * 1e3)
    }

    /// Peak queue depth observed (per-bucket mean maximum).
    pub fn peak_queue(&self) -> f64 {
        self.queued.iter().copied().fold(0.0, f64::max)
    }
}

/// Per-rack outcome of a sharded run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackSummary {
    /// Rack index.
    pub rack: u32,
    /// Requests completed on this rack.
    pub completed: u64,
    /// Requests rejected by this rack's queue.
    pub rejected: u64,
    /// Cold starts paid on this rack.
    pub cold_starts: u64,
    /// Maximum queue depth this rack reached.
    pub peak_queue: usize,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Arrival(usize),
    Completion { rack: usize },
}

/// Precomputed cold-start penalties for one benchmark.
#[derive(Debug, Clone, Copy)]
struct ColdCosts {
    /// Image pulled from the remote registry (first cold start everywhere).
    remote: SimDuration,
    /// Image reloaded from the drive's flash over the P2P path (repeat cold
    /// starts on in-storage platforms).
    local: SimDuration,
}

struct RackState {
    queue: SchedQueue,
    keepalive: KeepaliveState,
    cached_on_flash: HashSet<u32>,
    rng: DeterministicRng,
    busy: u32,
    completed: u64,
    rejected: u64,
    cold_starts: u64,
    peak_queue: usize,
}

impl RackState {
    fn load(&self) -> usize {
        self.busy as usize + self.queue.len()
    }
}

/// The cluster simulator.
#[derive(Debug)]
pub struct ClusterSim {
    platform: PlatformKind,
    config: ClusterConfig,
    service_times: HashMap<Benchmark, SimDuration>,
    cold_costs: HashMap<Benchmark, ColdCosts>,
    /// Whether the platform's drive can cache evicted images on flash (the
    /// DSCS-Serverless P2P reload path).
    flash_cache: bool,
}

impl ClusterSim {
    /// Builds a simulator for `platform`, pre-computing per-benchmark service
    /// times from the end-to-end model (median storage latency; queueing, not
    /// the storage tail, dominates at scale) and cold-start penalties from the
    /// container-lifecycle model.
    pub fn new(platform: PlatformKind, config: ClusterConfig) -> Self {
        let system = SystemModel::new();
        let options = EvalOptions {
            quantile: 0.50,
            ..EvalOptions::default()
        };
        let service_times: HashMap<Benchmark, SimDuration> = Benchmark::ALL
            .iter()
            .map(|&b| (b, system.evaluate(b, platform, options).total_latency()))
            .collect();

        let cold_model = ColdStartModel::default();
        let spec = platform.spec();
        let cold_costs = Benchmark::ALL
            .iter()
            .map(|&b| {
                let bench = b.spec();
                let image: Bytes = bench
                    .pipeline()
                    .functions
                    .iter()
                    .map(|f| f.image_size)
                    .sum();
                let weights = bench.model(1).weight_bytes();
                let weight_load = cold_model.weight_load_latency(weights, spec.memory_bandwidth);
                let costs = ColdCosts {
                    remote: cold_model.cold_start_latency(image, ImageSource::RemoteRegistry)
                        + weight_load,
                    local: cold_model.cold_start_latency(image, ImageSource::LocalFlash)
                        + weight_load,
                };
                (b, costs)
            })
            .collect();

        ClusterSim {
            platform,
            config,
            service_times,
            cold_costs,
            flash_cache: spec.location == PlatformLocation::InStorage,
        }
    }

    /// A copy of this simulator with a different cluster configuration,
    /// reusing the precomputed service times and cold-start costs (which
    /// depend only on the platform). Policy sweeps use this to avoid
    /// re-evaluating the end-to-end model for every policy cell.
    pub fn reconfigured(&self, config: ClusterConfig) -> ClusterSim {
        ClusterSim {
            platform: self.platform,
            config,
            service_times: self.service_times.clone(),
            cold_costs: self.cold_costs.clone(),
            flash_cache: self.flash_cache,
        }
    }

    /// The platform this simulator models.
    pub fn platform(&self) -> PlatformKind {
        self.platform
    }

    /// The configuration the simulator runs under.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// The service time used for one benchmark.
    pub fn service_time(&self, benchmark: Benchmark) -> SimDuration {
        self.service_times[&benchmark]
    }

    /// The cold-start penalty a first (registry) cold start of `benchmark`
    /// pays on this platform.
    pub fn cold_start_cost(&self, benchmark: Benchmark) -> SimDuration {
        self.cold_costs[&benchmark].remote
    }

    /// Runs the trace over a single rack and reports the Figure 13 series.
    pub fn run(&self, trace: &[TraceRequest], seed: u64) -> ClusterReport {
        self.run_sharded(trace, seed, 1, LoadBalancer::RoundRobin).0
    }

    /// Runs the trace sharded over `racks` racks behind `balancer`, returning
    /// the aggregate report plus per-rack summaries.
    ///
    /// # Panics
    /// Panics if the trace is empty or `racks` is zero.
    pub fn run_sharded(
        &self,
        trace: &[TraceRequest],
        seed: u64,
        racks: u32,
        balancer: LoadBalancer,
    ) -> (ClusterReport, Vec<RackSummary>) {
        assert!(!trace.is_empty(), "trace must not be empty");
        assert!(racks > 0, "need at least one rack");
        let horizon =
            trace.last().expect("non-empty").arrival - SimTime::ZERO + SimDuration::from_secs(120);
        let mut offered = TimeSeries::new(self.config.bucket, horizon);
        let mut queued_series = TimeSeries::new(self.config.bucket, horizon);
        let mut latency_series = TimeSeries::new(self.config.bucket, horizon);

        let mut master = DeterministicRng::seeded(seed);
        let mut rack_states: Vec<RackState> = (0..racks)
            .map(|r| RackState {
                queue: SchedQueue::new(self.config.scheduler),
                keepalive: KeepaliveState::new(self.config.keepalive),
                cached_on_flash: HashSet::new(),
                rng: master.fork(u64::from(r)),
                busy: 0,
                completed: 0,
                rejected: 0,
                cold_starts: 0,
                peak_queue: 0,
            })
            .collect();

        let mut sim: Simulator<Event> = Simulator::new();
        for (idx, request) in trace.iter().enumerate() {
            sim.schedule_at(request.arrival, Event::Arrival(idx));
            offered.record_event(request.arrival);
        }

        let mut round_robin: usize = 0;
        let mut total_queued: usize = 0;
        let mut latencies: Vec<f64> = Vec::with_capacity(trace.len());

        sim.run(|sim, now, event| {
            let rack_idx = match event {
                Event::Arrival(idx) => {
                    let r = match balancer {
                        LoadBalancer::RoundRobin => {
                            let r = round_robin % rack_states.len();
                            round_robin += 1;
                            r
                        }
                        LoadBalancer::LeastLoaded => rack_states
                            .iter()
                            .enumerate()
                            .min_by_key(|(i, rack)| (rack.load(), *i))
                            .map(|(i, _)| i)
                            .expect("at least one rack"),
                    };
                    let rack = &mut rack_states[r];
                    if rack.queue.len() >= self.config.queue_depth {
                        rack.rejected += 1;
                    } else {
                        let request = &trace[idx];
                        rack.queue.push(
                            idx,
                            request.benchmark,
                            self.service_times[&request.benchmark],
                        );
                        total_queued += 1;
                        rack.peak_queue = rack.peak_queue.max(rack.queue.len());
                    }
                    r
                }
                Event::Completion { rack } => {
                    rack_states[rack].busy -= 1;
                    rack
                }
            };
            // Greedily start queued requests on this rack's free instances,
            // in the order the scheduler policy dictates.
            let rack = &mut rack_states[rack_idx];
            while rack.busy < self.config.max_instances {
                let Some(idx) = rack.queue.pop() else { break };
                total_queued -= 1;
                let request = &trace[idx];
                let base = self.service_times[&request.benchmark];
                let jitter = (self.config.service_jitter_sigma * rack.rng.standard_normal()).exp();
                let mut service = base * jitter;
                if !rack.keepalive.is_warm(request.function, now) {
                    let costs = self.cold_costs[&request.benchmark];
                    let penalty =
                        if self.flash_cache && rack.cached_on_flash.contains(&request.function) {
                            costs.local
                        } else {
                            costs.remote
                        };
                    service += penalty;
                    rack.cold_starts += 1;
                    if self.flash_cache {
                        rack.cached_on_flash.insert(request.function);
                    }
                }
                rack.keepalive
                    .record_invocation(request.function, now, now + service);
                let wait = now.saturating_since(request.arrival);
                let wall = wait + service;
                latencies.push(wall.as_secs_f64());
                latency_series.record(request.arrival, wall.as_millis_f64());
                rack.completed += 1;
                rack.busy += 1;
                sim.schedule_in(service, Event::Completion { rack: rack_idx });
            }
            queued_series.record(now, total_queued as f64);
        });

        let makespan = sim.now() - SimTime::ZERO;
        let summaries: Vec<RackSummary> = rack_states
            .iter()
            .enumerate()
            .map(|(i, rack)| RackSummary {
                rack: i as u32,
                completed: rack.completed,
                rejected: rack.rejected,
                cold_starts: rack.cold_starts,
                peak_queue: rack.peak_queue,
            })
            .collect();
        let report = ClusterReport {
            platform: self.platform,
            offered_rps: offered.rates_per_sec(),
            queued: queued_series.means_filled(),
            latency_ms: latency_series.means_filled(),
            completed: summaries.iter().map(|r| r.completed).sum(),
            rejected: summaries.iter().map(|r| r.rejected).sum(),
            cold_starts: summaries.iter().map(|r| r.cold_starts).sum(),
            latency_summary: if latencies.is_empty() {
                None
            } else {
                Some(Summary::from_samples(&latencies))
            },
            makespan,
        };
        (report, summaries)
    }
}

/// Convenience runner: simulates one platform over a trace with default
/// cluster configuration (single rack, FCFS, fixed 10-minute keepalive).
pub fn simulate_platform(
    platform: PlatformKind,
    trace: &[TraceRequest],
    seed: u64,
) -> ClusterReport {
    ClusterSim::new(platform, ClusterConfig::default()).run(trace, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RateProfile;
    use dscs_simcore::time::SimDuration;

    fn short_trace(rate: f64, secs: u64, seed: u64) -> Vec<TraceRequest> {
        let profile = RateProfile {
            segments: vec![(SimDuration::from_secs(secs), rate)],
        };
        profile.generate(&mut DeterministicRng::seeded(seed))
    }

    #[test]
    fn all_requests_complete_under_light_load() {
        let trace = short_trace(50.0, 20, 1);
        let report = simulate_platform(PlatformKind::DscsDsa, &trace, 2);
        assert_eq!(report.completed + report.rejected, trace.len() as u64);
        assert_eq!(report.rejected, 0);
        assert!(report.mean_latency_ms() > 0.0);
    }

    #[test]
    fn dscs_sustains_more_load_than_the_baseline() {
        // At a load the DSCS cluster absorbs, the baseline CPU cluster builds a
        // queue and its wall-clock latency climbs (Figure 13c vs 13d).
        let trace = short_trace(1500.0, 60, 3);
        let dscs = simulate_platform(PlatformKind::DscsDsa, &trace, 4);
        let baseline = simulate_platform(PlatformKind::BaselineCpu, &trace, 4);
        assert!(baseline.peak_queue() > dscs.peak_queue());
        assert!(baseline.mean_latency_ms() > dscs.mean_latency_ms());
    }

    #[test]
    fn baseline_latency_grows_over_time_under_sustained_overload() {
        let trace = short_trace(2500.0, 120, 5);
        let report = simulate_platform(PlatformKind::BaselineCpu, &trace, 6);
        let series = &report.latency_ms;
        assert!(series.len() >= 2);
        assert!(
            series.last().expect("non-empty") > series.first().expect("non-empty"),
            "latency should climb: {series:?}"
        );
    }

    #[test]
    fn queue_overflow_rejects_requests() {
        let config = ClusterConfig {
            max_instances: 2,
            queue_depth: 10,
            ..ClusterConfig::default()
        };
        let trace = short_trace(500.0, 20, 7);
        let sim = ClusterSim::new(PlatformKind::BaselineCpu, config);
        let report = sim.run(&trace, 8);
        assert!(report.rejected > 0);
        assert_eq!(report.completed + report.rejected, trace.len() as u64);
    }

    #[test]
    fn service_times_come_from_the_end_to_end_model() {
        let sim = ClusterSim::new(PlatformKind::DscsDsa, ClusterConfig::default());
        let light = sim.service_time(Benchmark::CreditRiskAssessment);
        let heavy = sim.service_time(Benchmark::ConversationalChatbot);
        assert!(heavy > light);
    }

    #[test]
    fn makespan_extends_past_the_trace_when_overloaded() {
        let trace = short_trace(2500.0, 60, 9);
        let report = simulate_platform(PlatformKind::BaselineCpu, &trace, 10);
        assert!(report.makespan > SimDuration::from_secs(60));
    }

    #[test]
    fn default_keepalive_pays_one_cold_start_per_function() {
        // With the 10-minute fixed window and a 20-second trace, each of the
        // eight benchmark functions runs cold exactly once.
        let trace = short_trace(50.0, 20, 11);
        let report = simulate_platform(PlatformKind::DscsDsa, &trace, 12);
        assert_eq!(report.cold_starts, 8, "one cold start per function");
    }

    #[test]
    fn no_keepalive_pays_many_more_cold_starts() {
        let config = ClusterConfig {
            keepalive: KeepalivePolicy::NoKeepalive,
            ..ClusterConfig::default()
        };
        // Sparse arrivals so invocations rarely overlap.
        let trace = short_trace(5.0, 30, 13);
        let sim = ClusterSim::new(PlatformKind::DscsDsa, config);
        let report = sim.run(&trace, 14);
        let warm = simulate_platform(PlatformKind::DscsDsa, &trace, 14);
        assert!(
            report.cold_starts > warm.cold_starts * 3,
            "no-keepalive {} vs fixed {}",
            report.cold_starts,
            warm.cold_starts
        );
        assert!(report.mean_latency_ms() > warm.mean_latency_ms());
    }

    #[test]
    fn flash_caching_makes_dscs_repeat_cold_starts_cheaper() {
        let sim = ClusterSim::new(PlatformKind::DscsDsa, ClusterConfig::default());
        let costs = sim.cold_costs[&Benchmark::CreditRiskAssessment];
        assert!(costs.local < costs.remote);
        // The baseline CPU never caches on drive flash.
        let cpu = ClusterSim::new(PlatformKind::BaselineCpu, ClusterConfig::default());
        assert!(!cpu.flash_cache);
        assert!(sim.flash_cache);
    }

    #[test]
    fn cold_start_costs_are_seconds_scale() {
        let sim = ClusterSim::new(PlatformKind::BaselineCpu, ClusterConfig::default());
        for b in Benchmark::ALL {
            let cost = sim.cold_start_cost(b);
            assert!(
                cost > SimDuration::from_millis(500) && cost < SimDuration::from_secs(120),
                "{b}: {cost}"
            );
        }
    }

    #[test]
    fn sharding_splits_work_and_preserves_totals() {
        let trace = short_trace(800.0, 30, 15);
        let sim = ClusterSim::new(PlatformKind::DscsDsa, ClusterConfig::default());
        for balancer in LoadBalancer::ALL {
            let (report, racks) = sim.run_sharded(&trace, 16, 4, balancer);
            assert_eq!(racks.len(), 4);
            assert_eq!(report.completed + report.rejected, trace.len() as u64);
            let per_rack: Vec<u64> = racks.iter().map(|r| r.completed).collect();
            assert!(
                per_rack.iter().all(|&c| c > 0),
                "{balancer:?}: every rack serves work: {per_rack:?}"
            );
        }
    }

    #[test]
    fn more_racks_absorb_more_load() {
        // A load that overwhelms one baseline rack is absorbed by four.
        let trace = short_trace(2500.0, 60, 17);
        let sim = ClusterSim::new(PlatformKind::BaselineCpu, ClusterConfig::default());
        let (one, _) = sim.run_sharded(&trace, 18, 1, LoadBalancer::RoundRobin);
        let (four, _) = sim.run_sharded(&trace, 18, 4, LoadBalancer::RoundRobin);
        assert!(four.mean_latency_ms() < one.mean_latency_ms() / 2.0);
        assert!(four.peak_queue() < one.peak_queue());
    }

    #[test]
    fn least_loaded_beats_round_robin_under_skewed_service_times() {
        // SJF-free comparison: with heterogeneous service times, least-loaded
        // should never do much worse than round-robin on mean latency.
        let trace = short_trace(1800.0, 45, 19);
        let sim = ClusterSim::new(PlatformKind::BaselineCpu, ClusterConfig::default());
        let (rr, _) = sim.run_sharded(&trace, 20, 3, LoadBalancer::RoundRobin);
        let (ll, _) = sim.run_sharded(&trace, 20, 3, LoadBalancer::LeastLoaded);
        assert!(ll.mean_latency_ms() <= rr.mean_latency_ms() * 1.05);
    }
}
