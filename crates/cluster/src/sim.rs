//! At-scale cluster simulation (Figure 13 and beyond).
//!
//! A discrete-event simulation of one or more racks serving a request trace.
//! Each rack runs an instance pool governed by a [`ScalingPolicy`]: the
//! paper's fixed 200-instance cap, or elastic reactive/predictive autoscaling
//! between `min_instances` and `max_instances` with a modelled provisioning
//! delay on every scale-up. Arrivals beyond a bounded scheduler queue are
//! rejected; a front-end load balancer shards arrivals across racks. Runs
//! are specified through [`crate::experiment::ExperimentBuilder`]; with a
//! [`DataLayer`] attached, dispatch is data-aware: the locality balancer
//! routes requests toward the racks holding their object's replicas, and any
//! request started without a local replica is charged the modelled
//! cross-rack fetch (latency and joules).
//! Per-request service times come from the end-to-end model for the platform
//! under test, and cold starts — priced by
//! [`dscs_faas::coldstart::ColdStartModel`] and governed by the configured
//! [`KeepalivePolicy`] (including its prewarm window) — are charged onto the
//! request that finds its function's container cold. DSCS-Serverless
//! platforms cache evicted images on the drive's flash, so their repeat cold
//! starts pull over the P2P path instead of the remote registry.
//!
//! The outputs are the series Figure 13 plots (offered load, queued functions
//! over time, wall-clock request latency over time) plus cold-start counts,
//! autoscaling metrics (scaling lag, peak instances), prewarming metrics
//! (hits, wasted warm-seconds) and per-rack summaries for the at-scale policy
//! sweeps.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use dscs_core::benchmarks::Benchmark;
use dscs_core::endtoend::{EvalOptions, SystemModel};
use dscs_faas::coldstart::{ColdStartModel, ImageSource};
use dscs_platforms::{PlatformKind, PlatformLocation};
use dscs_simcore::events::EventQueue;
use dscs_simcore::quantity::Bytes;
use dscs_simcore::rng::DeterministicRng;
use dscs_simcore::series::TimeSeries;
use dscs_simcore::stats::{Measured, QuantileSketch};
use dscs_simcore::time::{SimDuration, SimTime};

use crate::coldpath::{ColdStartPath, IpcTransport};
use crate::data::DataLayer;
use crate::experiment::{validate_run, ConfigError, Experiment};
use crate::policy::{
    KeepalivePolicy, KeepaliveState, LoadBalancer, ScalingPolicy, SchedQueue, SchedulerPolicy,
};
use crate::trace::TraceRequest;

/// Per-rack cluster configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Maximum concurrent function instances per rack (the paper caps both
    /// systems at 200). A [`ScalingPolicy::Fixed`] rack always runs this
    /// many; elastic racks never exceed it.
    pub max_instances: u32,
    /// Minimum instances an elastic rack keeps provisioned (and the pool an
    /// autoscaled rack starts from). Ignored under [`ScalingPolicy::Fixed`].
    pub min_instances: u32,
    /// Scheduler queue depth per rack (requests beyond this are rejected).
    pub queue_depth: usize,
    /// Per-request service-time jitter: multiplicative lognormal sigma.
    pub service_jitter_sigma: f64,
    /// Bucket width for the reported time series.
    pub bucket: SimDuration,
    /// Queue discipline used when an instance frees up.
    pub scheduler: SchedulerPolicy,
    /// Container keepalive policy deciding when invocations run cold.
    pub keepalive: KeepalivePolicy,
    /// How the rack's instance pool grows and shrinks.
    pub scaling: ScalingPolicy,
    /// Modelled delay between a scale-up decision and the new instances
    /// coming online (scale-downs release immediately).
    pub provisioning_delay: SimDuration,
    /// Which modality cold starts pay (see [`ColdStartPath`]). The default,
    /// [`ColdStartPath::FlashReload`], reproduces the historical DSCS
    /// behaviour byte for byte.
    pub cold_path: ColdStartPath,
    /// Per-request IPC transport between the gateway and the function
    /// runtime, charged on every started invocation. The default,
    /// [`IpcTransport::SharedMem`], costs exactly zero.
    pub ipc: IpcTransport,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            max_instances: 200,
            min_instances: 8,
            queue_depth: 10_000,
            service_jitter_sigma: 0.15,
            bucket: SimDuration::from_secs(60),
            scheduler: SchedulerPolicy::Fcfs,
            keepalive: KeepalivePolicy::paper_default(),
            scaling: ScalingPolicy::Fixed,
            provisioning_delay: SimDuration::from_secs(2),
            cold_path: ColdStartPath::default(),
            ipc: IpcTransport::default(),
        }
    }
}

impl ClusterConfig {
    /// Checks the configuration, returning the first violation found: an
    /// invalid scaling policy ([`ScalingPolicy::check`]), or — for elastic
    /// policies — `min_instances` of zero (the rack could never start work)
    /// or above `max_instances`. This is the one validator behind both
    /// [`crate::experiment::ExperimentBuilder::build`] and the deprecated
    /// panicking shims.
    pub fn check(&self) -> Result<(), ConfigError> {
        self.scaling.check()?;
        self.keepalive.check()?;
        if !matches!(self.scaling, ScalingPolicy::Fixed) {
            if self.min_instances == 0 {
                return Err(ConfigError::ZeroMinInstances);
            }
            if self.min_instances > self.max_instances {
                return Err(ConfigError::MinAboveMax {
                    min: self.min_instances,
                    max: self.max_instances,
                });
            }
        }
        Ok(())
    }
}

/// Result of one cluster simulation (aggregated over all racks).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// The platform simulated.
    pub platform: PlatformKind,
    /// Offered load per bucket (requests per second) — Figure 13a.
    pub offered_rps: Vec<f64>,
    /// Mean per-rack queue depth per bucket — Figure 13b. Each
    /// capacity-affecting event samples its own rack's queue depth, and the
    /// per-rack series merge bucket-wise, so the value reads as "how deep was
    /// a rack's queue when something happened on it" under every balancer
    /// and both engines.
    pub queued: Vec<f64>,
    /// Mean wall-clock latency per bucket in milliseconds — Figures 13c/13d.
    pub latency_ms: Vec<f64>,
    /// Number of completed requests.
    pub completed: u64,
    /// Number of rejected requests (queue overflow).
    pub rejected: u64,
    /// Number of requests that paid a cold start.
    pub cold_starts: u64,
    /// Total cold-start seconds charged onto invocations (the sum of every
    /// cold-start penalty, before this PR folded into latency only). This is
    /// the quantity the offline-optimal bound in [`crate::optimal`] lower
    /// bounds, so `coldstart_s - bound` is the policy's regret.
    pub coldstart_s: f64,
    /// The subset of [`ClusterReport::coldstart_s`] paid as snapshot
    /// restores (zero unless the run's [`ColdStartPath`] is
    /// [`ColdStartPath::SnapshotRestore`] and a repeat cold start hit).
    pub restore_s: f64,
    /// Per-request IPC transport latency charged across all started
    /// invocations, in seconds (zero under the default
    /// [`IpcTransport::SharedMem`]).
    pub ipc_overhead_s: f64,
    /// Invocations that found a proactively prewarmed instance (hybrid
    /// keepalive with a non-zero head percentile).
    pub prewarm_hits: u64,
    /// Container-idle seconds the keepalive policy held memory warm, summed
    /// over racks.
    pub warm_seconds: f64,
    /// The share of [`ClusterReport::warm_seconds`] held to eviction (or the
    /// end of the run) without a reuse.
    pub wasted_warm_seconds: f64,
    /// Scale-up decisions taken across all racks.
    pub scale_ups: u64,
    /// Scale-down decisions taken across all racks.
    pub scale_downs: u64,
    /// Total seconds racks spent waiting on instance provisioning (the sum
    /// of decision-to-commit delays over all scale-ups).
    pub scaling_lag_s: f64,
    /// Largest provisioned instance count any rack reached.
    pub peak_instances: u32,
    /// Requests that started on a rack holding a replica of their object
    /// (zero when the run has no [`DataLayer`] attached).
    pub locality_hits: u64,
    /// Requests that started on a rack *without* a replica and paid the
    /// modelled cross-rack fetch.
    pub remote_fetches: u64,
    /// Bytes moved across racks by those remote fetches.
    pub cross_rack_bytes: u64,
    /// Total fetch latency charged onto invocations, in seconds.
    pub fetch_latency_s: f64,
    /// Energy attributable to the bytes those fetches moved across racks
    /// (fabric NICs/switches plus the drive-side PCIe hop), in joules —
    /// [`dscs_storage::object_store::RemoteFetchModel::fetch_energy_joules`]
    /// summed over every remote fetch. Zero without a data layer.
    pub fetch_energy_j: f64,
    /// Streaming sketch of all wall-clock latencies (seconds), merged from
    /// the per-rack sketches in rack order. Constant ~16 KiB regardless of
    /// trace length; quantiles carry the sketch's 1% relative-error bound
    /// ([`dscs_simcore::stats::SKETCH_RELATIVE_ACCURACY`]), count/mean/min/
    /// max are exact.
    pub latency_summary: Option<QuantileSketch>,
    /// Total simulated time to drain the trace (wall-clock makespan).
    pub makespan: SimDuration,
    /// Discrete events the simulator processed — a deterministic measure of
    /// engine work for this run (arrivals, completions, scale ticks and
    /// commits).
    pub events: u64,
    /// Host wall-clock seconds the simulation took. A measurement, not a
    /// modelled result: excluded from report equality (see [`Measured`]).
    pub wall_s: Measured,
}

impl ClusterReport {
    /// Mean wall-clock latency over the whole run, in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        self.latency_summary
            .as_ref()
            .map_or(0.0, |s| s.mean() * 1e3)
    }

    /// The p99 wall-clock latency over the whole run, in milliseconds.
    pub fn p99_latency_ms(&self) -> f64 {
        self.latency_summary.as_ref().map_or(0.0, |s| s.p99() * 1e3)
    }

    /// Simulator throughput: events processed per host wall-clock second.
    /// A measurement (varies run to run); zero if the run took no measurable
    /// time.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_s.get() > 0.0 {
            self.events as f64 / self.wall_s.get()
        } else {
            0.0
        }
    }

    /// Peak queue depth observed (per-bucket mean maximum).
    pub fn peak_queue(&self) -> f64 {
        self.queued.iter().copied().fold(0.0, f64::max)
    }

    /// Fraction of completed requests that found a prewarmed instance.
    pub fn prewarm_hit_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.prewarm_hits as f64 / self.completed as f64
        }
    }

    /// Fraction of started requests that ran on a rack holding a replica of
    /// their object. Zero when the run tracked no data placement.
    pub fn locality_hit_rate(&self) -> f64 {
        let tracked = self.locality_hits + self.remote_fetches;
        if tracked == 0 {
            0.0
        } else {
            self.locality_hits as f64 / tracked as f64
        }
    }
}

/// Per-rack outcome of a sharded run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackSummary {
    /// Rack index.
    pub rack: u32,
    /// Requests completed on this rack.
    pub completed: u64,
    /// Requests rejected by this rack's queue.
    pub rejected: u64,
    /// Cold starts paid on this rack.
    pub cold_starts: u64,
    /// Cold-start seconds charged on this rack.
    pub coldstart_s: f64,
    /// The subset of `coldstart_s` this rack paid as snapshot restores.
    pub restore_s: f64,
    /// Per-request IPC transport seconds this rack charged.
    pub ipc_overhead_s: f64,
    /// Prewarm hits on this rack.
    pub prewarm_hits: u64,
    /// Maximum queue depth this rack reached.
    pub peak_queue: usize,
    /// Largest provisioned instance count this rack reached.
    pub peak_instances: u32,
    /// Smallest provisioned instance count this rack reached.
    pub low_instances: u32,
    /// Scale-up decisions this rack took.
    pub scale_ups: u64,
    /// Scale-down decisions this rack took.
    pub scale_downs: u64,
    /// Requests this rack served with a local replica of their object.
    pub locality_hits: u64,
    /// Requests this rack served by fetching the object from a remote rack.
    pub remote_fetches: u64,
    /// Bytes this rack pulled across the fabric for those fetches.
    pub cross_rack_bytes: u64,
    /// Joules this rack's remote fetches spent moving those bytes.
    pub fetch_energy_j: f64,
    /// Mean wall-clock latency of requests completed on this rack, in
    /// milliseconds (zero if the rack completed nothing). Exact.
    pub mean_latency_ms: f64,
    /// p99 wall-clock latency of requests completed on this rack, in
    /// milliseconds (zero if the rack completed nothing), from the rack's
    /// own latency sketch. Cluster-level tails come from *merging* the rack
    /// sketches — never from averaging these per-rack p99s, which
    /// understates the tail whenever racks are skewed.
    pub p99_latency_ms: f64,
}

/// Which discrete-event engine executed a run.
///
/// Under [`LoadBalancer::RoundRobin`] every arrival's rack is a pure function
/// of its trace index and all simulation state (queues, keepalive ledgers,
/// autoscaling, RNG streams) is per-rack, so the trace is pre-partitioned and
/// each rack simulated as an independent lane — optionally across threads —
/// then merged deterministically in rack order. Coupled balancers
/// ([`LoadBalancer::LeastLoaded`], [`LoadBalancer::LocalityAware`]) read
/// every rack's load at dispatch time, so they keep the whole-cluster
/// sequential event loop; the selection is explicit and reported here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineSelection {
    /// Per-rack lanes merged in rack order. Lane results are identical
    /// regardless of `workers` — threads only change *who* simulates a lane.
    RackParallel {
        /// Worker threads that executed the lanes (capped at the rack count;
        /// 1 means the caller's thread ran every lane inline).
        workers: usize,
    },
    /// The whole-cluster sequential event loop.
    Sequential {
        /// Why the run could not be partitioned into independent rack lanes.
        reason: &'static str,
    },
}

impl EngineSelection {
    /// Whether the run used the partitioned per-rack engine.
    pub fn is_rack_parallel(&self) -> bool {
        matches!(self, EngineSelection::RackParallel { .. })
    }

    /// The sequential-fallback reason, if the run could not be partitioned.
    pub fn fallback_reason(&self) -> Option<&'static str> {
        match self {
            EngineSelection::RackParallel { .. } => None,
            EngineSelection::Sequential { reason } => Some(reason),
        }
    }
}

/// Heap events of the whole-cluster sequential engine. Arrivals are not heap
/// events: the trace is sorted by construction, so arrivals stream into the
/// loop from a cursor and the heap only holds the O(pending) future events.
#[derive(Debug, Clone, Copy)]
enum CoupledEvent {
    Completion {
        rack: usize,
    },
    /// Periodic autoscaling evaluation on one rack.
    ScaleTick {
        rack: usize,
    },
    /// `add` provisioned instances come online on one rack.
    ScaleCommit {
        rack: usize,
        add: u32,
    },
}

/// Heap events of one partitioned rack lane (the rack is implicit).
#[derive(Debug, Clone, Copy)]
enum LaneEvent {
    Completion,
    /// Periodic autoscaling evaluation.
    ScaleTick,
    /// `add` provisioned instances come online.
    ScaleCommit {
        add: u32,
    },
}

/// Precomputed cold-start penalties for one benchmark.
#[derive(Debug, Clone, Copy)]
struct ColdCosts {
    /// Image pulled from the remote registry (first cold start everywhere).
    remote: SimDuration,
    /// Image reloaded from the drive's flash over the P2P path (repeat cold
    /// starts on in-storage platforms).
    local: SimDuration,
    /// Process snapshot restored from local storage (repeat cold starts
    /// under [`ColdStartPath::SnapshotRestore`]).
    snapshot: SimDuration,
}

struct RackState {
    queue: SchedQueue,
    keepalive: KeepaliveState,
    cached_on_flash: HashSet<u32>,
    rng: DeterministicRng,
    busy: u32,
    /// Instances currently provisioned and able to run requests.
    capacity: u32,
    /// Instances requested but still provisioning (in the scale-up pipeline).
    pending: u32,
    completed: u64,
    rejected: u64,
    cold_starts: u64,
    coldstart: SimDuration,
    /// The subset of `coldstart` paid as snapshot restores.
    restore: SimDuration,
    /// Per-request IPC transport latency charged on started invocations.
    ipc_overhead: SimDuration,
    peak_queue: usize,
    peak_instances: u32,
    low_instances: u32,
    scale_ups: u64,
    scale_downs: u64,
    scaling_lag: SimDuration,
    locality_hits: u64,
    remote_fetches: u64,
    cross_rack_bytes: u64,
    fetch_latency: SimDuration,
    fetch_energy_j: f64,
    /// Streaming sketch of this rack's wall-clock latencies (seconds).
    latency: QuantileSketch,
}

impl RackState {
    fn load(&self) -> usize {
        self.busy as usize + self.queue.len()
    }
}

/// One rack lane's output before the cluster-level merge: the rack state plus
/// the lane's share of the Figure-13 series, its own clock and event counter.
struct RackRun {
    state: RackState,
    offered: TimeSeries,
    queued: TimeSeries,
    latency_series: TimeSeries,
    last_activity: SimTime,
    events: u64,
}

/// A finished run of either engine, before summaries and the final report.
struct ClusterRun {
    rack_states: Vec<RackState>,
    offered: TimeSeries,
    queued: TimeSeries,
    latency_series: TimeSeries,
    last_activity: SimTime,
    events: u64,
}

/// Deterministically merges per-rack lanes in rack order: series bucket-wise
/// via [`TimeSeries::merge`], the cluster clock as the maximum lane clock,
/// the event counter as the lane sum. Lane order — not execution order —
/// fixes every floating-point accumulation, so the merge is byte-stable
/// across worker counts.
fn merge_lanes(lanes: Vec<RackRun>) -> ClusterRun {
    let merge = |acc: &mut Option<TimeSeries>, series: TimeSeries| match acc {
        None => *acc = Some(series),
        Some(acc) => acc
            .merge(&series)
            .expect("rack lanes share bucket width and horizon"),
    };
    let mut rack_states = Vec::with_capacity(lanes.len());
    let mut offered: Option<TimeSeries> = None;
    let mut queued: Option<TimeSeries> = None;
    let mut latency_series: Option<TimeSeries> = None;
    let mut last_activity = SimTime::ZERO;
    let mut events: u64 = 0;
    for lane in lanes {
        merge(&mut offered, lane.offered);
        merge(&mut queued, lane.queued);
        merge(&mut latency_series, lane.latency_series);
        last_activity = last_activity.max(lane.last_activity);
        events += lane.events;
        rack_states.push(lane.state);
    }
    ClusterRun {
        rack_states,
        offered: offered.expect("at least one rack"),
        queued: queued.expect("at least one rack"),
        latency_series: latency_series.expect("at least one rack"),
        last_activity,
        events,
    }
}

/// The cluster simulator.
#[derive(Debug)]
pub struct ClusterSim {
    platform: PlatformKind,
    config: ClusterConfig,
    service_times: HashMap<Benchmark, SimDuration>,
    /// Unweighted mean service time over the benchmark suite, used by
    /// predictive autoscaling to convert arrival rates into instance demand.
    mean_service_s: f64,
    cold_costs: HashMap<Benchmark, ColdCosts>,
    /// Whether the platform's drive can cache evicted images on flash (the
    /// DSCS-Serverless P2P reload path).
    flash_cache: bool,
}

impl ClusterSim {
    /// Builds a simulator for `platform`, pre-computing per-benchmark service
    /// times from the end-to-end model (median storage latency; queueing, not
    /// the storage tail, dominates at scale) and cold-start penalties from the
    /// container-lifecycle model.
    pub fn new(platform: PlatformKind, config: ClusterConfig) -> Self {
        let system = SystemModel::new();
        let options = EvalOptions {
            quantile: 0.50,
            ..EvalOptions::default()
        };
        let service_times: HashMap<Benchmark, SimDuration> = Benchmark::ALL
            .iter()
            .map(|&b| (b, system.evaluate(b, platform, options).total_latency()))
            .collect();

        let cold_model = ColdStartModel::default();
        let spec = platform.spec();
        let cold_costs = Benchmark::ALL
            .iter()
            .map(|&b| {
                let bench = b.spec();
                let image: Bytes = bench
                    .pipeline()
                    .functions
                    .iter()
                    .map(|f| f.image_size)
                    .sum();
                let weights = bench.model(1).weight_bytes();
                let weight_load = cold_model.weight_load_latency(weights, spec.memory_bandwidth);
                let costs = ColdCosts {
                    remote: cold_model.cold_start_latency(image, ImageSource::RemoteRegistry)
                        + weight_load,
                    local: cold_model.cold_start_latency(image, ImageSource::LocalFlash)
                        + weight_load,
                    snapshot: cold_model.cold_start_latency(image, ImageSource::SnapshotRestore)
                        + weight_load,
                };
                (b, costs)
            })
            .collect();

        let mean_service_s = Benchmark::ALL
            .iter()
            .map(|b| service_times[b].as_secs_f64())
            .sum::<f64>()
            / Benchmark::ALL.len() as f64;

        ClusterSim {
            platform,
            config,
            service_times,
            mean_service_s,
            cold_costs,
            flash_cache: spec.location == PlatformLocation::InStorage,
        }
    }

    /// A copy of this simulator with a different cluster configuration,
    /// reusing the precomputed service times and cold-start costs (which
    /// depend only on the platform). Policy sweeps use this to avoid
    /// re-evaluating the end-to-end model for every policy cell.
    pub fn reconfigured(&self, config: ClusterConfig) -> ClusterSim {
        ClusterSim {
            platform: self.platform,
            config,
            service_times: self.service_times.clone(),
            mean_service_s: self.mean_service_s,
            cold_costs: self.cold_costs.clone(),
            flash_cache: self.flash_cache,
        }
    }

    /// The platform this simulator models.
    pub fn platform(&self) -> PlatformKind {
        self.platform
    }

    /// The configuration the simulator runs under.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// The service time used for one benchmark.
    pub fn service_time(&self, benchmark: Benchmark) -> SimDuration {
        self.service_times[&benchmark]
    }

    /// The cold-start penalty a first (registry) cold start of `benchmark`
    /// pays on this platform. Identical under every [`ColdStartPath`]: the
    /// first cold start of a function always pays the full registry spawn —
    /// there is no cached image or snapshot to reuse yet.
    pub fn cold_start_cost(&self, benchmark: Benchmark) -> SimDuration {
        self.cold_costs[&benchmark].remote
    }

    /// The cold-start penalty a *repeat* cold start of `benchmark` pays on
    /// this platform, under the configured [`ColdStartPath`]:
    ///
    /// * [`ColdStartPath::FreshSpawn`] — the registry spawn again, always.
    /// * [`ColdStartPath::FlashReload`] — on in-storage platforms the image
    ///   reloads from the drive's flash over the P2P path, everywhere else
    ///   it pulls from the remote registry (the historical behaviour).
    /// * [`ColdStartPath::SnapshotRestore`] — the process snapshot captured
    ///   after the first run restores from local storage.
    ///
    /// [`crate::optimal`] consumes this, so the offline bound automatically
    /// prices gaps against the same modality the simulated policy pays.
    pub fn repeat_cold_start_cost(&self, benchmark: Benchmark) -> SimDuration {
        let costs = self.cold_costs[&benchmark];
        match self.config.cold_path {
            ColdStartPath::FreshSpawn => costs.remote,
            ColdStartPath::FlashReload => {
                if self.flash_cache {
                    costs.local
                } else {
                    costs.remote
                }
            }
            ColdStartPath::SnapshotRestore => costs.snapshot,
        }
    }

    /// The snapshot-restore penalty for `benchmark` on this platform
    /// (restore stream + page-fault warmup tail + model-weight load),
    /// regardless of the configured path.
    pub fn snapshot_restore_cost(&self, benchmark: Benchmark) -> SimDuration {
        self.cold_costs[&benchmark].snapshot
    }

    /// Whether this platform caches evicted images on the drive's flash
    /// (making repeat cold starts cheaper than the first one).
    pub fn caches_images_on_flash(&self) -> bool {
        self.flash_cache
    }

    /// Runs the trace over a single rack and reports the Figure 13 series.
    #[deprecated(
        since = "0.2.0",
        note = "build an Experiment via dscs_cluster::experiment::ExperimentBuilder and call run()"
    )]
    pub fn run(&self, trace: &[TraceRequest], seed: u64) -> ClusterReport {
        #[allow(deprecated)]
        self.run_sharded(trace, seed, 1, LoadBalancer::RoundRobin).0
    }

    /// Runs the trace sharded over `racks` racks behind `balancer`, with no
    /// data placement tracked: every rack is assumed to read its inputs
    /// locally, the paper's original Figure-13 setup.
    #[deprecated(
        since = "0.2.0",
        note = "build an Experiment via dscs_cluster::experiment::ExperimentBuilder and call run()"
    )]
    pub fn run_sharded(
        &self,
        trace: &[TraceRequest],
        seed: u64,
        racks: u32,
        balancer: LoadBalancer,
    ) -> (ClusterReport, Vec<RackSummary>) {
        #[allow(deprecated)]
        self.run_sharded_with_data(trace, seed, racks, balancer, None)
    }

    /// Runs the trace sharded over `racks` racks behind `balancer`, returning
    /// the aggregate report plus per-rack summaries.
    ///
    /// Deprecated shim: [`crate::experiment::ExperimentBuilder`] is the
    /// typed entry point; it reports these preconditions as
    /// [`ConfigError`]s instead of panicking.
    ///
    /// # Panics
    /// Panics — with the historical assertion messages — if the trace is
    /// empty, `racks` is zero, the data layer (when present) was built for a
    /// different rack count, the scaling policy fails
    /// [`ScalingPolicy::check`], or an elastic configuration has
    /// `min_instances` of zero (the rack could never start work) or above
    /// `max_instances`.
    #[deprecated(
        since = "0.2.0",
        note = "build an Experiment via dscs_cluster::experiment::ExperimentBuilder and call run()"
    )]
    pub fn run_sharded_with_data(
        &self,
        trace: &[TraceRequest],
        seed: u64,
        racks: u32,
        balancer: LoadBalancer,
        data: Option<&DataLayer>,
    ) -> (ClusterReport, Vec<RackSummary>) {
        if let Err(err) = validate_run(trace, racks, &self.config, data) {
            panic!("{}", err.legacy_message());
        }
        let (report, summaries, _) = self.run_validated(trace, seed, racks, balancer, data, 1);
        (report, summaries)
    }

    /// The discrete-event core behind every run. Callers must have validated
    /// the inputs (see [`validate_run`]); [`Experiment`] instances have by
    /// construction.
    ///
    /// With a [`DataLayer`] attached, dispatch knows where each request's
    /// object lives: the locality-aware balancer prefers replica racks, and
    /// *any* request that starts on a rack without a replica — under any
    /// balancer — is charged the modelled cross-rack fetch latency, with the
    /// moved bytes, fetch time and fetch energy reported.
    ///
    /// Under [`ScalingPolicy::Fixed`] every rack runs `max_instances` for the
    /// whole trace. Elastic racks start at `min_instances` and are
    /// re-evaluated on their policy's interval; scale-ups come online
    /// `provisioning_delay` later.
    ///
    /// The engine is chosen by the balancer (see [`EngineSelection`]):
    /// round-robin runs pre-partition the trace into per-rack lanes —
    /// `rack_jobs` worker threads (0 = all cores, 1 = inline) simulate them —
    /// while coupled balancers run the whole-cluster sequential loop.
    /// Lane results are merged in rack order, so the report is byte-identical
    /// across every `rack_jobs` value.
    pub(crate) fn run_validated(
        &self,
        trace: &[TraceRequest],
        seed: u64,
        racks: u32,
        balancer: LoadBalancer,
        data: Option<&DataLayer>,
        rack_jobs: usize,
    ) -> (ClusterReport, Vec<RackSummary>, EngineSelection) {
        let horizon =
            trace.last().expect("non-empty").arrival - SimTime::ZERO + SimDuration::from_secs(120);
        let wall_clock = std::time::Instant::now();
        // Forking consumes the master stream, so take every rack's RNG here,
        // in rack order — lane execution order can then never change which
        // stream a rack gets.
        let mut master = DeterministicRng::seeded(seed);
        let rack_rngs: Vec<DeterministicRng> =
            (0..racks).map(|r| master.fork(u64::from(r))).collect();
        let (run, engine) = match balancer {
            LoadBalancer::RoundRobin => {
                let (lanes, workers) = self.run_lanes(trace, rack_rngs, horizon, data, rack_jobs);
                (
                    merge_lanes(lanes),
                    EngineSelection::RackParallel { workers },
                )
            }
            LoadBalancer::LeastLoaded => (
                self.run_coupled(trace, rack_rngs, balancer, horizon, data),
                EngineSelection::Sequential {
                    reason: "least-loaded dispatch reads every rack's load",
                },
            ),
            LoadBalancer::LocalityAware { .. } => (
                self.run_coupled(trace, rack_rngs, balancer, horizon, data),
                EngineSelection::Sequential {
                    reason: "locality spill decisions read every rack's load",
                },
            ),
        };
        let (report, summaries) = self.finalize(run, wall_clock);
        (report, summaries, engine)
    }

    /// The instance pool every rack starts from.
    fn initial_capacity(&self) -> u32 {
        if matches!(self.config.scaling, ScalingPolicy::Fixed) {
            self.config.max_instances
        } else {
            self.config.min_instances
        }
    }

    fn new_rack_state(&self, rng: DeterministicRng) -> RackState {
        let initial_capacity = self.initial_capacity();
        RackState {
            queue: SchedQueue::new(self.config.scheduler),
            keepalive: KeepaliveState::new(self.config.keepalive),
            cached_on_flash: HashSet::new(),
            rng,
            busy: 0,
            capacity: initial_capacity,
            pending: 0,
            completed: 0,
            rejected: 0,
            cold_starts: 0,
            coldstart: SimDuration::ZERO,
            restore: SimDuration::ZERO,
            ipc_overhead: SimDuration::ZERO,
            peak_queue: 0,
            peak_instances: initial_capacity,
            low_instances: initial_capacity,
            scale_ups: 0,
            scale_downs: 0,
            scaling_lag: SimDuration::ZERO,
            locality_hits: 0,
            remote_fetches: 0,
            cross_rack_bytes: 0,
            fetch_latency: SimDuration::ZERO,
            fetch_energy_j: 0.0,
            latency: QuantileSketch::new(),
        }
    }

    /// Admits one arrival to `rack`'s scheduler queue, rejecting it when the
    /// queue is full. Shared by both engines.
    fn admit(&self, rack: &mut RackState, idx: usize, request: &TraceRequest, now: SimTime) {
        if matches!(self.config.scaling, ScalingPolicy::Predictive { .. }) {
            // Predictive scaling estimates demand from offered load, not the
            // (capacity-throttled) start rate.
            rack.keepalive.note_arrival(request.function, now);
        }
        if rack.queue.len() >= self.config.queue_depth {
            rack.rejected += 1;
        } else {
            rack.queue.push(
                idx,
                request.benchmark,
                self.service_times[&request.benchmark],
            );
            rack.peak_queue = rack.peak_queue.max(rack.queue.len());
        }
    }

    /// Greedily starts queued requests on `rack`'s free instances, in the
    /// order the scheduler policy dictates, charging cold starts and remote
    /// fetches onto each started invocation. `schedule_completion` receives
    /// the service time of every started request. Shared by both engines.
    #[allow(clippy::too_many_arguments)]
    fn start_queued(
        &self,
        rack: &mut RackState,
        rack_idx: u32,
        now: SimTime,
        trace: &[TraceRequest],
        data: Option<&DataLayer>,
        latency_series: &mut TimeSeries,
        mut schedule_completion: impl FnMut(SimDuration),
    ) {
        while rack.busy < rack.capacity {
            let Some(idx) = rack.queue.pop() else { break };
            let request = &trace[idx];
            let base = self.service_times[&request.benchmark];
            let jitter = (self.config.service_jitter_sigma * rack.rng.standard_normal()).exp();
            let mut service = base * jitter;
            if !rack.keepalive.is_warm(request.function, now) {
                let costs = self.cold_costs[&request.benchmark];
                // A repeat cold start can reuse whatever the first one left
                // behind on this rack: the flash-cached image or the process
                // snapshot, per the configured path.
                let cached = rack.cached_on_flash.contains(&request.function);
                let penalty = match self.config.cold_path {
                    ColdStartPath::FreshSpawn => costs.remote,
                    ColdStartPath::FlashReload => {
                        if self.flash_cache && cached {
                            costs.local
                        } else {
                            costs.remote
                        }
                    }
                    ColdStartPath::SnapshotRestore => {
                        if cached {
                            rack.restore += costs.snapshot;
                            costs.snapshot
                        } else {
                            costs.remote
                        }
                    }
                };
                service += penalty;
                rack.cold_starts += 1;
                rack.coldstart += penalty;
                match self.config.cold_path {
                    ColdStartPath::FreshSpawn => {}
                    ColdStartPath::FlashReload => {
                        if self.flash_cache {
                            rack.cached_on_flash.insert(request.function);
                        }
                    }
                    ColdStartPath::SnapshotRestore => {
                        rack.cached_on_flash.insert(request.function);
                    }
                }
            }
            // Every started invocation — warm and cold — pays the gateway's
            // IPC transport (zero for the default shared-memory path).
            let ipc_cost = self.config.ipc.per_request_cost();
            service += ipc_cost;
            rack.ipc_overhead += ipc_cost;
            if let Some(data) = data {
                if data.holds(request.function, request.object, rack_idx) {
                    rack.locality_hits += 1;
                } else {
                    // The object lives elsewhere: the invocation carries
                    // the cross-rack fetch before it can execute.
                    let fetch = data.fetch_cost(request.object_bytes);
                    service += fetch.latency;
                    rack.remote_fetches += 1;
                    rack.cross_rack_bytes += request.object_bytes.as_u64();
                    rack.fetch_latency += fetch.latency;
                    rack.fetch_energy_j += fetch.energy_j;
                }
            }
            rack.keepalive
                .record_invocation(request.function, now, now + service);
            let wait = now.saturating_since(request.arrival);
            let wall = wait + service;
            rack.latency.record(wall.as_secs_f64());
            latency_series.record(request.arrival, wall.as_millis_f64());
            rack.completed += 1;
            rack.busy += 1;
            schedule_completion(service);
        }
    }

    /// Simulates one rack's lane of a round-robin run: the stride
    /// `rack_idx, rack_idx + racks, …` of the trace, streamed from a cursor
    /// (the trace is sorted by construction) against a heap holding only the
    /// O(pending) future completions and scaling events. Arrivals win ties
    /// against heap events, preserving the historical event order.
    fn run_rack(
        &self,
        trace: &[TraceRequest],
        rack_idx: usize,
        racks: usize,
        rng: DeterministicRng,
        horizon: SimDuration,
        data: Option<&DataLayer>,
    ) -> RackRun {
        let mut offered = TimeSeries::new(self.config.bucket, horizon);
        let mut queued = TimeSeries::new(self.config.bucket, horizon);
        let mut latency_series = TimeSeries::new(self.config.bucket, horizon);
        let mut state = self.new_rack_state(rng);
        let mut heap: EventQueue<LaneEvent> = EventQueue::new();
        if let Some(interval) = self.config.scaling.interval() {
            heap.schedule(SimTime::ZERO + interval, LaneEvent::ScaleTick);
        }
        let mut next_arrival = rack_idx;
        let mut arrivals_remaining = if rack_idx < trace.len() {
            (trace.len() - rack_idx).div_ceil(racks)
        } else {
            0
        };
        let mut last_activity = SimTime::ZERO;
        let mut events: u64 = 0;
        loop {
            let take_arrival = match (
                trace.get(next_arrival).map(|request| request.arrival),
                heap.peek_time(),
            ) {
                (Some(arrival), Some(heap_at)) => arrival <= heap_at,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            events += 1;
            if take_arrival {
                let idx = next_arrival;
                next_arrival += racks;
                arrivals_remaining -= 1;
                let request = &trace[idx];
                let now = request.arrival;
                last_activity = now;
                offered.record_event(now);
                self.admit(&mut state, idx, request, now);
                self.start_queued(
                    &mut state,
                    rack_idx as u32,
                    now,
                    trace,
                    data,
                    &mut latency_series,
                    |service| heap.schedule(now + service, LaneEvent::Completion),
                );
                queued.record(now, state.queue.len() as f64);
                continue;
            }
            let event = heap.pop().expect("a peeked event pops");
            let now = event.at;
            let runnable = match event.payload {
                LaneEvent::Completion => {
                    state.busy -= 1;
                    last_activity = now;
                    true
                }
                LaneEvent::ScaleTick => {
                    let interval = self
                        .config
                        .scaling
                        .interval()
                        .expect("ticks only run for elastic policies");
                    self.scale_decision(&mut state, now, |add| {
                        heap.schedule(
                            now + self.config.provisioning_delay,
                            LaneEvent::ScaleCommit { add },
                        );
                    });
                    if arrivals_remaining > 0 || state.busy > 0 || !state.queue.is_empty() {
                        heap.schedule(now + interval, LaneEvent::ScaleTick);
                    }
                    false
                }
                LaneEvent::ScaleCommit { add } => {
                    state.pending -= add;
                    state.capacity += add;
                    state.peak_instances = state.peak_instances.max(state.capacity);
                    state.scaling_lag += self.config.provisioning_delay;
                    true
                }
            };
            if runnable {
                self.start_queued(
                    &mut state,
                    rack_idx as u32,
                    now,
                    trace,
                    data,
                    &mut latency_series,
                    |service| heap.schedule(now + service, LaneEvent::Completion),
                );
                queued.record(now, state.queue.len() as f64);
            }
        }
        RackRun {
            state,
            offered,
            queued,
            latency_series,
            last_activity,
            events,
        }
    }

    /// Runs every rack lane of a round-robin run, on `rack_jobs` worker
    /// threads (0 = one per available core, 1 = inline on the caller's
    /// thread; always capped at the rack count). Returns the lanes in rack
    /// order plus the worker count actually used.
    fn run_lanes(
        &self,
        trace: &[TraceRequest],
        rack_rngs: Vec<DeterministicRng>,
        horizon: SimDuration,
        data: Option<&DataLayer>,
        rack_jobs: usize,
    ) -> (Vec<RackRun>, usize) {
        let racks = rack_rngs.len();
        let workers = match rack_jobs {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
        .min(racks)
        .max(1);
        if workers == 1 {
            let lanes = rack_rngs
                .into_iter()
                .enumerate()
                .map(|(r, rng)| self.run_rack(trace, r, racks, rng, horizon, data))
                .collect();
            return (lanes, 1);
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots: Vec<std::sync::OnceLock<RackRun>> =
            (0..racks).map(|_| std::sync::OnceLock::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let r = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if r >= racks {
                        break;
                    }
                    let lane = self.run_rack(trace, r, racks, rack_rngs[r].clone(), horizon, data);
                    let filled = slots[r].set(lane).is_ok();
                    debug_assert!(filled, "rack {r} claimed twice");
                });
            }
        });
        let lanes = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("the worker pool simulated every rack")
            })
            .collect();
        (lanes, workers)
    }

    /// The whole-cluster sequential event loop, used when the balancer reads
    /// cross-rack state at dispatch time. Arrivals stream from a cursor over
    /// the (sorted) trace — the heap only holds the O(pending) future events —
    /// and win ties against heap events, preserving the historical order of
    /// the preloaded-arrival engine.
    fn run_coupled(
        &self,
        trace: &[TraceRequest],
        rack_rngs: Vec<DeterministicRng>,
        balancer: LoadBalancer,
        horizon: SimDuration,
        data: Option<&DataLayer>,
    ) -> ClusterRun {
        let mut offered = TimeSeries::new(self.config.bucket, horizon);
        let mut queued_series = TimeSeries::new(self.config.bucket, horizon);
        let mut latency_series = TimeSeries::new(self.config.bucket, horizon);
        let mut rack_states: Vec<RackState> = rack_rngs
            .into_iter()
            .map(|rng| self.new_rack_state(rng))
            .collect();
        let mut heap: EventQueue<CoupledEvent> = EventQueue::new();
        if let Some(interval) = self.config.scaling.interval() {
            for rack in 0..rack_states.len() {
                heap.schedule(SimTime::ZERO + interval, CoupledEvent::ScaleTick { rack });
            }
        }
        let mut next_arrival: usize = 0;
        let mut last_activity = SimTime::ZERO;
        let mut events: u64 = 0;
        loop {
            let take_arrival = match (
                trace.get(next_arrival).map(|request| request.arrival),
                heap.peek_time(),
            ) {
                (Some(arrival), Some(heap_at)) => arrival <= heap_at,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            events += 1;
            // Events that can free or add capacity (or enqueue work) run the
            // start loop on their rack afterwards; scale ticks only take
            // decisions.
            let (rack_idx, now) = if take_arrival {
                let idx = next_arrival;
                next_arrival += 1;
                let request = &trace[idx];
                let now = request.arrival;
                last_activity = now;
                offered.record_event(now);
                let least_loaded = |racks: &[RackState]| {
                    racks
                        .iter()
                        .enumerate()
                        .min_by_key(|(i, rack)| (rack.load(), *i))
                        .map(|(i, _)| i)
                        .expect("at least one rack")
                };
                let r = match balancer {
                    LoadBalancer::RoundRobin => {
                        unreachable!("round-robin runs on the partitioned engine")
                    }
                    LoadBalancer::LeastLoaded => least_loaded(&rack_states),
                    LoadBalancer::LocalityAware { spill_threshold } => {
                        // Prefer the least-loaded rack holding a replica
                        // of the request's object; once its queue exceeds
                        // the spill threshold — or is full, which would
                        // reject the request outright — the fetch is
                        // cheaper than the wait, so fall back to
                        // least-loaded. Without a data layer there is no
                        // placement to honour.
                        let local = data.and_then(|d| {
                            d.replica_racks(request.function, request.object)
                                .iter()
                                .map(|&r| r as usize)
                                .filter(|&r| r < rack_states.len())
                                .min_by_key(|&r| (rack_states[r].load(), r))
                        });
                        let saturated =
                            spill_threshold.min(self.config.queue_depth.saturating_sub(1));
                        match local {
                            Some(r) if rack_states[r].queue.len() <= saturated => r,
                            _ => least_loaded(&rack_states),
                        }
                    }
                };
                self.admit(&mut rack_states[r], idx, request, now);
                (Some(r), now)
            } else {
                let event = heap.pop().expect("a peeked event pops");
                let now = event.at;
                match event.payload {
                    CoupledEvent::Completion { rack } => {
                        rack_states[rack].busy -= 1;
                        last_activity = now;
                        (Some(rack), now)
                    }
                    CoupledEvent::ScaleTick { rack } => {
                        self.scale_decision(&mut rack_states[rack], now, |add| {
                            heap.schedule(
                                now + self.config.provisioning_delay,
                                CoupledEvent::ScaleCommit { rack, add },
                            );
                        });
                        let r = &rack_states[rack];
                        if next_arrival < trace.len() || r.busy > 0 || !r.queue.is_empty() {
                            let interval = self
                                .config
                                .scaling
                                .interval()
                                .expect("ticks only run for elastic policies");
                            heap.schedule(now + interval, CoupledEvent::ScaleTick { rack });
                        }
                        (None, now)
                    }
                    CoupledEvent::ScaleCommit { rack, add } => {
                        let r = &mut rack_states[rack];
                        r.pending -= add;
                        r.capacity += add;
                        r.peak_instances = r.peak_instances.max(r.capacity);
                        r.scaling_lag += self.config.provisioning_delay;
                        (Some(rack), now)
                    }
                }
            };
            let Some(r) = rack_idx else { continue };
            self.start_queued(
                &mut rack_states[r],
                r as u32,
                now,
                trace,
                data,
                &mut latency_series,
                |service| heap.schedule(now + service, CoupledEvent::Completion { rack: r }),
            );
            queued_series.record(now, rack_states[r].queue.len() as f64);
        }
        ClusterRun {
            rack_states,
            offered,
            queued: queued_series,
            latency_series,
            last_activity,
            events,
        }
    }

    /// Merges a finished run — either engine — into the aggregate report and
    /// per-rack summaries, closing the warm-memory ledgers against the
    /// cluster-wide last activity first.
    fn finalize(
        &self,
        run: ClusterRun,
        wall_clock: std::time::Instant,
    ) -> (ClusterReport, Vec<RackSummary>) {
        let ClusterRun {
            mut rack_states,
            offered,
            queued: queued_series,
            latency_series,
            last_activity,
            events,
        } = run;
        // Close the warm-memory ledger: containers still warm at the end of
        // the run held their remaining window without a reuse.
        let makespan = last_activity - SimTime::ZERO;
        for rack in &mut rack_states {
            rack.keepalive.finish_accounting(last_activity);
        }

        let summaries: Vec<RackSummary> = rack_states
            .iter()
            .enumerate()
            .map(|(i, rack)| RackSummary {
                rack: i as u32,
                completed: rack.completed,
                rejected: rack.rejected,
                cold_starts: rack.cold_starts,
                coldstart_s: rack.coldstart.as_secs_f64(),
                restore_s: rack.restore.as_secs_f64(),
                ipc_overhead_s: rack.ipc_overhead.as_secs_f64(),
                prewarm_hits: rack.keepalive.stats().prewarm_hits,
                peak_queue: rack.peak_queue,
                peak_instances: rack.peak_instances,
                low_instances: rack.low_instances,
                scale_ups: rack.scale_ups,
                scale_downs: rack.scale_downs,
                locality_hits: rack.locality_hits,
                remote_fetches: rack.remote_fetches,
                cross_rack_bytes: rack.cross_rack_bytes,
                fetch_energy_j: rack.fetch_energy_j,
                mean_latency_ms: if rack.latency.is_empty() {
                    0.0
                } else {
                    rack.latency.mean() * 1e3
                },
                p99_latency_ms: if rack.latency.is_empty() {
                    0.0
                } else {
                    rack.latency.p99() * 1e3
                },
            })
            .collect();
        // Cluster-level latency: merge the per-rack sketches in rack order.
        // Merging is the correct aggregation — averaging per-rack p99s would
        // understate the cluster tail whenever one rack runs hotter than the
        // rest (the merged p99 tracks the slow rack, the average dilutes it).
        let merged_latency = rack_states
            .iter()
            .fold(QuantileSketch::new(), |mut acc, r| {
                acc.merge(&r.latency);
                acc
            });
        let report = ClusterReport {
            platform: self.platform,
            offered_rps: offered.rates_per_sec(),
            queued: queued_series.means_filled(),
            latency_ms: latency_series.means_filled(),
            completed: summaries.iter().map(|r| r.completed).sum(),
            rejected: summaries.iter().map(|r| r.rejected).sum(),
            cold_starts: summaries.iter().map(|r| r.cold_starts).sum(),
            coldstart_s: summaries.iter().map(|r| r.coldstart_s).sum(),
            restore_s: summaries.iter().map(|r| r.restore_s).sum(),
            ipc_overhead_s: summaries.iter().map(|r| r.ipc_overhead_s).sum(),
            prewarm_hits: summaries.iter().map(|r| r.prewarm_hits).sum(),
            warm_seconds: rack_states
                .iter()
                .map(|r| r.keepalive.stats().warm_seconds)
                .sum(),
            wasted_warm_seconds: rack_states
                .iter()
                .map(|r| r.keepalive.stats().wasted_warm_seconds)
                .sum(),
            scale_ups: summaries.iter().map(|r| r.scale_ups).sum(),
            scale_downs: summaries.iter().map(|r| r.scale_downs).sum(),
            scaling_lag_s: rack_states
                .iter()
                .map(|r| r.scaling_lag.as_secs_f64())
                .sum(),
            peak_instances: summaries
                .iter()
                .map(|r| r.peak_instances)
                .max()
                .unwrap_or(0),
            locality_hits: summaries.iter().map(|r| r.locality_hits).sum(),
            remote_fetches: summaries.iter().map(|r| r.remote_fetches).sum(),
            cross_rack_bytes: summaries.iter().map(|r| r.cross_rack_bytes).sum(),
            fetch_latency_s: rack_states
                .iter()
                .map(|r| r.fetch_latency.as_secs_f64())
                .sum(),
            fetch_energy_j: summaries.iter().map(|r| r.fetch_energy_j).sum(),
            latency_summary: if merged_latency.is_empty() {
                None
            } else {
                Some(merged_latency)
            },
            makespan,
            events,
            wall_s: Measured(wall_clock.elapsed().as_secs_f64()),
        };
        (report, summaries)
    }

    /// One autoscaling evaluation on `rack`: reactive policies watch the
    /// queue depth, predictive policies size the pool to the learned
    /// arrival-rate estimate. Scale-ups enter the provisioning pipeline —
    /// `schedule_commit(add)` schedules the commit `provisioning_delay` out,
    /// in whichever engine's heap the caller owns; scale-downs release
    /// immediately (running requests finish, the freed instances just stop
    /// accepting new work).
    fn scale_decision(
        &self,
        rack: &mut RackState,
        now: SimTime,
        schedule_commit: impl FnOnce(u32),
    ) {
        let (min, max) = (self.config.min_instances, self.config.max_instances);
        match self.config.scaling {
            ScalingPolicy::Fixed => unreachable!("fixed racks never tick"),
            ScalingPolicy::Reactive {
                scale_up_queue,
                scale_down_queue,
                step,
                ..
            } => {
                let provisioned = rack.capacity + rack.pending;
                let depth = rack.queue.len();
                if depth >= scale_up_queue && provisioned < max {
                    let add = step.min(max - provisioned);
                    rack.pending += add;
                    rack.scale_ups += 1;
                    schedule_commit(add);
                } else if depth <= scale_down_queue && rack.capacity > min {
                    let drop = step.min(rack.capacity - min);
                    rack.capacity -= drop;
                    rack.scale_downs += 1;
                    rack.low_instances = rack.low_instances.min(rack.capacity);
                }
            }
            ScalingPolicy::Predictive { interval, headroom } => {
                // Steady-state demand from the learned arrival rate, plus a
                // backlog term sized to drain the current queue within one
                // decision interval — cold-start pileups would otherwise sit
                // behind a pool sized only for warm steady state.
                let rate = rack.keepalive.arrival_rate_estimate(now);
                let steady = rate * self.mean_service_s * headroom;
                let backlog =
                    rack.queue.len() as f64 * self.mean_service_s / interval.as_secs_f64();
                // Saturation escape hatch: warm service times underprice a
                // pool stuck in multi-second cold starts, so a fully busy
                // pool with work still queued doubles instead of trusting
                // the model.
                let provisioned = u64::from(rack.capacity) + u64::from(rack.pending);
                let pressured = if rack.busy >= rack.capacity && !rack.queue.is_empty() {
                    provisioned * 2
                } else {
                    0
                };
                let demand = (steady.max(backlog).ceil() as u64).max(pressured);
                let target = demand.clamp(u64::from(min), u64::from(max)) as u32;
                let provisioned = rack.capacity + rack.pending;
                if target > provisioned {
                    let add = target - provisioned;
                    rack.pending += add;
                    rack.scale_ups += 1;
                    schedule_commit(add);
                } else if target < rack.capacity {
                    rack.capacity = target;
                    rack.scale_downs += 1;
                    rack.low_instances = rack.low_instances.min(rack.capacity);
                }
            }
        }
    }
}

/// Convenience runner: simulates one platform over a trace with default
/// cluster configuration (single rack, FCFS, fixed 10-minute keepalive).
#[deprecated(
    since = "0.2.0",
    note = "build an Experiment via dscs_cluster::experiment::ExperimentBuilder and call run()"
)]
pub fn simulate_platform(
    platform: PlatformKind,
    trace: &[TraceRequest],
    seed: u64,
) -> ClusterReport {
    Experiment::builder(platform)
        .trace(trace.to_vec())
        .seed(seed)
        .build()
        .unwrap_or_else(|err| panic!("{}", err.legacy_message()))
        .run()
        .report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RateProfile;
    use dscs_simcore::time::SimDuration;

    fn short_trace(rate: f64, secs: u64, seed: u64) -> Vec<TraceRequest> {
        let profile = RateProfile {
            segments: vec![(SimDuration::from_secs(secs), rate)],
        };
        profile.generate(&mut DeterministicRng::seeded(seed))
    }

    /// One default-configuration single-rack run through the builder API.
    fn run_platform(platform: PlatformKind, trace: &[TraceRequest], seed: u64) -> ClusterReport {
        Experiment::builder(platform)
            .trace(trace.to_vec())
            .seed(seed)
            .build()
            .expect("valid experiment")
            .run()
            .report
    }

    #[test]
    fn all_requests_complete_under_light_load() {
        let trace = short_trace(50.0, 20, 1);
        let report = run_platform(PlatformKind::DscsDsa, &trace, 2);
        assert_eq!(report.completed + report.rejected, trace.len() as u64);
        assert_eq!(report.rejected, 0);
        assert!(report.mean_latency_ms() > 0.0);
    }

    /// Regression for the latent aggregation bug class: cluster tails must
    /// come from *merging* per-rack sketches, never from averaging per-rack
    /// p99s. With one fast rack (100 × 1 ms) and one slow rack (100 × 100 ms)
    /// the true cluster p99 tracks the slow rack (~100 ms) while the average
    /// of the two rack p99s dilutes it to ~50 ms — off by 2x.
    #[test]
    fn cluster_p99_comes_from_merged_rack_sketches_not_averaged_p99s() {
        let fast = QuantileSketch::from_samples(&vec![0.001; 100]);
        let slow = QuantileSketch::from_samples(&vec![0.1; 100]);
        let averaged_p99_ms = (fast.p99() + slow.p99()) / 2.0 * 1e3;
        let mut merged = fast.clone();
        merged.merge(&slow);
        let merged_p99_ms = merged.p99() * 1e3;
        assert!(
            merged_p99_ms > 95.0,
            "merged p99 {merged_p99_ms} ms must track the slow rack"
        );
        assert!(
            averaged_p99_ms < 55.0,
            "averaged p99 {averaged_p99_ms} ms is the wrong answer this test pins out"
        );
        assert!(
            merged_p99_ms > averaged_p99_ms * 1.8,
            "the two aggregations must diverge: merged {merged_p99_ms} vs averaged {averaged_p99_ms}"
        );
    }

    /// The sharded report's latency summary is the merge of the per-rack
    /// sketches: its count equals total completions, the completed-weighted
    /// rack means reproduce the cluster mean exactly, the cluster p99 never
    /// exceeds the worst rack p99 (beyond sketch tolerance), and the
    /// engine-throughput measurements are populated.
    #[test]
    fn sharded_report_merges_rack_sketches_and_measures_throughput() {
        let trace = short_trace(800.0, 30, 7);
        let outcome = Experiment::builder(PlatformKind::DscsDsa)
            .trace(trace.clone())
            .racks(4)
            .balancer(LoadBalancer::RoundRobin)
            .seed(9)
            .build()
            .expect("valid experiment")
            .run();
        let report = &outcome.report;
        let sketch = report.latency_summary.as_ref().expect("ran");
        assert_eq!(sketch.count(), report.completed);
        let weighted_mean_ms = outcome
            .racks
            .iter()
            .map(|r| r.mean_latency_ms * r.completed as f64)
            .sum::<f64>()
            / report.completed as f64;
        assert!(
            (weighted_mean_ms - report.mean_latency_ms()).abs() < 1e-9,
            "weighted rack means {weighted_mean_ms} vs cluster mean {}",
            report.mean_latency_ms()
        );
        let worst_rack_p99 = outcome
            .racks
            .iter()
            .map(|r| r.p99_latency_ms)
            .fold(0.0, f64::max);
        assert!(worst_rack_p99 > 0.0);
        assert!(
            report.p99_latency_ms() <= worst_rack_p99 * 1.03,
            "cluster p99 {} must not exceed the worst rack p99 {worst_rack_p99}",
            report.p99_latency_ms()
        );
        // Every completed request contributes an arrival and a completion.
        assert!(report.events >= 2 * report.completed);
        assert!(report.events_per_sec() > 0.0);
    }

    #[test]
    fn dscs_sustains_more_load_than_the_baseline() {
        // At a load the DSCS cluster absorbs, the baseline CPU cluster builds a
        // queue and its wall-clock latency climbs (Figure 13c vs 13d).
        let trace = short_trace(1500.0, 60, 3);
        let dscs = run_platform(PlatformKind::DscsDsa, &trace, 4);
        let baseline = run_platform(PlatformKind::BaselineCpu, &trace, 4);
        assert!(baseline.peak_queue() > dscs.peak_queue());
        assert!(baseline.mean_latency_ms() > dscs.mean_latency_ms());
    }

    #[test]
    fn baseline_latency_grows_over_time_under_sustained_overload() {
        let trace = short_trace(2500.0, 120, 5);
        let report = run_platform(PlatformKind::BaselineCpu, &trace, 6);
        let series = &report.latency_ms;
        assert!(series.len() >= 2);
        assert!(
            series.last().expect("non-empty") > series.first().expect("non-empty"),
            "latency should climb: {series:?}"
        );
    }

    #[test]
    fn queue_overflow_rejects_requests() {
        let trace = short_trace(500.0, 20, 7);
        let requests = trace.len() as u64;
        let outcome = Experiment::builder(PlatformKind::BaselineCpu)
            .trace(trace)
            .instances(8, 2)
            .queue_depth(10)
            .seed(8)
            .build()
            .expect("fixed racks ignore min_instances")
            .run();
        assert!(outcome.report.rejected > 0);
        assert_eq!(outcome.report.completed + outcome.report.rejected, requests);
    }

    #[test]
    fn service_times_come_from_the_end_to_end_model() {
        let sim = ClusterSim::new(PlatformKind::DscsDsa, ClusterConfig::default());
        let light = sim.service_time(Benchmark::CreditRiskAssessment);
        let heavy = sim.service_time(Benchmark::ConversationalChatbot);
        assert!(heavy > light);
    }

    #[test]
    fn makespan_extends_past_the_trace_when_overloaded() {
        let trace = short_trace(2500.0, 60, 9);
        let report = run_platform(PlatformKind::BaselineCpu, &trace, 10);
        assert!(report.makespan > SimDuration::from_secs(60));
    }

    #[test]
    fn default_keepalive_pays_one_cold_start_per_function() {
        // With the 10-minute fixed window and a 20-second trace, each of the
        // eight benchmark functions runs cold exactly once.
        let trace = short_trace(50.0, 20, 11);
        let report = run_platform(PlatformKind::DscsDsa, &trace, 12);
        assert_eq!(report.cold_starts, 8, "one cold start per function");
    }

    #[test]
    fn no_keepalive_pays_many_more_cold_starts() {
        // Sparse arrivals so invocations rarely overlap.
        let trace = short_trace(5.0, 30, 13);
        let report = Experiment::builder(PlatformKind::DscsDsa)
            .trace(trace.clone())
            .keepalive(KeepalivePolicy::NoKeepalive)
            .seed(14)
            .build()
            .expect("valid experiment")
            .run()
            .report;
        let warm = run_platform(PlatformKind::DscsDsa, &trace, 14);
        assert!(
            report.cold_starts > warm.cold_starts * 3,
            "no-keepalive {} vs fixed {}",
            report.cold_starts,
            warm.cold_starts
        );
        assert!(report.mean_latency_ms() > warm.mean_latency_ms());
    }

    #[test]
    fn flash_caching_makes_dscs_repeat_cold_starts_cheaper() {
        let sim = ClusterSim::new(PlatformKind::DscsDsa, ClusterConfig::default());
        let costs = sim.cold_costs[&Benchmark::CreditRiskAssessment];
        assert!(costs.local < costs.remote);
        // The baseline CPU never caches on drive flash.
        let cpu = ClusterSim::new(PlatformKind::BaselineCpu, ClusterConfig::default());
        assert!(!cpu.flash_cache);
        assert!(sim.flash_cache);
    }

    #[test]
    fn cold_start_costs_are_seconds_scale() {
        let sim = ClusterSim::new(PlatformKind::BaselineCpu, ClusterConfig::default());
        for b in Benchmark::ALL {
            let cost = sim.cold_start_cost(b);
            assert!(
                cost > SimDuration::from_millis(500) && cost < SimDuration::from_secs(120),
                "{b}: {cost}"
            );
        }
    }

    #[test]
    fn sharding_splits_work_and_preserves_totals() {
        let trace = std::sync::Arc::new(short_trace(800.0, 30, 15));
        let sim = ClusterSim::new(PlatformKind::DscsDsa, ClusterConfig::default());
        for balancer in LoadBalancer::ALL {
            let outcome = Experiment::builder(PlatformKind::DscsDsa)
                .trace(trace.clone())
                .racks(4)
                .balancer(balancer)
                .seed(16)
                .build()
                .expect("valid experiment")
                .run_on(&sim);
            assert_eq!(outcome.racks.len(), 4);
            assert_eq!(
                outcome.report.completed + outcome.report.rejected,
                trace.len() as u64
            );
            let per_rack: Vec<u64> = outcome.racks.iter().map(|r| r.completed).collect();
            assert!(
                per_rack.iter().all(|&c| c > 0),
                "{balancer:?}: every rack serves work: {per_rack:?}"
            );
        }
    }

    #[test]
    fn more_racks_absorb_more_load() {
        // A load that overwhelms one baseline rack is absorbed by four.
        let trace = std::sync::Arc::new(short_trace(2500.0, 60, 17));
        let sim = ClusterSim::new(PlatformKind::BaselineCpu, ClusterConfig::default());
        let sharded = |racks| {
            Experiment::builder(PlatformKind::BaselineCpu)
                .trace(trace.clone())
                .racks(racks)
                .seed(18)
                .build()
                .expect("valid experiment")
                .run_on(&sim)
                .report
        };
        let one = sharded(1);
        let four = sharded(4);
        assert!(four.mean_latency_ms() < one.mean_latency_ms() / 2.0);
        assert!(four.peak_queue() < one.peak_queue());
    }

    #[test]
    fn reactive_scaling_grows_under_load_and_stays_bounded() {
        let trace = short_trace(1500.0, 60, 21);
        let outcome = Experiment::builder(PlatformKind::BaselineCpu)
            .trace(trace)
            .scaling(ScalingPolicy::reactive_default())
            .racks(2)
            .seed(22)
            .build()
            .expect("valid experiment")
            .run();
        let config = ClusterConfig::default();
        let report = &outcome.report;
        assert!(report.scale_ups > 0, "overload must trigger scale-ups");
        assert!(report.scaling_lag_s > 0.0, "scale-ups pay provisioning lag");
        assert!(report.peak_instances > config.min_instances);
        assert!(report.peak_instances <= config.max_instances);
        for rack in &outcome.racks {
            assert!(rack.low_instances >= config.min_instances);
            assert!(rack.peak_instances <= config.max_instances);
        }
    }

    #[test]
    fn reactive_scaling_releases_instances_when_load_fades() {
        // A burst followed by a long quiet tail: the rack must shrink again.
        let profile = RateProfile {
            segments: vec![
                (SimDuration::from_secs(20), 1200.0),
                (SimDuration::from_secs(120), 2.0),
            ],
        };
        let trace = profile.generate(&mut DeterministicRng::seeded(23));
        let outcome = Experiment::builder(PlatformKind::BaselineCpu)
            .trace(trace)
            .scaling(ScalingPolicy::reactive_default())
            .seed(24)
            .build()
            .expect("valid experiment")
            .run();
        assert!(outcome.report.scale_ups > 0);
        assert!(
            outcome.report.scale_downs > 0,
            "quiet tail must release instances"
        );
        assert!(outcome.racks[0].low_instances < outcome.racks[0].peak_instances);
    }

    #[test]
    fn predictive_scaling_tracks_offered_load() {
        let trace = short_trace(1200.0, 60, 25);
        let requests = trace.len() as u64;
        let report = Experiment::builder(PlatformKind::BaselineCpu)
            .trace(trace)
            .scaling(ScalingPolicy::predictive_default())
            .racks(2)
            .seed(26)
            .build()
            .expect("valid experiment")
            .run()
            .report;
        let config = ClusterConfig::default();
        assert!(report.scale_ups > 0, "sustained load must provision");
        assert!(report.peak_instances > config.min_instances);
        assert!(report.peak_instances <= config.max_instances);
        assert_eq!(report.completed + report.rejected, requests);
    }

    #[test]
    fn fixed_scaling_matches_a_pinned_elastic_pool_bit_for_bit() {
        // An autoscaler whose bounds pin the pool at the fixed cap takes the
        // same decisions as no autoscaler at all: every series, summary and
        // rack outcome must be identical, which also proves the scale-tick
        // machinery perturbs neither the RNG stream nor the event ordering.
        let trace = std::sync::Arc::new(short_trace(700.0, 45, 27));
        let base = ClusterSim::new(PlatformKind::DscsDsa, ClusterConfig::default());
        let experiment = |scaling, min| {
            Experiment::builder(PlatformKind::DscsDsa)
                .trace(trace.clone())
                .scaling(scaling)
                .instances(min, 200)
                .racks(2)
                .balancer(LoadBalancer::LeastLoaded)
                .seed(28)
                .build()
                .expect("valid experiment")
                .run_on(&base)
        };
        let fixed = experiment(ScalingPolicy::Fixed, 8);
        let pinned = experiment(ScalingPolicy::reactive_default(), 200);
        // The pinned pool still runs its scale ticks — extra engine events
        // that never change a decision — so the engine-work counter is the
        // one field allowed to differ.
        let mut pinned_report = pinned.report.clone();
        assert!(pinned_report.events > fixed.report.events);
        pinned_report.events = fixed.report.events;
        assert_eq!(fixed.report, pinned_report);
        assert_eq!(fixed.racks, pinned.racks);
    }

    #[test]
    fn prewarming_reports_hits_and_saves_warm_seconds() {
        let trace = std::sync::Arc::new(short_trace(80.0, 60, 29));
        let base = ClusterSim::new(PlatformKind::DscsDsa, ClusterConfig::default());
        let run = |keepalive| {
            Experiment::builder(PlatformKind::DscsDsa)
                .trace(trace.clone())
                .keepalive(keepalive)
                .seed(30)
                .build()
                .expect("valid experiment")
                .run_on(&base)
                .report
        };
        let plain = run(KeepalivePolicy::hybrid_default());
        let warmed = run(KeepalivePolicy::prewarm_default());
        assert_eq!(plain.prewarm_hits, 0, "no head percentile, no hits");
        assert!(warmed.prewarm_hits > 0, "prewarmed instances get found");
        assert!(warmed.prewarm_hit_rate() > 0.0);
        assert!(
            warmed.cold_starts <= plain.cold_starts,
            "prewarm {} vs plain {}",
            warmed.cold_starts,
            plain.cold_starts
        );
        assert!(
            warmed.warm_seconds <= plain.warm_seconds,
            "released-then-prewarmed pools hold less memory"
        );
    }

    #[test]
    fn warm_second_accounting_orders_keepalive_policies() {
        // Memory cost: no-keepalive holds nothing, the 10-minute fixed
        // window holds the most, the hybrid histogram sits in between.
        let trace = std::sync::Arc::new(short_trace(40.0, 30, 31));
        let base = ClusterSim::new(PlatformKind::DscsDsa, ClusterConfig::default());
        let run = |keepalive| {
            Experiment::builder(PlatformKind::DscsDsa)
                .trace(trace.clone())
                .keepalive(keepalive)
                .seed(32)
                .build()
                .expect("valid experiment")
                .run_on(&base)
                .report
        };
        let none = run(KeepalivePolicy::NoKeepalive);
        let fixed = run(KeepalivePolicy::paper_default());
        assert_eq!(none.warm_seconds, 0.0);
        assert!(fixed.warm_seconds > 0.0);
        assert!(fixed.wasted_warm_seconds > 0.0, "final windows are wasted");
        assert!(fixed.wasted_warm_seconds <= fixed.warm_seconds);
    }

    /// The deprecated shim keeps the historical panic (the builder reports
    /// the same violation as [`ConfigError::ZeroMinInstances`]).
    #[test]
    #[should_panic(expected = "at least one instance")]
    #[allow(deprecated)]
    fn zero_min_instance_elastic_rack_is_rejected() {
        let config = ClusterConfig {
            scaling: ScalingPolicy::reactive_default(),
            min_instances: 0,
            ..ClusterConfig::default()
        };
        let trace = short_trace(10.0, 5, 33);
        let sim = ClusterSim::new(PlatformKind::DscsDsa, config);
        let _ = sim.run(&trace, 34);
    }

    /// A replica rack whose queue is *full* counts as saturated even when
    /// the spill threshold is deeper than the queue: the locality balancer
    /// must spill to an idle rack instead of dispatching into a rejection.
    #[test]
    fn locality_balancer_spills_before_rejecting_at_a_full_replica_rack() {
        use crate::data::DataLayer;
        use dscs_simcore::quantity::Bytes;

        // Every request reads the same object, whose single replica set
        // lives in one rack; the queue (10) is far below the spill
        // threshold (64). 400 near-simultaneous requests fit the two racks'
        // combined instances + queues (2 x (200 + 10)) only if the balancer
        // spills off the full replica rack.
        let trace: Vec<TraceRequest> = (0..400)
            .map(|i| TraceRequest {
                id: i,
                arrival: SimTime::from_nanos(i * 1_000),
                benchmark: Benchmark::ALL[0],
                function: 0,
                object: 0,
                object_bytes: Bytes::from_kib(256),
            })
            .collect();
        let racks = 2;
        let data = DataLayer::for_trace(&trace, racks, 5);
        let outcome = Experiment::builder(PlatformKind::DscsDsa)
            .trace(trace)
            .racks(racks)
            .queue_depth(10)
            .balancer(LoadBalancer::locality_default())
            .data_layer(data)
            .seed(6)
            .build()
            .expect("valid experiment")
            .run();
        let (report, summaries) = (&outcome.report, &outcome.racks);
        assert_eq!(
            report.rejected, 0,
            "two racks hold 420 instance+queue slots for 400 requests; \
             a full replica rack must spill, not reject"
        );
        assert!(
            summaries.iter().all(|r| r.completed > 0),
            "spilling must actually reach the non-replica rack: {summaries:?}"
        );
        assert!(
            report.remote_fetches > 0,
            "spilled requests pay the cross-rack fetch"
        );
        assert!(
            report.fetch_energy_j > 0.0,
            "cross-rack fetches carry an energy charge"
        );
    }

    #[test]
    fn least_loaded_beats_round_robin_under_skewed_service_times() {
        // SJF-free comparison: with heterogeneous service times, least-loaded
        // should never do much worse than round-robin on mean latency.
        let trace = std::sync::Arc::new(short_trace(1800.0, 45, 19));
        let sim = ClusterSim::new(PlatformKind::BaselineCpu, ClusterConfig::default());
        let run = |balancer| {
            Experiment::builder(PlatformKind::BaselineCpu)
                .trace(trace.clone())
                .racks(3)
                .balancer(balancer)
                .seed(20)
                .build()
                .expect("valid experiment")
                .run_on(&sim)
                .report
        };
        let rr = run(LoadBalancer::RoundRobin);
        let ll = run(LoadBalancer::LeastLoaded);
        assert!(ll.mean_latency_ms() <= rr.mean_latency_ms() * 1.05);
    }
}
