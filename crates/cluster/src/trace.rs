//! Request-trace generation.
//!
//! The at-scale evaluation (Figure 13a) drives the cluster with a synthetic,
//! bursty trace: request rates that step between levels over a 20-minute
//! window, with Poisson arrivals inside each segment and the application of
//! each request sampled uniformly from the benchmark suite — the same recipe as
//! the prior work the paper follows. [`RateProfile`] implements the
//! [`Workload`] trait, so the same simulation also runs Azure-style traces
//! (see [`crate::workload`]).

use serde::{Deserialize, Serialize};

use dscs_core::benchmarks::Benchmark;
use dscs_simcore::dist::PoissonArrivals;
use dscs_simcore::quantity::Bytes;
use dscs_simcore::rng::DeterministicRng;
use dscs_simcore::time::{SimDuration, SimTime};

use crate::workload::{ObjectCatalog, Workload, WorkloadError};

/// One request in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRequest {
    /// Request identifier (position in the trace).
    pub id: u64,
    /// Arrival time.
    pub arrival: SimTime,
    /// The application invoked.
    pub benchmark: Benchmark,
    /// Identifier of the serverless function invoked. Keepalive policies track
    /// warm containers per function; for the bursty Figure-13 trace this is
    /// the benchmark's index, while Azure-style workloads spread many
    /// functions over the same eight applications.
    pub function: u32,
    /// The object (within the function's [`crate::workload::ObjectPopulation`])
    /// this invocation reads. Locality-aware placement dispatches on where
    /// this object's replicas live.
    pub object: u32,
    /// Size of that object — the payload a non-local rack must fetch across
    /// the datacenter fabric.
    pub object_bytes: Bytes,
}

/// A piecewise-constant arrival-rate profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateProfile {
    /// `(segment duration, requests per second)` pairs.
    pub segments: Vec<(SimDuration, f64)>,
}

impl RateProfile {
    /// The bursty 20-minute profile used by Figure 13a.
    ///
    /// The paper's trace steps between roughly 200 and 800 requests/second
    /// against measured EC2 service times of a few seconds per request. Our
    /// simulated service times are faster in absolute terms, so the rates here
    /// are scaled up to preserve the paper's load-to-capacity ratios — the
    /// baseline CPU cluster is pushed past saturation during the bursts while
    /// the DSCS cluster stays within capacity, which is what Figures 13b–13d
    /// show.
    pub fn paper_bursty() -> Self {
        let minute = SimDuration::from_secs(60);
        RateProfile {
            segments: vec![
                (minute * 3, 750.0),
                (minute * 2, 1350.0),
                (minute * 2, 2100.0),
                (minute * 2, 2450.0),
                (minute * 2, 1800.0),
                (minute * 3, 1150.0),
                (minute * 2, 2250.0),
                (minute * 2, 1500.0),
                (minute * 2, 850.0),
            ],
        }
    }

    /// A horizontally compressed copy (same rate steps over `1/factor` of the
    /// time), used by quick runs.
    pub fn compressed(&self, factor: f64) -> Self {
        assert!(factor >= 1.0 && factor.is_finite(), "factor must be >= 1");
        RateProfile {
            segments: self
                .segments
                .iter()
                .map(|&(d, r)| (SimDuration::from_secs_f64(d.as_secs_f64() / factor), r))
                .collect(),
        }
    }

    /// Total trace duration.
    pub fn horizon(&self) -> SimDuration {
        self.segments.iter().map(|(d, _)| *d).sum()
    }

    /// Generates the request trace.
    ///
    /// # Panics
    /// Panics if the profile fails [`RateProfile::validate`] (empty segment
    /// list, non-finite/negative rate or zero-length segment). Use
    /// [`Workload::generate`] for the non-panicking variant.
    pub fn generate(&self, rng: &mut DeterministicRng) -> Vec<TraceRequest> {
        match Workload::generate(self, rng) {
            Ok(trace) => trace,
            Err(WorkloadError::EmptyProfile) => panic!("profile needs at least one segment"),
            Err(err) => panic!("invalid rate profile: {err}"),
        }
    }
}

impl Workload for RateProfile {
    fn name(&self) -> &'static str {
        "bursty"
    }

    fn horizon(&self) -> SimDuration {
        RateProfile::horizon(self)
    }

    fn validate(&self) -> Result<(), WorkloadError> {
        if self.segments.is_empty() {
            return Err(WorkloadError::EmptyProfile);
        }
        for (segment, &(duration, rate)) in self.segments.iter().enumerate() {
            if !rate.is_finite() || rate < 0.0 {
                return Err(WorkloadError::InvalidRate { segment, rate });
            }
            if duration.is_zero() {
                return Err(WorkloadError::ZeroDuration { segment });
            }
        }
        Ok(())
    }

    fn generate(&self, rng: &mut DeterministicRng) -> Result<Vec<TraceRequest>, WorkloadError> {
        self.validate()?;
        let catalog = ObjectCatalog::new(self.objects());
        let mut requests = Vec::new();
        let mut offset = SimDuration::ZERO;
        let mut id = 0u64;
        for &(duration, rate) in &self.segments {
            // A zero-rate segment contributes silence, not arrivals.
            let arrivals = if rate > 0.0 {
                PoissonArrivals::new(rate).arrivals_until(duration, rng)
            } else {
                Vec::new()
            };
            for t in arrivals {
                let function = rng.next_index(Benchmark::ALL.len()) as u32;
                let object = catalog.object_for(function, id);
                requests.push(TraceRequest {
                    id,
                    arrival: SimTime::ZERO + offset + t,
                    benchmark: Benchmark::ALL[function as usize],
                    function,
                    object,
                    object_bytes: catalog.size_of(function, object),
                });
                id += 1;
            }
            offset += duration;
        }
        Ok(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_lasts_twenty_minutes() {
        assert_eq!(
            RateProfile::paper_bursty().horizon(),
            SimDuration::from_secs(20 * 60)
        );
    }

    #[test]
    fn generated_trace_is_sorted_and_plausible() {
        let profile = RateProfile::paper_bursty();
        let mut rng = DeterministicRng::seeded(11);
        let trace = profile.generate(&mut rng);
        assert!(trace.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        // Average rate ~ 1560 rps over 1200 s -> roughly 1.9M requests.
        assert!(
            trace.len() > 1_500_000 && trace.len() < 2_300_000,
            "trace len {}",
            trace.len()
        );
        assert!(trace
            .iter()
            .all(|r| r.arrival < SimTime::ZERO + RateProfile::horizon(&profile)));
    }

    #[test]
    fn all_benchmarks_appear_in_the_trace() {
        let profile = RateProfile {
            segments: vec![(SimDuration::from_secs(10), 200.0)],
        };
        let mut rng = DeterministicRng::seeded(12);
        let trace = profile.generate(&mut rng);
        for b in Benchmark::ALL {
            assert!(trace.iter().any(|r| r.benchmark == b), "{b} missing");
        }
    }

    #[test]
    fn trace_is_deterministic_for_a_seed() {
        let profile = RateProfile {
            segments: vec![(SimDuration::from_secs(5), 100.0)],
        };
        let a = profile.generate(&mut DeterministicRng::seeded(13));
        let b = profile.generate(&mut DeterministicRng::seeded(13));
        assert_eq!(a, b);
    }

    #[test]
    fn function_ids_track_benchmarks() {
        let profile = RateProfile {
            segments: vec![(SimDuration::from_secs(5), 100.0)],
        };
        let trace = profile.generate(&mut DeterministicRng::seeded(14));
        assert!(trace
            .iter()
            .all(|r| Benchmark::ALL[r.function as usize] == r.benchmark));
    }

    #[test]
    fn empty_profile_yields_typed_error() {
        let profile = RateProfile { segments: vec![] };
        assert_eq!(profile.validate(), Err(WorkloadError::EmptyProfile));
    }

    #[test]
    fn bad_rates_yield_typed_errors() {
        let profile = RateProfile {
            segments: vec![
                (SimDuration::from_secs(1), 10.0),
                (SimDuration::from_secs(1), f64::NAN),
            ],
        };
        assert!(matches!(
            profile.validate(),
            Err(WorkloadError::InvalidRate { segment: 1, rate }) if rate.is_nan()
        ));

        let profile = RateProfile {
            segments: vec![(SimDuration::from_secs(1), -3.0)],
        };
        assert_eq!(
            profile.validate(),
            Err(WorkloadError::InvalidRate {
                segment: 0,
                rate: -3.0
            })
        );

        let profile = RateProfile {
            segments: vec![(SimDuration::ZERO, 10.0)],
        };
        assert_eq!(
            profile.validate(),
            Err(WorkloadError::ZeroDuration { segment: 0 })
        );
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn panicking_generate_keeps_its_contract() {
        let profile = RateProfile { segments: vec![] };
        let _ = profile.generate(&mut DeterministicRng::seeded(1));
    }

    #[test]
    fn zero_rate_segments_produce_silence_not_errors() {
        let profile = RateProfile {
            segments: vec![
                (SimDuration::from_secs(1), 0.0),
                (SimDuration::from_secs(1), 50.0),
            ],
        };
        assert_eq!(profile.validate(), Ok(()));
        let trace = profile.generate(&mut DeterministicRng::seeded(15));
        assert!(!trace.is_empty());
        assert!(trace
            .iter()
            .all(|r| r.arrival >= SimTime::ZERO + SimDuration::from_secs(1)));
    }

    #[test]
    fn compression_shrinks_the_horizon() {
        let profile = RateProfile::paper_bursty();
        let quick = profile.compressed(4.0);
        assert_eq!(RateProfile::horizon(&quick), SimDuration::from_secs(5 * 60));
    }
}
