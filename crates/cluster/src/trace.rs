//! Request-trace generation.
//!
//! The at-scale evaluation (Figure 13a) drives the cluster with a synthetic,
//! bursty trace: request rates that step between levels over a 20-minute
//! window, with Poisson arrivals inside each segment and the application of
//! each request sampled uniformly from the benchmark suite — the same recipe as
//! the prior work the paper follows.

use serde::{Deserialize, Serialize};

use dscs_core::benchmarks::Benchmark;
use dscs_simcore::dist::PoissonArrivals;
use dscs_simcore::rng::DeterministicRng;
use dscs_simcore::time::{SimDuration, SimTime};

/// One request in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRequest {
    /// Request identifier (position in the trace).
    pub id: u64,
    /// Arrival time.
    pub arrival: SimTime,
    /// The application invoked.
    pub benchmark: Benchmark,
}

/// A piecewise-constant arrival-rate profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateProfile {
    /// `(segment duration, requests per second)` pairs.
    pub segments: Vec<(SimDuration, f64)>,
}

impl RateProfile {
    /// The bursty 20-minute profile used by Figure 13a.
    ///
    /// The paper's trace steps between roughly 200 and 800 requests/second
    /// against measured EC2 service times of a few seconds per request. Our
    /// simulated service times are faster in absolute terms, so the rates here
    /// are scaled up to preserve the paper's load-to-capacity ratios — the
    /// baseline CPU cluster is pushed past saturation during the bursts while
    /// the DSCS cluster stays within capacity, which is what Figures 13b–13d
    /// show.
    pub fn paper_bursty() -> Self {
        let minute = SimDuration::from_secs(60);
        RateProfile {
            segments: vec![
                (minute * 3, 750.0),
                (minute * 2, 1350.0),
                (minute * 2, 2100.0),
                (minute * 2, 2450.0),
                (minute * 2, 1800.0),
                (minute * 3, 1150.0),
                (minute * 2, 2250.0),
                (minute * 2, 1500.0),
                (minute * 2, 850.0),
            ],
        }
    }

    /// Total trace duration.
    pub fn horizon(&self) -> SimDuration {
        self.segments.iter().map(|(d, _)| *d).sum()
    }

    /// Generates the request trace.
    ///
    /// # Panics
    /// Panics if the profile has no segments.
    pub fn generate(&self, rng: &mut DeterministicRng) -> Vec<TraceRequest> {
        assert!(
            !self.segments.is_empty(),
            "profile needs at least one segment"
        );
        let mut requests = Vec::new();
        let mut offset = SimDuration::ZERO;
        let mut id = 0u64;
        for &(duration, rate) in &self.segments {
            let arrivals = PoissonArrivals::new(rate).arrivals_until(duration, rng);
            for t in arrivals {
                requests.push(TraceRequest {
                    id,
                    arrival: SimTime::ZERO + offset + t,
                    benchmark: *rng.choose(&Benchmark::ALL),
                });
                id += 1;
            }
            offset += duration;
        }
        requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_lasts_twenty_minutes() {
        assert_eq!(
            RateProfile::paper_bursty().horizon(),
            SimDuration::from_secs(20 * 60)
        );
    }

    #[test]
    fn generated_trace_is_sorted_and_plausible() {
        let profile = RateProfile::paper_bursty();
        let mut rng = DeterministicRng::seeded(11);
        let trace = profile.generate(&mut rng);
        assert!(trace.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        // Average rate ~ 1560 rps over 1200 s -> roughly 1.9M requests.
        assert!(
            trace.len() > 1_500_000 && trace.len() < 2_300_000,
            "trace len {}",
            trace.len()
        );
        assert!(trace
            .iter()
            .all(|r| r.arrival < SimTime::ZERO + profile.horizon()));
    }

    #[test]
    fn all_benchmarks_appear_in_the_trace() {
        let profile = RateProfile {
            segments: vec![(SimDuration::from_secs(10), 200.0)],
        };
        let mut rng = DeterministicRng::seeded(12);
        let trace = profile.generate(&mut rng);
        for b in Benchmark::ALL {
            assert!(trace.iter().any(|r| r.benchmark == b), "{b} missing");
        }
    }

    #[test]
    fn trace_is_deterministic_for_a_seed() {
        let profile = RateProfile {
            segments: vec![(SimDuration::from_secs(5), 100.0)],
        };
        let a = profile.generate(&mut DeterministicRng::seeded(13));
        let b = profile.generate(&mut DeterministicRng::seeded(13));
        assert_eq!(a, b);
    }
}
