//! Workload abstraction and the Azure-style synthetic generator.
//!
//! The at-scale evaluation originally replayed a single hard-coded 20-minute
//! bursty profile (Figure 13a). Production serverless platforms see far more
//! varied traffic: the Azure Functions traces behind *Serverless in the Wild*
//! show per-function popularity that is heavily skewed (a few functions get
//! most invocations), inter-arrival times that are Poisson-like per function,
//! and aggregate rates that follow diurnal cycles punctuated by bursts. This
//! module provides a common [`Workload`] trait over trace generators, and
//! [`AzureWorkload`], a synthetic generator reproducing those three properties,
//! alongside the original [`RateProfile`] trace.

//!
//! Every request additionally names the *object* it reads — serverless
//! functions are storage-triggered in the paper's model, so the trace carries
//! data identities, not just function identities. [`ObjectPopulation`]
//! describes each function's object working set (Zipf-skewed popularity over
//! a bounded set of objects, mirroring the skew of function popularity
//! itself) and [`ObjectCatalog`] stamps deterministic object ids and sizes
//! onto requests. Object assignment is hash-based, not RNG-stream-based, so
//! adding data identities leaves arrival sequences bit-compatible with
//! earlier trace versions.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use dscs_core::benchmarks::Benchmark;
use dscs_simcore::dist::{PoissonArrivals, ZipfIndex};
use dscs_simcore::quantity::Bytes;
use dscs_simcore::rng::DeterministicRng;
use dscs_simcore::time::{SimDuration, SimTime};

use crate::at_scale::SweepScale;
use crate::ingest::{IngestError, TraceFileWorkload};
use crate::trace::{RateProfile, TraceRequest};

/// Errors produced by workload validation and generation.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// A rate profile has no segments.
    EmptyProfile,
    /// A rate is negative, NaN or infinite.
    InvalidRate {
        /// Index of the offending segment (or 0 for scalar-rate workloads).
        segment: usize,
        /// The offending rate value.
        rate: f64,
    },
    /// A segment (or the whole workload) has zero duration.
    ZeroDuration {
        /// Index of the offending segment (or 0 for scalar-horizon workloads).
        segment: usize,
    },
    /// A named scalar parameter is out of its documented range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::EmptyProfile => write!(f, "rate profile has no segments"),
            WorkloadError::InvalidRate { segment, rate } => {
                write!(f, "segment {segment} has invalid rate {rate}")
            }
            WorkloadError::ZeroDuration { segment } => {
                write!(f, "segment {segment} has zero duration")
            }
            WorkloadError::InvalidParameter { name, value } => {
                write!(f, "parameter {name} = {value} is out of range")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// The per-function object working set a workload's requests read from.
///
/// Each function owns `objects_per_function` distinct objects; a request
/// reads one of them, drawn Zipf(`skew`) so a function's hot objects dominate
/// its traffic the same way hot functions dominate the cluster's. Object
/// sizes are deterministic per (function, object): `base_size` scaled by a
/// hashed number of doublings, spanning the serverless payload range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectPopulation {
    /// Distinct objects per function (>= 1).
    pub objects_per_function: u32,
    /// Zipf skew over a function's objects (0 = uniform).
    pub skew: f64,
    /// Smallest object size.
    pub base_size: Bytes,
    /// Object sizes span `base_size` to `base_size << size_doublings`.
    pub size_doublings: u32,
}

impl Default for ObjectPopulation {
    fn default() -> Self {
        ObjectPopulation {
            objects_per_function: 32,
            skew: 1.1,
            // 256 KiB .. 8 MiB: the image/audio/text payload range of the
            // benchmark suite (AWS caps serverless payloads at ~20 MB).
            base_size: Bytes::from_kib(256),
            size_doublings: 5,
        }
    }
}

impl ObjectPopulation {
    /// Checks the population parameters, returning the first violation found.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.objects_per_function == 0 {
            return Err(WorkloadError::InvalidParameter {
                name: "objects_per_function",
                value: 0.0,
            });
        }
        if !self.skew.is_finite() || self.skew < 0.0 {
            return Err(WorkloadError::InvalidParameter {
                name: "object_skew",
                value: self.skew,
            });
        }
        if self.base_size == Bytes::ZERO {
            return Err(WorkloadError::InvalidParameter {
                name: "base_size",
                value: 0.0,
            });
        }
        // The largest object is base_size << size_doublings; it must fit a
        // u64 or size_of would overflow the shift.
        if self.size_doublings >= 64
            || self
                .base_size
                .as_u64()
                .checked_mul(1u64 << self.size_doublings)
                .is_none()
        {
            return Err(WorkloadError::InvalidParameter {
                name: "size_doublings",
                value: f64::from(self.size_doublings),
            });
        }
        Ok(())
    }
}

/// SplitMix64 finalizer, used as a stateless hash so object assignment never
/// consumes from the trace generator's RNG stream.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Salt separating object-identity hashing from size hashing.
const OBJECT_SALT: u64 = 0x0B1E_C7ED_5EED_0001;
const SIZE_SALT: u64 = 0x0B1E_C7ED_5EED_0002;

/// Deterministic object assignment derived from an [`ObjectPopulation`]:
/// maps (function, request id) to the object the request reads and
/// (function, object) to that object's size and store key.
#[derive(Debug, Clone)]
pub struct ObjectCatalog {
    population: ObjectPopulation,
    zipf: ZipfIndex,
}

impl ObjectCatalog {
    /// Builds the catalog.
    ///
    /// # Panics
    /// Panics if the population fails [`ObjectPopulation::validate`].
    pub fn new(population: ObjectPopulation) -> Self {
        population
            .validate()
            .unwrap_or_else(|err| panic!("invalid object population: {err}"));
        ObjectCatalog {
            population,
            zipf: ZipfIndex::new(population.objects_per_function as usize, population.skew),
        }
    }

    /// The population this catalog realises.
    pub fn population(&self) -> ObjectPopulation {
        self.population
    }

    /// The object a request of `function` with trace id `request_id` reads:
    /// a Zipf draw over the function's objects, derived by hashing rather
    /// than sampling so the caller's RNG stream is untouched.
    pub fn object_for(&self, function: u32, request_id: u64) -> u32 {
        let h = mix64(mix64(OBJECT_SALT ^ u64::from(function)).wrapping_add(request_id));
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.zipf.rank_of(u) as u32
    }

    /// The deterministic size of `(function, object)`.
    pub fn size_of(&self, function: u32, object: u32) -> Bytes {
        let h = mix64(SIZE_SALT ^ (u64::from(function) << 32) ^ u64::from(object));
        let doublings = h % u64::from(self.population.size_doublings + 1);
        Bytes::new(self.population.base_size.as_u64() << doublings)
    }

    /// The store key of `(function, object)` — the name the object lives
    /// under in the cluster's [`dscs_storage::object_store::ObjectStore`].
    pub fn key(function: u32, object: u32) -> String {
        format!("f{function}/o{object}")
    }
}

/// A request-trace generator.
///
/// Implementations must be deterministic: the same seed (via the caller's
/// [`DeterministicRng`]) must produce the identical trace, so at-scale runs
/// are byte-for-byte reproducible.
pub trait Workload {
    /// Short machine-readable name used in reports (`"bursty"`, `"azure"`, ...).
    fn name(&self) -> &'static str;

    /// Total duration the generated trace covers.
    fn horizon(&self) -> SimDuration;

    /// The object working set the workload's requests read from. The default
    /// is the suite-wide [`ObjectPopulation::default`].
    fn objects(&self) -> ObjectPopulation {
        ObjectPopulation::default()
    }

    /// Checks the workload parameters, returning the first violation found.
    fn validate(&self) -> Result<(), WorkloadError>;

    /// Generates the request trace, validating parameters first.
    fn generate(&self, rng: &mut DeterministicRng) -> Result<Vec<TraceRequest>, WorkloadError>;
}

/// Azure-functions-style synthetic workload.
///
/// `functions` distinct serverless functions share the cluster. Popularity
/// follows a Zipf law with exponent `popularity_skew`; each function is bound
/// round-robin to one of the eight benchmark applications (which determines
/// its service time and container image). The aggregate arrival rate is
/// `base_rps` modulated by a sinusoidal diurnal cycle and by random burst
/// episodes; arrivals inside each modulation step are Poisson.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AzureWorkload {
    /// Number of distinct functions (>= 1).
    pub functions: u32,
    /// Zipf popularity exponent (0 = uniform; ~1 matches the Azure traces).
    pub popularity_skew: f64,
    /// Mean aggregate request rate in requests/second.
    pub base_rps: f64,
    /// Trace duration.
    pub horizon: SimDuration,
    /// Peak-to-mean amplitude of the diurnal cycle, in `[0, 1)`.
    pub diurnal_amplitude: f64,
    /// Period of the diurnal cycle.
    pub diurnal_period: SimDuration,
    /// Rate multiplier during a burst episode (>= 1).
    pub burst_factor: f64,
    /// Fraction of modulation steps that are burst episodes, in `[0, 1]`.
    pub burst_fraction: f64,
    /// Width of one rate-modulation step (arrivals are Poisson within a step).
    pub step: SimDuration,
}

impl Default for AzureWorkload {
    fn default() -> Self {
        AzureWorkload {
            functions: 64,
            popularity_skew: 1.0,
            base_rps: 1200.0,
            horizon: SimDuration::from_secs(20 * 60),
            diurnal_amplitude: 0.4,
            diurnal_period: SimDuration::from_secs(10 * 60),
            burst_factor: 2.0,
            burst_fraction: 0.1,
            step: SimDuration::from_secs(10),
        }
    }
}

impl AzureWorkload {
    /// A short, light configuration for quick runs and CI smoke tests.
    pub fn quick() -> Self {
        AzureWorkload {
            functions: 24,
            base_rps: 600.0,
            horizon: SimDuration::from_secs(120),
            diurnal_period: SimDuration::from_secs(60),
            ..AzureWorkload::default()
        }
    }

    /// The benchmark application function `f` is bound to (round-robin).
    pub fn benchmark_of(function: u32) -> Benchmark {
        Benchmark::ALL[function as usize % Benchmark::ALL.len()]
    }

    /// The instantaneous rate multiplier at `t` (diurnal component only).
    fn diurnal(&self, t: SimDuration) -> f64 {
        let phase = t.as_secs_f64() / self.diurnal_period.as_secs_f64();
        1.0 + self.diurnal_amplitude * (std::f64::consts::TAU * phase).sin()
    }
}

impl Workload for AzureWorkload {
    fn name(&self) -> &'static str {
        "azure"
    }

    fn horizon(&self) -> SimDuration {
        self.horizon
    }

    fn validate(&self) -> Result<(), WorkloadError> {
        if self.functions == 0 {
            return Err(WorkloadError::InvalidParameter {
                name: "functions",
                value: 0.0,
            });
        }
        if !self.popularity_skew.is_finite() || self.popularity_skew < 0.0 {
            return Err(WorkloadError::InvalidParameter {
                name: "popularity_skew",
                value: self.popularity_skew,
            });
        }
        if !self.base_rps.is_finite() || self.base_rps <= 0.0 {
            return Err(WorkloadError::InvalidRate {
                segment: 0,
                rate: self.base_rps,
            });
        }
        if self.horizon.is_zero() {
            return Err(WorkloadError::ZeroDuration { segment: 0 });
        }
        if !(0.0..1.0).contains(&self.diurnal_amplitude) {
            return Err(WorkloadError::InvalidParameter {
                name: "diurnal_amplitude",
                value: self.diurnal_amplitude,
            });
        }
        if self.diurnal_period.is_zero() {
            return Err(WorkloadError::InvalidParameter {
                name: "diurnal_period",
                value: 0.0,
            });
        }
        if !self.burst_factor.is_finite() || self.burst_factor < 1.0 {
            return Err(WorkloadError::InvalidParameter {
                name: "burst_factor",
                value: self.burst_factor,
            });
        }
        if !(0.0..=1.0).contains(&self.burst_fraction) {
            return Err(WorkloadError::InvalidParameter {
                name: "burst_fraction",
                value: self.burst_fraction,
            });
        }
        if self.step.is_zero() || self.step > self.horizon {
            return Err(WorkloadError::InvalidParameter {
                name: "step",
                value: self.step.as_secs_f64(),
            });
        }
        Ok(())
    }

    fn generate(&self, rng: &mut DeterministicRng) -> Result<Vec<TraceRequest>, WorkloadError> {
        self.validate()?;
        let zipf = ZipfIndex::new(self.functions as usize, self.popularity_skew);
        let catalog = ObjectCatalog::new(self.objects());
        let mut requests = Vec::new();
        let mut offset = SimDuration::ZERO;
        let mut id = 0u64;
        while offset < self.horizon {
            let step = self.step.min(self.horizon - offset);
            let burst = if rng.bernoulli(self.burst_fraction) {
                self.burst_factor
            } else {
                1.0
            };
            let rate = self.base_rps * self.diurnal(offset) * burst;
            let arrivals = PoissonArrivals::new(rate).arrivals_until(step, rng);
            for t in arrivals {
                let function = zipf.sample(rng) as u32;
                let object = catalog.object_for(function, id);
                requests.push(TraceRequest {
                    id,
                    arrival: SimTime::ZERO + offset + t,
                    benchmark: AzureWorkload::benchmark_of(function),
                    function,
                    object,
                    object_bytes: catalog.size_of(function, object),
                });
                id += 1;
            }
            offset += step;
        }
        Ok(requests)
    }
}

/// The RNG stream a [`WorkloadSpec::Bursty`] trace is generated from: fork 1
/// of a master seeded with the spec's seed (matching the sweep's historical
/// stream assignment; fork 2 is the azure stream).
pub fn bursty_generation_rng(seed: u64) -> DeterministicRng {
    DeterministicRng::seeded(seed).fork(1)
}

/// The RNG stream a [`WorkloadSpec::Azure`] trace is generated from: fork 2
/// of a master seeded with the spec's seed. The `generate-trace` CLI buckets
/// exactly this stream into CSV, so a trace file generated at seed `s`
/// carries the same invocations the sweep's `azure` workload offers at
/// seed `s`.
pub fn azure_generation_rng(seed: u64) -> DeterministicRng {
    DeterministicRng::seeded(seed).fork(2)
}

/// Salt seeding the within-minute jitter stream trace-file expansion draws
/// from (forked by day, so every day of a file jitters independently).
const TRACE_JITTER_SALT: u64 = 0x7F11_E000_5EED_0001;

/// Errors produced while validating or realizing a [`WorkloadSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpecError {
    /// A CLI spec string named a workload kind that does not exist.
    UnknownKind {
        /// The unrecognised spec string.
        kind: String,
    },
    /// A `trace:<path>@<day>` spec carried a day that is not a positive
    /// integer.
    InvalidDay {
        /// The offending day text.
        value: String,
    },
    /// Reading or parsing a trace file failed.
    Ingest(IngestError),
    /// The underlying workload rejected its parameters or failed to expand.
    Workload(WorkloadError),
    /// An inline spec carried an empty trace.
    EmptyInline,
}

impl fmt::Display for WorkloadSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadSpecError::UnknownKind { kind } => write!(
                f,
                "unknown workload spec '{kind}' (expected azure, bursty or trace:<path>[@<day>])"
            ),
            WorkloadSpecError::InvalidDay { value } => {
                write!(f, "'{value}' is not a valid trace day (expected 1..=14)")
            }
            WorkloadSpecError::Ingest(err) => write!(f, "{err}"),
            WorkloadSpecError::Workload(err) => write!(f, "{err}"),
            WorkloadSpecError::EmptyInline => write!(f, "inline workload carries no requests"),
        }
    }
}

impl std::error::Error for WorkloadSpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadSpecError::Ingest(err) => Some(err),
            WorkloadSpecError::Workload(err) => Some(err),
            _ => None,
        }
    }
}

impl From<IngestError> for WorkloadSpecError {
    fn from(err: IngestError) -> Self {
        WorkloadSpecError::Ingest(err)
    }
}

impl From<WorkloadError> for WorkloadSpecError {
    fn from(err: WorkloadError) -> Self {
        WorkloadSpecError::Workload(err)
    }
}

/// A workload, realized: the generated trace plus the labels reports carry.
#[derive(Debug, Clone, PartialEq)]
pub struct RealizedWorkload {
    /// Workload name (`"bursty"`, `"azure"`, `"trace"`, ...).
    pub name: String,
    /// Where the trace came from: `"synthetic"` for the generators,
    /// `"trace-file:<file>"` for ingested files. Sweep-cell identity (and
    /// the perf gate's cell key) includes this, so a trace-file cell is
    /// never diffed against a synthetic one.
    pub source: String,
    /// The request trace, shared across every cell that replays it.
    pub trace: Arc<Vec<TraceRequest>>,
    /// Trace horizon in seconds.
    pub horizon_s: f64,
}

/// A declarative workload selection: *what* to replay, not a pre-generated
/// trace. Specs are data — they name their own scale and seed — so a
/// [`crate::at_scale::SweepSpec`] can put workload source on an axis, the
/// CLI can parse one from `--workload azure|bursty|trace:<path>[@<day>]`,
/// and [`crate::experiment::ExperimentBuilder::workload_spec`] can realize
/// one directly into an experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// The paper's bursty [`RateProfile`] at a sweep scale.
    Bursty {
        /// Experiment size (governs trace compression).
        scale: SweepScale,
        /// Master seed the generation stream forks from.
        seed: u64,
    },
    /// The synthetic [`AzureWorkload`] at a sweep scale.
    Azure {
        /// Experiment size (governs the workload configuration).
        scale: SweepScale,
        /// Master seed the generation stream forks from.
        seed: u64,
    },
    /// An Azure-schema invocation trace file, ingested via
    /// [`TraceFileWorkload`].
    TraceFile {
        /// Path to the CSV file.
        path: String,
        /// 1-based day window within the file (a dataset day spans 1440
        /// minute columns).
        day: u32,
    },
    /// A pre-generated trace supplied in memory, with caller-chosen labels.
    Inline {
        /// Workload name for reports.
        name: String,
        /// Source label for reports and cell identity (see
        /// [`RealizedWorkload::source`]).
        source: String,
        /// Trace horizon in seconds.
        horizon_s: f64,
        /// The request trace.
        trace: Arc<Vec<TraceRequest>>,
    },
}

impl WorkloadSpec {
    /// The bursty profile a given sweep scale replays.
    pub fn bursty_at(scale: SweepScale) -> RateProfile {
        match scale {
            SweepScale::Smoke => RateProfile::paper_bursty().compressed(100.0),
            SweepScale::Quick => RateProfile::paper_bursty().compressed(16.0),
            SweepScale::Full => RateProfile::paper_bursty(),
            // Six back-to-back repetitions of the paper's 20-minute profile:
            // two simulated hours at the paper's rates, ~10⁷ arrivals.
            SweepScale::Large => {
                let day = RateProfile::paper_bursty();
                RateProfile {
                    segments: day
                        .segments
                        .iter()
                        .cloned()
                        .cycle()
                        .take(day.segments.len() * 6)
                        .collect(),
                }
            }
        }
    }

    /// The synthetic azure configuration a given sweep scale replays.
    pub fn azure_at(scale: SweepScale) -> AzureWorkload {
        match scale {
            SweepScale::Smoke => AzureWorkload {
                functions: 16,
                base_rps: 200.0,
                horizon: SimDuration::from_secs(20),
                diurnal_period: SimDuration::from_secs(10),
                step: SimDuration::from_secs(2),
                ..AzureWorkload::default()
            },
            SweepScale::Quick => AzureWorkload::quick(),
            SweepScale::Full => AzureWorkload::default(),
            // The 10⁷-invocation scale the rack-parallel engine exists for:
            // 10⁵ functions over two simulated days with a true diurnal
            // period (~60 rps × 48 h ≈ 1.0 × 10⁷ invocations).
            SweepScale::Large => AzureWorkload {
                functions: 100_000,
                base_rps: 60.0,
                horizon: SimDuration::from_secs(48 * 3600),
                diurnal_period: SimDuration::from_secs(24 * 3600),
                step: SimDuration::from_secs(60),
                ..AzureWorkload::default()
            },
        }
    }

    /// Parses a CLI workload spec: `azure`, `bursty`, or
    /// `trace:<path>[@<day>]`. Synthetic kinds adopt the given sweep scale
    /// and seed; `day` defaults to 1.
    pub fn parse(text: &str, scale: SweepScale, seed: u64) -> Result<Self, WorkloadSpecError> {
        match text {
            "azure" => Ok(WorkloadSpec::Azure { scale, seed }),
            "bursty" => Ok(WorkloadSpec::Bursty { scale, seed }),
            _ => {
                let Some(rest) = text.strip_prefix("trace:") else {
                    return Err(WorkloadSpecError::UnknownKind { kind: text.into() });
                };
                let (path, day) = match rest.rsplit_once('@') {
                    Some((path, day_text)) => {
                        let day = day_text.parse::<u32>().ok().filter(|&d| d > 0).ok_or(
                            WorkloadSpecError::InvalidDay {
                                value: day_text.into(),
                            },
                        )?;
                        (path, day)
                    }
                    None => (rest, 1),
                };
                if path.is_empty() {
                    return Err(WorkloadSpecError::UnknownKind { kind: text.into() });
                }
                Ok(WorkloadSpec::TraceFile {
                    path: path.into(),
                    day,
                })
            }
        }
    }

    /// Realizes the spec into a trace plus report labels. Generation is a
    /// pure function of the spec: synthetic kinds draw their dedicated
    /// streams ([`bursty_generation_rng`], [`azure_generation_rng`]) from
    /// their own seed; trace files expand with a day-forked jitter stream,
    /// so the same file and day always reproduce the same arrivals.
    pub fn realize(&self) -> Result<RealizedWorkload, WorkloadSpecError> {
        match self {
            WorkloadSpec::Bursty { scale, seed } => {
                let profile = Self::bursty_at(*scale);
                let trace = Workload::generate(&profile, &mut bursty_generation_rng(*seed))?;
                Ok(RealizedWorkload {
                    name: Workload::name(&profile).into(),
                    source: "synthetic".into(),
                    horizon_s: Workload::horizon(&profile).as_secs_f64(),
                    trace: Arc::new(trace),
                })
            }
            WorkloadSpec::Azure { scale, seed } => {
                let workload = Self::azure_at(*scale);
                let trace = workload.generate(&mut azure_generation_rng(*seed))?;
                Ok(RealizedWorkload {
                    name: workload.name().into(),
                    source: "synthetic".into(),
                    horizon_s: workload.horizon().as_secs_f64(),
                    trace: Arc::new(trace),
                })
            }
            WorkloadSpec::TraceFile { path, day } => {
                let workload = TraceFileWorkload::from_csv_path(path, *day)?;
                let mut jitter = DeterministicRng::seeded(TRACE_JITTER_SALT).fork(u64::from(*day));
                let trace = workload.generate(&mut jitter)?;
                Ok(RealizedWorkload {
                    name: workload.name().into(),
                    source: format!("trace-file:{}", workload.source),
                    horizon_s: workload.horizon().as_secs_f64(),
                    trace: Arc::new(trace),
                })
            }
            WorkloadSpec::Inline {
                name,
                source,
                horizon_s,
                trace,
            } => {
                if trace.is_empty() {
                    return Err(WorkloadSpecError::EmptyInline);
                }
                Ok(RealizedWorkload {
                    name: name.clone(),
                    source: source.clone(),
                    horizon_s: *horizon_s,
                    trace: trace.clone(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_workload_validates() {
        assert_eq!(AzureWorkload::default().validate(), Ok(()));
        assert_eq!(AzureWorkload::quick().validate(), Ok(()));
    }

    #[test]
    fn invalid_parameters_are_rejected_with_typed_errors() {
        let mut w = AzureWorkload::quick();
        w.base_rps = f64::NAN;
        assert!(matches!(
            w.validate(),
            Err(WorkloadError::InvalidRate { rate, .. }) if rate.is_nan()
        ));

        let mut w = AzureWorkload::quick();
        w.base_rps = -5.0;
        assert!(matches!(
            w.validate(),
            Err(WorkloadError::InvalidRate { .. })
        ));

        let mut w = AzureWorkload::quick();
        w.functions = 0;
        assert!(matches!(
            w.validate(),
            Err(WorkloadError::InvalidParameter {
                name: "functions",
                ..
            })
        ));

        let mut w = AzureWorkload::quick();
        w.horizon = SimDuration::ZERO;
        assert_eq!(
            w.validate(),
            Err(WorkloadError::ZeroDuration { segment: 0 })
        );

        let mut w = AzureWorkload::quick();
        w.burst_factor = 0.5;
        assert!(matches!(
            w.validate(),
            Err(WorkloadError::InvalidParameter {
                name: "burst_factor",
                ..
            })
        ));

        let mut w = AzureWorkload::quick();
        w.diurnal_amplitude = 1.0;
        assert!(w.validate().is_err(), "amplitude 1.0 allows zero rates");
    }

    #[test]
    fn generation_fails_fast_on_invalid_parameters() {
        let mut w = AzureWorkload::quick();
        w.base_rps = f64::INFINITY;
        let err = w
            .generate(&mut DeterministicRng::seeded(1))
            .expect_err("must reject");
        assert!(matches!(err, WorkloadError::InvalidRate { .. }));
    }

    #[test]
    fn trace_is_sorted_bounded_and_plausible() {
        let w = AzureWorkload::quick();
        let trace = w.generate(&mut DeterministicRng::seeded(2)).expect("valid");
        assert!(trace.windows(2).all(|p| p[0].arrival <= p[1].arrival));
        assert!(trace
            .iter()
            .all(|r| r.arrival < SimTime::ZERO + w.horizon()));
        // ~600 rps over 120 s, modulated: within a broad band.
        let expected = w.base_rps * w.horizon.as_secs_f64();
        let n = trace.len() as f64;
        assert!(n > expected * 0.5 && n < expected * 2.0, "len {n}");
        // Function ids map consistently to benchmarks.
        assert!(trace
            .iter()
            .all(|r| r.benchmark == AzureWorkload::benchmark_of(r.function)));
    }

    #[test]
    fn popularity_is_skewed() {
        let w = AzureWorkload::quick();
        let trace = w.generate(&mut DeterministicRng::seeded(3)).expect("valid");
        let count = |f: u32| trace.iter().filter(|r| r.function == f).count();
        let hottest = count(0);
        let coldest = count(w.functions - 1);
        assert!(
            hottest > 4 * coldest.max(1),
            "hottest {hottest} vs coldest {coldest}"
        );
    }

    #[test]
    fn object_population_rejects_overflowing_sizes() {
        assert_eq!(ObjectPopulation::default().validate(), Ok(()));
        let oversized = ObjectPopulation {
            size_doublings: 64,
            ..ObjectPopulation::default()
        };
        assert!(matches!(
            oversized.validate(),
            Err(WorkloadError::InvalidParameter {
                name: "size_doublings",
                ..
            })
        ));
        // Shift in range but the product overflows u64.
        let huge_base = ObjectPopulation {
            base_size: Bytes::from_gib(1 << 30),
            size_doublings: 4,
            ..ObjectPopulation::default()
        };
        assert!(matches!(
            huge_base.validate(),
            Err(WorkloadError::InvalidParameter {
                name: "size_doublings",
                ..
            })
        ));
        let zero_objects = ObjectPopulation {
            objects_per_function: 0,
            ..ObjectPopulation::default()
        };
        assert!(zero_objects.validate().is_err());
    }

    #[test]
    fn object_catalog_is_deterministic_and_in_range() {
        let population = ObjectPopulation::default();
        let catalog = ObjectCatalog::new(population);
        let largest = Bytes::new(population.base_size.as_u64() << population.size_doublings);
        for id in 0..2000u64 {
            let object = catalog.object_for(3, id);
            assert!(object < population.objects_per_function);
            assert_eq!(object, catalog.object_for(3, id), "pure function of id");
            let size = catalog.size_of(3, object);
            assert!(size >= population.base_size && size <= largest, "{size}");
        }
        // Zipf skew: the hottest object dominates a uniform share.
        let hot = (0..4000u64)
            .filter(|&id| catalog.object_for(7, id) == 0)
            .count();
        assert!(
            hot > 4000 / population.objects_per_function as usize * 4,
            "hot object drew {hot} of 4000"
        );
        assert_eq!(ObjectCatalog::key(2, 9), "f2/o9");
    }

    #[test]
    fn same_seed_same_trace() {
        let w = AzureWorkload::quick();
        let a = w.generate(&mut DeterministicRng::seeded(4)).expect("valid");
        let b = w.generate(&mut DeterministicRng::seeded(4)).expect("valid");
        assert_eq!(a, b);
        let c = w.generate(&mut DeterministicRng::seeded(5)).expect("valid");
        assert_ne!(a.len(), c.len());
    }
}
