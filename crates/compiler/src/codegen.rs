//! Code generation: lowering fusion groups into DSA instruction streams.
//!
//! Each GEMM-class operator is lowered to its implicit-GEMM dimensions
//! (convolutions via im2col), tiled for the target configuration, and emitted
//! as interleaved `LoadTile`/`GemmTile` pairs so the executor can overlap DMA
//! with compute. Vector-class operators become `VectorTile`s; fused consumers
//! read their producer's output from the shared on-chip buffer so only the
//! group's external inputs and final output travel over DMA.

use serde::{Deserialize, Serialize};

use dscs_dsa::config::DsaConfig;
use dscs_dsa::isa::{Instruction, Program};
use dscs_nn::graph::Graph;
use dscs_nn::op::{Operator, OperatorClass};

use crate::fusion::{fuse, FusionGroup, FusionPolicy};
use crate::tiling::select_tiling;

/// The implicit-GEMM view of a GEMM-class operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GemmDims {
    /// Output rows.
    pub m: u64,
    /// Reduction depth.
    pub k: u64,
    /// Output columns.
    pub n: u64,
}

/// Lowers a GEMM-class operator to its implicit-GEMM dimensions.
///
/// Returns `None` for operators that are not GEMM-class.
pub fn gemm_dims(op: &Operator) -> Option<GemmDims> {
    match *op {
        Operator::MatMul { m, k, n, .. } => Some(GemmDims { m, k, n }),
        Operator::Conv2d {
            batch,
            in_channels,
            out_channels,
            in_h,
            in_w,
            kernel,
            stride,
            ..
        } => {
            let out_h = in_h.div_ceil(stride);
            let out_w = in_w.div_ceil(stride);
            Some(GemmDims {
                m: batch * out_h * out_w,
                k: in_channels * kernel * kernel,
                n: out_channels,
            })
        }
        Operator::DepthwiseConv2d {
            batch,
            channels,
            in_h,
            in_w,
            kernel,
            stride,
            ..
        } => {
            let out_h = in_h.div_ceil(stride);
            let out_w = in_w.div_ceil(stride);
            Some(GemmDims {
                m: batch * out_h * out_w,
                k: kernel * kernel,
                n: channels,
            })
        }
        _ => None,
    }
}

/// Compiler options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompileOptions {
    /// Whether to fuse vector consumers into their GEMM producers.
    pub fusion: FusionPolicy,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            fusion: FusionPolicy::Enabled,
        }
    }
}

/// Compiles a model graph into a DSA program for `config`.
///
/// ```
/// use dscs_compiler::codegen::compile;
/// use dscs_dsa::config::DsaConfig;
/// use dscs_nn::zoo::{Model, ModelKind};
///
/// let model = Model::build(ModelKind::ResNet50);
/// let program = compile(model.graph(), &DsaConfig::paper_optimal(), Default::default());
/// assert!(program.total_ops() >= model.flops());
/// ```
pub fn compile(graph: &Graph, config: &DsaConfig, options: CompileOptions) -> Program {
    let groups = fuse(graph, options.fusion);
    let mut program = Program::new(graph.name());
    for group in &groups {
        emit_group(graph, config, group, &mut program);
        program.push(Instruction::Sync);
    }
    program
}

fn emit_group(graph: &Graph, config: &DsaConfig, group: &FusionGroup, program: &mut Program) {
    for (pos, &node_id) in group.nodes.iter().enumerate() {
        let node = graph.node(node_id);
        let is_first = pos == 0;
        let is_last = pos + 1 == group.len();
        match node.op.class() {
            OperatorClass::Gemm => {
                let dims = gemm_dims(&node.op).expect("GEMM-class operators lower to GEMM dims");
                emit_gemm(config, dims, is_first, is_last, &node.op, program);
            }
            OperatorClass::Vector => {
                // External input only if this op starts the group (otherwise the
                // producer's output is already on-chip).
                if is_first {
                    program.push(Instruction::load_tile(node.op.input_bytes().as_u64()));
                }
                let elements = node.op.output_bytes().as_u64().max(1);
                let ops_per_element = (node.op.flops() / elements.max(1)).max(1);
                program.push(Instruction::vector_tile(elements, ops_per_element));
                if is_last {
                    program.push(Instruction::store_tile(node.op.output_bytes().as_u64()));
                }
            }
            OperatorClass::DataMovement => {
                // Pure layout changes stay within the scratchpad when fused; when
                // standalone they are a DMA round trip.
                if is_first && is_last {
                    program.push(Instruction::load_tile(node.op.input_bytes().as_u64()));
                    program.push(Instruction::store_tile(node.op.output_bytes().as_u64()));
                }
            }
        }
    }
}

fn emit_gemm(
    config: &DsaConfig,
    dims: GemmDims,
    load_input: bool,
    store_output: bool,
    op: &Operator,
    program: &mut Program,
) {
    let tiling = select_tiling(config, dims.m, dims.k, dims.n);
    let m_tiles = dims.m.div_ceil(tiling.tile_m);
    let k_tiles = dims.k.div_ceil(tiling.tile_k);
    let n_tiles = dims.n.div_ceil(tiling.tile_n);

    // Embedding-style GEMMs never materialise the full weight matrix; for
    // ordinary GEMMs the weights stream tile by tile. We scale the per-tile
    // weight bytes so the total matches the operator's real weight footprint
    // (conv weights are much smaller than the im2col K x N product).
    let weight_total = op.weight_bytes().as_u64();
    let weight_tile = (weight_total / (k_tiles * n_tiles).max(1)).max(1);
    let input_total = if load_input {
        op.input_bytes().as_u64()
    } else {
        0
    };
    let input_tile = (input_total / (m_tiles * k_tiles).max(1)).max(1);
    let output_total = if store_output {
        op.output_bytes().as_u64()
    } else {
        0
    };
    let output_tile = (output_total / (m_tiles * n_tiles).max(1)).max(1);

    for _n in 0..n_tiles {
        for _k in 0..k_tiles {
            program.push(Instruction::load_tile(weight_tile));
            for _m in 0..m_tiles {
                if load_input {
                    program.push(Instruction::load_tile(input_tile));
                }
                let tile_m = tiling.tile_m.min(dims.m);
                let tile_k = tiling.tile_k.min(dims.k);
                let tile_n = tiling.tile_n.min(dims.n);
                program.push(Instruction::gemm_tile(tile_m, tile_k, tile_n));
            }
        }
        if store_output {
            for _m in 0..m_tiles {
                program.push(Instruction::store_tile(output_tile));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscs_dsa::executor::Executor;
    use dscs_nn::tensor::DType;
    use dscs_nn::zoo::{Model, ModelKind};

    #[test]
    fn conv_lowers_to_implicit_gemm() {
        let op = Operator::Conv2d {
            batch: 1,
            in_channels: 64,
            out_channels: 128,
            in_h: 56,
            in_w: 56,
            kernel: 3,
            stride: 2,
            dtype: DType::Int8,
        };
        let dims = gemm_dims(&op).expect("conv is GEMM-class");
        assert_eq!(dims.m, 28 * 28);
        assert_eq!(dims.k, 64 * 9);
        assert_eq!(dims.n, 128);
        // Implicit GEMM preserves the FLOP count.
        assert_eq!(2 * dims.m * dims.k * dims.n, op.flops());
    }

    #[test]
    fn vector_ops_do_not_lower_to_gemm() {
        let op = Operator::Softmax {
            rows: 4,
            cols: 10,
            dtype: DType::Fp16,
        };
        assert!(gemm_dims(&op).is_none());
    }

    #[test]
    fn compiled_program_covers_model_flops() {
        let model = Model::build(ModelKind::ResNet50);
        let program = compile(
            model.graph(),
            &DsaConfig::paper_optimal(),
            CompileOptions::default(),
        );
        // Tiling pads dimensions, so the program does at least the model's work
        // but not an unreasonable amount more.
        let ratio = program.total_ops() as f64 / model.flops() as f64;
        assert!((1.0..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fusion_reduces_dma_traffic() {
        let model = Model::build(ModelKind::VitBase);
        let cfg = DsaConfig::paper_optimal();
        let fused = compile(model.graph(), &cfg, CompileOptions::default());
        let unfused = compile(
            model.graph(),
            &cfg,
            CompileOptions {
                fusion: FusionPolicy::Disabled,
            },
        );
        assert!(fused.total_dma_bytes().as_u64() < unfused.total_dma_bytes().as_u64());
    }

    #[test]
    fn all_models_compile_and_execute() {
        let cfg = DsaConfig::paper_optimal();
        for kind in ModelKind::ALL {
            let model = Model::build(kind);
            let program = compile(model.graph(), &cfg, CompileOptions::default());
            assert!(!program.is_empty(), "{kind} compiled to empty program");
            let report = Executor::new(cfg).run(&program);
            assert!(report.total_cycles > 0, "{kind} has zero cycles");
        }
    }

    #[test]
    fn weight_traffic_tracks_model_size() {
        let model = Model::build(ModelKind::BertBase);
        let cfg = DsaConfig::paper_optimal();
        let program = compile(model.graph(), &cfg, CompileOptions::default());
        let weights = model.weight_bytes().as_u64();
        let dma = program.total_dma_bytes().as_u64();
        // DMA must at least stream the weights once, and with batch-1 reuse the
        // total traffic should stay within a small multiple of the weights.
        assert!(dma >= weights, "dma {dma} < weights {weights}");
        assert!(dma < 4 * weights, "dma {dma} vs weights {weights}");
    }

    #[test]
    fn bigger_batch_amortises_weight_traffic() {
        let cfg = DsaConfig::paper_optimal();
        let b1 = Model::build_with_batch(ModelKind::BertBase, 1);
        let b8 = Model::build_with_batch(ModelKind::BertBase, 8);
        let p1 = compile(b1.graph(), &cfg, CompileOptions::default());
        let p8 = compile(b8.graph(), &cfg, CompileOptions::default());
        let traffic_per_item_b1 = p1.total_dma_bytes().as_f64();
        let traffic_per_item_b8 = p8.total_dma_bytes().as_f64() / 8.0;
        assert!(traffic_per_item_b8 < traffic_per_item_b1);
    }

    #[test]
    fn larger_array_executes_fewer_but_bigger_tiles() {
        let model = Model::build(ModelKind::ResNet50);
        let small = DsaConfig::square(
            32,
            dscs_simcore::quantity::Bytes::from_mib(1).as_u64(),
            dscs_dsa::config::MemoryKind::Ddr5,
            dscs_dsa::config::TechnologyNode::Nm45,
        );
        let large = DsaConfig::paper_optimal_45nm();
        let p_small = compile(model.graph(), &small, CompileOptions::default());
        let p_large = compile(model.graph(), &large, CompileOptions::default());
        assert!(p_large.gemm_tile_count() <= p_small.gemm_tile_count());
    }
}
