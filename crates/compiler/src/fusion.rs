//! Operator fusion.
//!
//! The paper's compiler front-end performs operator fusion "to minimize
//! off-chip data movement": a GEMM-class operator and the chain of vector-class
//! operators that consume its output (bias add, batch-norm, activation,
//! residual add, layer-norm, ...) execute as one group, keeping the
//! intermediate activations in the shared multi-bank output buffer instead of
//! round-tripping them through the drive DRAM.
//!
//! A fusion group therefore loads its external inputs once, computes the whole
//! chain, and stores only the final output.

use serde::{Deserialize, Serialize};

use dscs_nn::graph::{Graph, NodeId};
use dscs_nn::op::OperatorClass;

/// A group of operators executed back-to-back without spilling intermediates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FusionGroup {
    /// Nodes in the group, in topological order.
    pub nodes: Vec<NodeId>,
}

impl FusionGroup {
    /// The node whose output leaves the group (the last node).
    pub fn output(&self) -> NodeId {
        *self.nodes.last().expect("fusion groups are never empty")
    }

    /// The node the group starts with.
    pub fn anchor(&self) -> NodeId {
        self.nodes[0]
    }

    /// Number of operators in the group.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the group is empty (never true for groups built by [`fuse`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Fusion policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FusionPolicy {
    /// Fuse vector-class consumers into their GEMM-class producer (default).
    Enabled,
    /// Every operator is its own group (used by the fusion ablation bench).
    Disabled,
}

/// Partitions a graph into fusion groups.
///
/// Greedy, single-pass: a vector-class or data-movement operator is absorbed
/// into the current group when it is the unique consumer of the group's output
/// so far; GEMM-class operators and fan-out points start new groups.
///
/// ```
/// use dscs_compiler::fusion::{fuse, FusionPolicy};
/// use dscs_nn::zoo::{Model, ModelKind};
///
/// let model = Model::build(ModelKind::ResNet50);
/// let fused = fuse(model.graph(), FusionPolicy::Enabled);
/// let unfused = fuse(model.graph(), FusionPolicy::Disabled);
/// assert!(fused.len() < unfused.len());
/// ```
pub fn fuse(graph: &Graph, policy: FusionPolicy) -> Vec<FusionGroup> {
    if graph.is_empty() {
        return Vec::new();
    }
    if policy == FusionPolicy::Disabled {
        return graph
            .nodes()
            .iter()
            .map(|n| FusionGroup { nodes: vec![n.id] })
            .collect();
    }

    let consumers = graph.consumers();
    let mut groups: Vec<FusionGroup> = Vec::new();
    let mut current: Vec<NodeId> = Vec::new();

    for node in graph.nodes() {
        let class = node.op.class();
        let extends_current = !current.is_empty()
            && class != OperatorClass::Gemm
            && node.inputs.contains(current.last().expect("non-empty"))
            // Only absorb when the group's current output has no other consumer,
            // otherwise that value must be materialised anyway.
            && consumers[current.last().expect("non-empty").0].len() == 1;

        if extends_current {
            current.push(node.id);
        } else {
            if !current.is_empty() {
                groups.push(FusionGroup {
                    nodes: std::mem::take(&mut current),
                });
            }
            current.push(node.id);
        }
    }
    if !current.is_empty() {
        groups.push(FusionGroup { nodes: current });
    }
    groups
}

/// Bytes of intermediate activations that fusion keeps on-chip for a set of
/// groups: the outputs of every non-final node in each group.
pub fn saved_intermediate_bytes(graph: &Graph, groups: &[FusionGroup]) -> u64 {
    groups
        .iter()
        .flat_map(|g| g.nodes.iter().take(g.nodes.len().saturating_sub(1)))
        .map(|&id| graph.node(id).op.output_bytes().as_u64())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscs_nn::graph::GraphBuilder;
    use dscs_nn::op::{ActivationKind, ElementwiseKind, Operator};
    use dscs_nn::tensor::DType;
    use dscs_nn::zoo::{Model, ModelKind};

    fn sample_graph() -> Graph {
        let mut b = GraphBuilder::new("t");
        b.add_seq(
            "fc1",
            Operator::MatMul {
                m: 8,
                k: 16,
                n: 32,
                dtype: DType::Int8,
            },
        );
        b.add_seq(
            "relu",
            Operator::Activation {
                kind: ActivationKind::Relu,
                elements: 256,
                dtype: DType::Int8,
            },
        );
        b.add_seq(
            "fc2",
            Operator::MatMul {
                m: 8,
                k: 32,
                n: 4,
                dtype: DType::Int8,
            },
        );
        b.add_seq(
            "bias",
            Operator::Elementwise {
                kind: ElementwiseKind::Add,
                elements: 32,
                dtype: DType::Int8,
            },
        );
        b.build()
    }

    #[test]
    fn gemm_plus_activation_fuse() {
        let g = sample_graph();
        let groups = fuse(&g, FusionPolicy::Enabled);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 2);
        assert_eq!(groups[1].len(), 2);
        assert_eq!(groups[0].anchor(), NodeId(0));
        assert_eq!(groups[0].output(), NodeId(1));
    }

    #[test]
    fn disabled_policy_keeps_every_node_separate() {
        let g = sample_graph();
        let groups = fuse(&g, FusionPolicy::Disabled);
        assert_eq!(groups.len(), g.len());
        assert!(groups.iter().all(|g| g.len() == 1));
    }

    #[test]
    fn fusion_covers_every_node_exactly_once() {
        let model = Model::build(ModelKind::BertBase);
        let groups = fuse(model.graph(), FusionPolicy::Enabled);
        let mut covered: Vec<usize> = groups
            .iter()
            .flat_map(|g| g.nodes.iter().map(|n| n.0))
            .collect();
        covered.sort_unstable();
        let expected: Vec<usize> = (0..model.graph().len()).collect();
        assert_eq!(covered, expected);
    }

    #[test]
    fn fusion_reduces_group_count_on_real_models() {
        for kind in [
            ModelKind::ResNet50,
            ModelKind::VitBase,
            ModelKind::SsdMobileNet,
        ] {
            let model = Model::build(kind);
            let fused = fuse(model.graph(), FusionPolicy::Enabled).len();
            let unfused = fuse(model.graph(), FusionPolicy::Disabled).len();
            assert!(fused * 3 <= unfused * 2, "{kind}: {fused} vs {unfused}");
        }
    }

    #[test]
    fn saved_bytes_positive_when_fusing() {
        let g = sample_graph();
        let groups = fuse(&g, FusionPolicy::Enabled);
        assert!(saved_intermediate_bytes(&g, &groups) > 0);
        let single = fuse(&g, FusionPolicy::Disabled);
        assert_eq!(saved_intermediate_bytes(&g, &single), 0);
    }

    #[test]
    fn empty_graph_yields_no_groups() {
        let g = GraphBuilder::new("empty").build();
        assert!(fuse(&g, FusionPolicy::Enabled).is_empty());
    }
}
