//! # dscs-compiler
//!
//! The compilation stack that lowers ML model graphs (from `dscs-nn`) onto DSA
//! configurations (from `dscs-dsa`), mirroring Section 5.1 of the paper:
//!
//! 1. **Operator fusion** ([`fusion`]) groups each GEMM-class operator with its
//!    chain of vector-class consumers so intermediate activations stay in the
//!    shared on-chip buffers.
//! 2. **Padding & tiling** ([`tiling`]) picks configuration-specific tile sizes
//!    that fill the double-buffered scratchpad while matching the systolic
//!    array's granularity.
//! 3. **Code generation** ([`codegen`]) emits the tile-level instruction stream
//!    (`LoadTile`/`GemmTile`/`VectorTile`/`StoreTile`/`Sync`) that the DSA
//!    executor runs.
//!
//! # Example
//!
//! ```
//! use dscs_compiler::compile_model;
//! use dscs_dsa::config::DsaConfig;
//! use dscs_dsa::executor::Executor;
//! use dscs_nn::zoo::{Model, ModelKind};
//!
//! let model = Model::build(ModelKind::ResNet50);
//! let config = DsaConfig::paper_optimal();
//! let program = compile_model(&model, &config);
//! let report = Executor::new(config).run(&program);
//! assert!(report.latency().as_millis_f64() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codegen;
pub mod fusion;
pub mod tiling;

pub use codegen::{compile, gemm_dims, CompileOptions, GemmDims};
pub use fusion::{fuse, FusionGroup, FusionPolicy};
pub use tiling::{select_tiling, Tiling};

use dscs_dsa::config::DsaConfig;
use dscs_dsa::isa::Program;
use dscs_nn::zoo::Model;

/// Compiles a zoo model with default options (fusion enabled).
pub fn compile_model(model: &Model, config: &DsaConfig) -> Program {
    compile(model.graph(), config, CompileOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscs_nn::zoo::ModelKind;

    #[test]
    fn compile_model_is_equivalent_to_compile_graph() {
        let model = Model::build(ModelKind::LogisticRegression);
        let cfg = DsaConfig::paper_optimal();
        let a = compile_model(&model, &cfg);
        let b = compile(model.graph(), &cfg, CompileOptions::default());
        assert_eq!(a.total_ops(), b.total_ops());
        assert_eq!(a.len(), b.len());
    }
}
