//! Tile-size selection.
//!
//! The compiler performs "DSA design configuration specific optimizations such
//! as padding and tiling to maximize the DSA's utilization" (Section 5.1). For
//! a GEMM of size `m x k x n` and a given configuration, the tile sizes must
//! satisfy the scratchpad capacity constraint with double buffering:
//!
//! ```text
//! 2 * (tile_m*tile_k + tile_k*tile_n + tile_m*tile_n*4) <= buffer_bytes
//! ```
//!
//! (int8 operands, 32-bit accumulators for the output tile) while being as
//! large as possible so that DMA transfers amortise and the array stays busy.
//! Tiles are padded up to multiples of the array dimensions, which is where the
//! utilisation loss of oversized arrays at batch 1 comes from.

use serde::{Deserialize, Serialize};

use dscs_dsa::config::DsaConfig;

/// A tiling decision for one GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tiling {
    /// Tile size along the output-row (m) dimension.
    pub tile_m: u64,
    /// Tile size along the reduction (k) dimension.
    pub tile_k: u64,
    /// Tile size along the output-column (n) dimension.
    pub tile_n: u64,
}

impl Tiling {
    /// Scratchpad bytes one double-buffered tile set occupies.
    pub fn buffer_bytes(&self) -> u64 {
        2 * (self.tile_m * self.tile_k + self.tile_k * self.tile_n + self.tile_m * self.tile_n * 4)
    }

    /// Number of tiles needed to cover a full `m x k x n` GEMM.
    pub fn tile_count(&self, m: u64, k: u64, n: u64) -> u64 {
        m.div_ceil(self.tile_m) * k.div_ceil(self.tile_k) * n.div_ceil(self.tile_n)
    }
}

/// Selects a tiling for an `m x k x n` GEMM on `config`.
///
/// The reduction and column tiles start at the array dimensions (padded up) and
/// grow by doubling while the double-buffered working set fits; the row tile
/// then takes whatever capacity remains. This mirrors the paper's observation
/// that the compiler picks tiles small enough for memory transfers to overlap
/// the previous tile's compute.
///
/// # Panics
/// Panics if any GEMM dimension is zero or if the configuration cannot hold
/// even a minimum tile (which [`DsaConfig::validate`] rules out).
pub fn select_tiling(config: &DsaConfig, m: u64, k: u64, n: u64) -> Tiling {
    assert!(m > 0 && k > 0 && n > 0, "GEMM dimensions must be positive");
    let budget = config.buffer_bytes;

    // Pad the problem to the array's native granularity.
    let pad = |x: u64, to: u64| x.div_ceil(to) * to;
    let padded_k = pad(k, config.array_rows);
    let padded_n = pad(n, config.array_cols);

    let mut tile_k = config.array_rows.min(padded_k);
    let mut tile_n = config.array_cols.min(padded_n);
    let mut tile_m = m.clamp(1, config.array_rows);

    let fits = |tm: u64, tk: u64, tn: u64| 2 * (tm * tk + tk * tn + tm * tn * 4) <= budget;
    assert!(
        fits(1, tile_k, tile_n) || fits(1, config.array_rows, config.array_cols),
        "configuration cannot hold a minimum tile"
    );

    // Grow the reduction dimension first (weight reuse), then columns, then rows.
    loop {
        let next = (tile_k * 2).min(padded_k);
        if next != tile_k && fits(tile_m, next, tile_n) {
            tile_k = next;
        } else {
            break;
        }
    }
    loop {
        let next = (tile_n * 2).min(padded_n);
        if next != tile_n && fits(tile_m, tile_k, next) {
            tile_n = next;
        } else {
            break;
        }
    }
    loop {
        let next = (tile_m * 2).min(m);
        if next != tile_m && fits(next, tile_k, tile_n) {
            tile_m = next;
        } else {
            break;
        }
    }

    Tiling {
        tile_m,
        tile_k,
        tile_n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscs_dsa::config::{DsaConfig, MemoryKind, TechnologyNode};
    use dscs_simcore::quantity::Bytes;

    #[test]
    fn tiles_fit_in_buffer() {
        let cfg = DsaConfig::paper_optimal();
        let t = select_tiling(&cfg, 3136, 576, 64);
        assert!(t.buffer_bytes() <= cfg.buffer_bytes);
        assert!(t.tile_m >= 1 && t.tile_k >= 1 && t.tile_n >= 1);
    }

    #[test]
    fn small_gemm_uses_single_tile() {
        let cfg = DsaConfig::paper_optimal();
        let t = select_tiling(&cfg, 1, 64, 2);
        assert_eq!(t.tile_count(1, 64, 2), 1);
    }

    #[test]
    fn huge_gemm_needs_many_tiles() {
        let cfg = DsaConfig::paper_optimal();
        let t = select_tiling(&cfg, 32, 768, 50_257);
        assert!(t.tile_count(32, 768, 50_257) > 1);
        assert!(t.buffer_bytes() <= cfg.buffer_bytes);
    }

    #[test]
    fn bigger_buffer_means_bigger_tiles() {
        let small = DsaConfig::square(
            128,
            Bytes::from_kib(512).as_u64(),
            MemoryKind::Ddr5,
            TechnologyNode::Nm45,
        );
        let large = DsaConfig::square(
            128,
            Bytes::from_mib(16).as_u64(),
            MemoryKind::Ddr5,
            TechnologyNode::Nm45,
        );
        let m = 4096;
        let k = 4096;
        let n = 4096;
        let t_small = select_tiling(&small, m, k, n);
        let t_large = select_tiling(&large, m, k, n);
        assert!(t_large.tile_count(m, k, n) < t_small.tile_count(m, k, n));
    }

    #[test]
    fn reduction_dimension_grows_first() {
        let cfg = DsaConfig::paper_optimal();
        let t = select_tiling(&cfg, 1, 4096, 4096);
        assert!(t.tile_k >= t.tile_n || t.tile_n == cfg.array_cols);
    }

    #[test]
    fn tiling_padded_to_array_granularity() {
        let cfg = DsaConfig::paper_optimal();
        let t = select_tiling(&cfg, 1, 100, 10);
        // k padded to 128, n padded to 128 (capped by padded problem size).
        assert_eq!(t.tile_k % cfg.array_rows, 0);
        assert_eq!(t.tile_n % cfg.array_cols, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        let _ = select_tiling(&DsaConfig::paper_optimal(), 0, 1, 1);
    }
}
