//! The benchmark suite (Table 1).
//!
//! Eight real-world, latency-critical serverless applications inspired by AWS
//! Lambda case studies. Each is a three-function pipeline (data pre-processing,
//! ML/DNN inference, notification) that exchanges data through disaggregated
//! storage. Where the paper uses representative Hugging Face models for
//! non-public AWS models, we use the structurally equivalent networks from
//! `dscs-nn`'s zoo.

use serde::{Deserialize, Serialize};
use std::fmt;

use dscs_faas::function::AppPipeline;
use dscs_nn::preprocess::{PostprocessSpec, PreprocessKind, PreprocessSpec};
use dscs_nn::zoo::{Model, ModelKind};
use dscs_simcore::quantity::Bytes;

/// The eight benchmark applications, in the paper's presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Benchmark {
    /// Binary logistic regression over loan-applicant features (IBM credit risk).
    CreditRiskAssessment,
    /// Object detection on insurance-claim photos (AWS Lookout-style).
    AssetDamageDetection,
    /// Personal-protective-equipment detection (AWS Rekognition PPE).
    PpeDetection,
    /// Conversational chatbot on a generative language model (AWS serverless bot).
    ConversationalChatbot,
    /// Neural machine translation of documents (AWS Translate).
    DocumentTranslation,
    /// Medical-image classification (Inception-v3 clinical analysis).
    ClinicalAnalysis,
    /// Text content moderation (AWS Rekognition moderation pipeline).
    ContentModeration,
    /// Wildfire remote sensing with a vision transformer (SDG&E drone imagery).
    RemoteSensing,
}

impl Benchmark {
    /// All benchmarks in the paper's order.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::CreditRiskAssessment,
        Benchmark::AssetDamageDetection,
        Benchmark::PpeDetection,
        Benchmark::ConversationalChatbot,
        Benchmark::DocumentTranslation,
        Benchmark::ClinicalAnalysis,
        Benchmark::ContentModeration,
        Benchmark::RemoteSensing,
    ];

    /// Display name used in figures.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::CreditRiskAssessment => "Credit Risk Assessment",
            Benchmark::AssetDamageDetection => "Asset Damage Detection",
            Benchmark::PpeDetection => "PPE Detection",
            Benchmark::ConversationalChatbot => "Conversational Chatbot",
            Benchmark::DocumentTranslation => "Document Translation",
            Benchmark::ClinicalAnalysis => "Clinical Analysis",
            Benchmark::ContentModeration => "Content Moderation",
            Benchmark::RemoteSensing => "Remote Sensing",
        }
    }

    /// The full benchmark specification.
    pub fn spec(&self) -> BenchmarkSpec {
        match self {
            Benchmark::CreditRiskAssessment => BenchmarkSpec {
                benchmark: *self,
                model: ModelKind::LogisticRegression,
                description:
                    "binary credit-risk scoring with logistic regression over engineered features",
                input_size: Bytes::from_kib(24),
                intermediate_size: Bytes::new(64),
                result_size: Bytes::from_kib(1),
                preprocess: PreprocessKind::TabularFeaturize { features: 64 },
            },
            Benchmark::AssetDamageDetection => BenchmarkSpec {
                benchmark: *self,
                model: ModelKind::SsdMobileNet,
                description: "object detection over insurance claim photos (SSD-MobileNetV1)",
                input_size: Bytes::from_mib(3),
                intermediate_size: Bytes::new(3 * 300 * 300),
                result_size: Bytes::from_kib(8),
                preprocess: PreprocessKind::ImageDecodeResize {
                    target_h: 300,
                    target_w: 300,
                    channels: 3,
                },
            },
            Benchmark::PpeDetection => BenchmarkSpec {
                benchmark: *self,
                model: ModelKind::ResNet50,
                description: "personal protective equipment detection (ResNet-50)",
                input_size: Bytes::from_mib(4),
                intermediate_size: Bytes::new(3 * 224 * 224),
                result_size: Bytes::from_kib(2),
                preprocess: PreprocessKind::ImageDecodeResize {
                    target_h: 224,
                    target_w: 224,
                    channels: 3,
                },
            },
            Benchmark::ConversationalChatbot => BenchmarkSpec {
                benchmark: *self,
                model: ModelKind::Gpt2Chatbot,
                description: "conversational chatbot on a GPT-2 class language model",
                input_size: Bytes::from_kib(8),
                intermediate_size: Bytes::new(128 * 4),
                result_size: Bytes::from_kib(4),
                preprocess: PreprocessKind::Tokenize { tokens: 96 },
            },
            Benchmark::DocumentTranslation => BenchmarkSpec {
                benchmark: *self,
                model: ModelKind::TransformerNmt,
                description: "document translation with a transformer-base seq2seq model",
                input_size: Bytes::from_kib(64),
                intermediate_size: Bytes::new(64 * 4),
                result_size: Bytes::from_kib(64),
                preprocess: PreprocessKind::Tokenize { tokens: 64 },
            },
            Benchmark::ClinicalAnalysis => BenchmarkSpec {
                benchmark: *self,
                model: ModelKind::InceptionV3,
                description: "clinical blood-smear classification (Inception-v3)",
                input_size: Bytes::from_mib(8),
                intermediate_size: Bytes::new(3 * 299 * 299),
                result_size: Bytes::from_kib(2),
                preprocess: PreprocessKind::ImageDecodeResize {
                    target_h: 299,
                    target_w: 299,
                    channels: 3,
                },
            },
            Benchmark::ContentModeration => BenchmarkSpec {
                benchmark: *self,
                model: ModelKind::BertBase,
                description: "social-media content moderation with a BERT-base classifier",
                input_size: Bytes::from_kib(16),
                intermediate_size: Bytes::new(128 * 4),
                result_size: Bytes::from_kib(1),
                preprocess: PreprocessKind::Tokenize { tokens: 128 },
            },
            Benchmark::RemoteSensing => BenchmarkSpec {
                benchmark: *self,
                model: ModelKind::VitBase,
                description: "wildfire detection over drone imagery with a vision transformer",
                input_size: Bytes::from_mib(6),
                intermediate_size: Bytes::new(3 * 224 * 224),
                result_size: Bytes::from_kib(4),
                preprocess: PreprocessKind::ImageDecodeResize {
                    target_h: 224,
                    target_w: 224,
                    channels: 3,
                },
            },
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Static description of one benchmark application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchmarkSpec {
    /// Which benchmark this is.
    pub benchmark: Benchmark,
    /// The inference model (from the zoo).
    pub model: ModelKind,
    /// One-line description (the Table 1 "description" column).
    pub description: &'static str,
    /// Size of the raw input object arriving at storage (per request).
    pub input_size: Bytes,
    /// Size of the pre-processed tensor exchanged between functions 1 and 2.
    pub intermediate_size: Bytes,
    /// Size of the inference result exchanged between functions 2 and 3.
    pub result_size: Bytes,
    /// What the pre-processing function does.
    pub preprocess: PreprocessKind,
}

impl BenchmarkSpec {
    /// Builds the inference model at a batch size.
    pub fn model(&self, batch: u64) -> Model {
        Model::build_with_batch(self.model, batch)
    }

    /// The pre-processing specification.
    pub fn preprocess_spec(&self) -> PreprocessSpec {
        PreprocessSpec {
            kind: self.preprocess,
            raw_input: self.input_size,
        }
    }

    /// The post-processing / notification specification.
    pub fn postprocess_spec(&self) -> PostprocessSpec {
        PostprocessSpec::json_result(self.result_size)
    }

    /// The serverless pipeline (preprocess → inference → notification) with the
    /// container image sized to hold the model weights plus runtime.
    pub fn pipeline(&self) -> AppPipeline {
        let weights = Model::build(self.model).weight_bytes();
        let image = Bytes::from_mib(150) + weights;
        AppPipeline::standard_three_stage(self.name_slug(), image)
    }

    /// Model parameter count (the Table 1 "parameters" column).
    pub fn parameter_count(&self) -> u64 {
        Model::build(self.model).parameter_count()
    }

    /// A lowercase, dash-separated identifier.
    pub fn name_slug(&self) -> String {
        self.benchmark.name().to_lowercase().replace(' ', "-")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_have_specs_and_pipelines() {
        for b in Benchmark::ALL {
            let spec = b.spec();
            assert_eq!(spec.benchmark, b);
            assert!(spec.input_size.as_u64() > 0);
            let pipeline = spec.pipeline();
            assert_eq!(pipeline.len(), 3);
            assert_eq!(pipeline.acceleratable_prefix_len(), 2);
        }
    }

    #[test]
    fn serverless_payloads_respect_lambda_limits() {
        // AWS caps serverless request payloads around 20 MB; every benchmark's
        // input object stays under that.
        for b in Benchmark::ALL {
            assert!(b.spec().input_size < Bytes::from_mib(20), "{b}");
        }
    }

    #[test]
    fn image_benchmarks_have_megabyte_inputs_text_benchmarks_kilobytes() {
        assert!(Benchmark::PpeDetection.spec().input_size > Bytes::from_mib(1));
        assert!(Benchmark::RemoteSensing.spec().input_size > Bytes::from_mib(1));
        assert!(Benchmark::ContentModeration.spec().input_size < Bytes::from_mib(1));
        assert!(Benchmark::CreditRiskAssessment.spec().input_size < Bytes::from_mib(1));
    }

    #[test]
    fn parameter_counts_span_four_orders_of_magnitude() {
        let small = Benchmark::CreditRiskAssessment.spec().parameter_count();
        let large = Benchmark::ConversationalChatbot.spec().parameter_count();
        assert!(small < 1_000);
        assert!(large > 100_000_000);
    }

    #[test]
    fn intermediates_are_smaller_than_inputs_for_image_apps() {
        for b in [
            Benchmark::PpeDetection,
            Benchmark::ClinicalAnalysis,
            Benchmark::RemoteSensing,
        ] {
            let spec = b.spec();
            assert!(spec.intermediate_size < spec.input_size, "{b}");
        }
    }

    #[test]
    fn names_and_slugs_are_stable() {
        assert_eq!(Benchmark::PpeDetection.to_string(), "PPE Detection");
        assert_eq!(Benchmark::PpeDetection.spec().name_slug(), "ppe-detection");
        assert_eq!(Benchmark::ALL.len(), 8);
    }
}
