//! End-to-end application model.
//!
//! Reproduces the paper's measurement methodology in simulation: each benchmark
//! is a chain of three serverless functions exchanging data through
//! disaggregated storage, executed on one of the evaluated platforms. The model
//! charges every component the paper's runtime breakdowns identify — remote
//! storage reads/writes (network + RPC + storage-node I/O), PCIe staging copies
//! for discrete accelerators, P2P transfers inside the DSCS-Drive, compute on
//! the chosen platform, the serverless system stack (OpenFaaS/Kubernetes
//! routing and launch), the notification function that always runs on a host
//! CPU, and (optionally) cold-start costs — and the corresponding energies.

use serde::{Deserialize, Serialize};

use dscs_faas::coldstart::{ColdStartModel, ImageSource};
use dscs_nn::graph::Graph;
use dscs_platforms::{device_copy_latency, ComputeEngine, PlatformKind, PlatformLocation};
use dscs_simcore::quantity::{Bytes, Joules, Watts};
use dscs_simcore::time::SimDuration;
use dscs_storage::drive::DscsDrive;
use dscs_storage::network::{NetworkConfig, NetworkModel};

use crate::benchmarks::Benchmark;

/// Options controlling one end-to-end evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalOptions {
    /// Batch size (number of requests served by one invocation).
    pub batch: u64,
    /// Latency quantile of the storage/network distribution to evaluate at
    /// (the paper reports p95 end-to-end latencies).
    pub quantile: f64,
    /// Whether the invocation hits a cold container.
    pub cold_start: bool,
    /// Extra duplicated inference functions appended to the chain (Figure 16).
    pub extra_inference_functions: usize,
    /// Scale factor on the storage/network latency tail (1.0 = calibrated).
    pub tail_scale: f64,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            batch: 1,
            quantile: 0.95,
            cold_start: false,
            extra_inference_functions: 0,
            tail_scale: 1.0,
        }
    }
}

/// Latency broken down by system component (the categories of Figures 4 and 10).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Reads from remote disaggregated storage (network RPC + storage node I/O).
    pub remote_read: SimDuration,
    /// Writes to remote disaggregated storage.
    pub remote_write: SimDuration,
    /// Data movement local to the storage node (host path or P2P path).
    pub local_io: SimDuration,
    /// PCIe staging copies onto a discrete accelerator card.
    pub device_copy: SimDuration,
    /// Compute of the pre-processing and inference functions.
    pub compute: SimDuration,
    /// The notification function (remote result read + CPU work).
    pub notification: SimDuration,
    /// Serverless framework overhead (gateway, Kubernetes routing, launches)
    /// plus accelerator driver dispatch.
    pub system_stack: SimDuration,
    /// Cold-start cost (zero for warm invocations).
    pub cold_start: SimDuration,
}

impl LatencyBreakdown {
    /// Total end-to-end latency.
    pub fn total(&self) -> SimDuration {
        self.remote_read
            + self.remote_write
            + self.local_io
            + self.device_copy
            + self.compute
            + self.notification
            + self.system_stack
            + self.cold_start
    }

    /// Total time spent on communication/data movement (the portion the paper
    /// reports as >55 % on average for the baseline).
    pub fn communication(&self) -> SimDuration {
        self.remote_read + self.remote_write + self.local_io + self.device_copy
    }

    /// Fraction of the end-to-end latency spent on communication.
    pub fn communication_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        self.communication().as_secs_f64() / total
    }
}

/// Energy broken down by source.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Compute-device energy (functions 1 and 2, plus duplicates).
    pub compute: Joules,
    /// Data-movement energy (network, drive, PCIe).
    pub data_movement: Joules,
    /// Host-CPU energy during data movement, the system stack and function 3.
    pub host: Joules,
}

impl EnergyBreakdown {
    /// Total energy per invocation.
    pub fn total(&self) -> Joules {
        self.compute + self.data_movement + self.host
    }
}

/// Result of one end-to-end evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EndToEndReport {
    /// The benchmark evaluated.
    pub benchmark: Benchmark,
    /// The platform evaluated.
    pub platform: PlatformKind,
    /// Options used.
    pub options: EvalOptions,
    /// Latency breakdown.
    pub latency: LatencyBreakdown,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

impl EndToEndReport {
    /// Total end-to-end latency.
    pub fn total_latency(&self) -> SimDuration {
        self.latency.total()
    }

    /// Total energy per invocation.
    pub fn total_energy(&self) -> Joules {
        self.energy.total()
    }

    /// Requests served per second by one function instance at this latency.
    pub fn throughput_rps(&self) -> f64 {
        self.options.batch as f64 / self.total_latency().as_secs_f64()
    }
}

/// The system model: the pieces shared by every platform evaluation.
#[derive(Debug, Clone)]
pub struct SystemModel {
    engine: ComputeEngine,
    network: NetworkModel,
    drive: DscsDrive,
    cold_start: ColdStartModel,
    /// Per-function serverless framework overhead (gateway + Kubernetes + runtime).
    framework_overhead: SimDuration,
    /// Host-CPU power drawn while moving data / running the stack and function 3.
    host_active_power: Watts,
}

impl Default for SystemModel {
    fn default() -> Self {
        Self::new()
    }
}

impl SystemModel {
    /// Creates the default system model: the paper's disaggregated datacenter
    /// with SmartSSD-class drives and the calibrated network.
    pub fn new() -> Self {
        SystemModel {
            engine: ComputeEngine::new(),
            network: NetworkModel::new(NetworkConfig::disaggregated_datacenter()),
            drive: DscsDrive::smartssd_class(),
            cold_start: ColdStartModel::default(),
            framework_overhead: SimDuration::from_millis(7),
            host_active_power: Watts::new(60.0),
        }
    }

    /// Replaces the compute engine (used by the DSE to evaluate other DSA
    /// configurations end to end).
    pub fn with_engine(mut self, engine: ComputeEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The network model in use.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// The drive model in use.
    pub fn drive(&self) -> &DscsDrive {
        &self.drive
    }

    /// Evaluates one benchmark on one platform.
    pub fn evaluate(
        &self,
        benchmark: Benchmark,
        platform: PlatformKind,
        options: EvalOptions,
    ) -> EndToEndReport {
        assert!(options.batch > 0, "batch must be positive");
        assert!(
            options.quantile > 0.0 && options.quantile < 1.0,
            "quantile must be in (0, 1)"
        );
        let spec = benchmark.spec();
        let pspec = platform.spec();
        let network = self.network.with_tail_scale(options.tail_scale);

        // Data volumes for one (possibly batched) invocation.
        let input = spec.input_size * options.batch;
        let inter = spec.intermediate_size * options.batch;
        let result = spec.result_size * options.batch;

        // Workloads.
        let pre_graph = spec.preprocess_spec().graph(options.batch);
        let model = spec.model(options.batch);
        let inference_runs = 1 + options.extra_inference_functions as u64;
        let function_count = 3 + options.extra_inference_functions as u64;

        let mut latency = LatencyBreakdown::default();
        let mut energy = EnergyBreakdown::default();

        // --- Compute (functions 1 and 2 + duplicates) ----------------------
        let pre = self.run_graph(platform, &pre_graph, options.batch);
        let inf = self.run_graph(platform, model.graph(), options.batch);
        latency.compute = pre.0 + inf.0 * inference_runs;
        energy.compute = pre.1 + inf.1 * inference_runs as f64;

        // --- Data movement ---------------------------------------------------
        match pspec.location {
            PlatformLocation::RemoteCompute => {
                // Function 1 reads the raw input and writes the intermediate;
                // every inference function reads the intermediate and the last
                // one writes the result (duplicates write the intermediate).
                let reads = [input]
                    .into_iter()
                    .chain(std::iter::repeat_n(inter, inference_runs as usize));
                let writes = std::iter::repeat_n(inter, inference_runs as usize).chain([result]);
                for size in reads {
                    latency.remote_read += self.remote_access(&network, size, options.quantile);
                    energy.data_movement += Joules::new(network.transfer_energy_joules(size));
                    energy.data_movement +=
                        Joules::new(self.drive.as_ssd().access_energy_joules(size));
                }
                for size in writes {
                    latency.remote_write += self.remote_access(&network, size, options.quantile);
                    energy.data_movement += Joules::new(network.transfer_energy_joules(size));
                    energy.data_movement +=
                        Joules::new(self.drive.as_ssd().access_energy_joules(size));
                }
                if pspec.device_copy_required {
                    // Stage inputs/outputs of both functions across PCIe.
                    for size in [input, inter, inter, result] {
                        latency.device_copy += device_copy_latency(size);
                    }
                }
            }
            PlatformLocation::NearStorage => {
                // Data stays on the storage node but crosses the host CPU and
                // the drive's host PCIe link for every function boundary.
                let ssd = self.drive.as_ssd();
                for size in [input, inter, inter] {
                    latency.local_io += ssd.host_read_latency(size);
                    energy.data_movement += Joules::new(ssd.access_energy_joules(size));
                }
                for size in [inter, inter, result] {
                    latency.local_io += ssd.host_write_latency(size);
                    energy.data_movement += Joules::new(ssd.access_energy_joules(size));
                }
                // Duplicated inference functions re-read and re-write the intermediate.
                if options.extra_inference_functions > 0 {
                    let extra = options.extra_inference_functions as u64;
                    latency.local_io +=
                        (ssd.host_read_latency(inter) + ssd.host_write_latency(inter)) * extra;
                    energy.data_movement +=
                        Joules::new(2.0 * ssd.access_energy_joules(inter) * extra as f64);
                }
            }
            PlatformLocation::InStorage => {
                // The P2P path: flash <-> DSA staging DRAM, no host stack.
                for size in [input, inter, inter] {
                    latency.local_io += self.drive.p2p_read_latency(size);
                    energy.data_movement += Joules::new(self.drive.p2p_energy_joules(size));
                }
                for size in [inter, inter, result] {
                    latency.local_io += self.drive.p2p_write_latency(size);
                    energy.data_movement += Joules::new(self.drive.p2p_energy_joules(size));
                }
                if options.extra_inference_functions > 0 {
                    let extra = options.extra_inference_functions as u64;
                    latency.local_io += (self.drive.p2p_read_latency(inter)
                        + self.drive.p2p_write_latency(inter))
                        * extra;
                    energy.data_movement +=
                        Joules::new(2.0 * self.drive.p2p_energy_joules(inter) * extra as f64);
                }
            }
        }

        // --- Function 3: notification on a host CPU --------------------------
        // It reads the result from persistent storage over the network (as in
        // the traditional system) and performs a small amount of CPU work.
        let notify_read = self.remote_access(&network, result, options.quantile);
        let notify_cpu = SimDuration::from_secs_f64(
            spec.postprocess_spec().notification_ops as f64
                / PlatformKind::BaselineCpu.spec().effective_ops_per_sec(1),
        );
        latency.notification = notify_read + notify_cpu;
        energy.data_movement += Joules::new(network.transfer_energy_joules(result));

        // --- System stack ----------------------------------------------------
        latency.system_stack = self.framework_overhead * function_count;

        // --- Cold start ------------------------------------------------------
        if options.cold_start {
            let image = spec.pipeline().functions[1].image_size;
            let mut cold = self
                .cold_start
                .cold_start_latency(image, ImageSource::RemoteRegistry);
            // Loading the model weights into the accelerator's memory.
            cold += self
                .cold_start
                .weight_load_latency(model.weight_bytes(), pspec.memory_bandwidth);
            latency.cold_start = cold;
        }

        // --- Host energy -----------------------------------------------------
        let host_busy = latency.remote_read
            + latency.remote_write
            + latency.local_io
            + latency.device_copy
            + latency.notification
            + latency.system_stack
            + latency.cold_start;
        energy.host = self.host_active_power.over(host_busy);

        EndToEndReport {
            benchmark,
            platform,
            options,
            latency,
            energy,
        }
    }

    /// Speedup of `platform` over `baseline` for one benchmark under `options`.
    pub fn speedup_over(
        &self,
        benchmark: Benchmark,
        platform: PlatformKind,
        baseline: PlatformKind,
        options: EvalOptions,
    ) -> f64 {
        let p = self
            .evaluate(benchmark, platform, options)
            .total_latency()
            .as_secs_f64();
        let b = self
            .evaluate(benchmark, baseline, options)
            .total_latency()
            .as_secs_f64();
        b / p
    }

    fn run_graph(
        &self,
        platform: PlatformKind,
        graph: &Graph,
        batch: u64,
    ) -> (SimDuration, Joules) {
        let result = self.engine.execute(platform, graph, batch);
        (result.latency, result.energy)
    }

    fn remote_access(&self, network: &NetworkModel, size: Bytes, quantile: f64) -> SimDuration {
        // Network/RPC path plus the storage node's own drive access.
        network.access_latency_at_quantile(size, quantile)
            + self.drive.as_ssd().host_read_latency(size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscs_simcore::stats::geometric_mean;

    fn system() -> SystemModel {
        SystemModel::new()
    }

    fn speedups(platform: PlatformKind) -> Vec<f64> {
        let sys = system();
        Benchmark::ALL
            .iter()
            .map(|&b| {
                sys.speedup_over(
                    b,
                    platform,
                    PlatformKind::BaselineCpu,
                    EvalOptions::default(),
                )
            })
            .collect()
    }

    #[test]
    fn baseline_is_communication_dominated() {
        let sys = system();
        let fractions: Vec<f64> = Benchmark::ALL
            .iter()
            .map(|&b| {
                sys.evaluate(b, PlatformKind::BaselineCpu, EvalOptions::default())
                    .latency
                    .communication_fraction()
            })
            .collect();
        let avg = fractions.iter().sum::<f64>() / fractions.len() as f64;
        assert!(avg > 0.50, "average communication fraction {avg}");
    }

    #[test]
    fn dscs_speedup_over_baseline_matches_paper_range() {
        let mean = geometric_mean(&speedups(PlatformKind::DscsDsa));
        // Paper: 3.6x average end-to-end speedup over the CPU baseline.
        assert!((2.2..5.5).contains(&mean), "DSCS speedup {mean}");
    }

    #[test]
    fn dscs_outperforms_every_other_platform_on_average() {
        let dscs = geometric_mean(&speedups(PlatformKind::DscsDsa));
        for platform in [
            PlatformKind::RemoteGpu,
            PlatformKind::RemoteFpga,
            PlatformKind::NsArm,
            PlatformKind::NsMobileGpu,
            PlatformKind::NsFpga,
        ] {
            let other = geometric_mean(&speedups(platform));
            assert!(dscs > other, "DSCS {dscs} should beat {platform} {other}");
        }
    }

    #[test]
    fn gpu_with_remote_storage_gains_little() {
        // The paper's core claim: Amdahl's law caps the benefit of a 250 W GPU
        // behind remote storage well below the raw compute speedup.
        let gpu = geometric_mean(&speedups(PlatformKind::RemoteGpu));
        assert!(gpu < 2.0, "GPU end-to-end speedup {gpu}");
        assert!(gpu > 0.9, "GPU should not lose badly to the CPU: {gpu}");
    }

    #[test]
    fn ns_arm_is_roughly_baseline_class() {
        let arm = geometric_mean(&speedups(PlatformKind::NsArm));
        assert!((0.3..1.4).contains(&arm), "NS-ARM speedup {arm}");
    }

    #[test]
    fn dscs_beats_ns_fpga_by_more_than_the_fpga_beats_arm() {
        let sys = system();
        let dscs_over_fpga = geometric_mean(
            &Benchmark::ALL
                .iter()
                .map(|&b| {
                    sys.speedup_over(
                        b,
                        PlatformKind::DscsDsa,
                        PlatformKind::NsFpga,
                        EvalOptions::default(),
                    )
                })
                .collect::<Vec<_>>(),
        );
        assert!(
            (1.1..3.0).contains(&dscs_over_fpga),
            "DSCS over NS-FPGA {dscs_over_fpga}"
        );
    }

    #[test]
    fn credit_risk_shows_least_dscs_speedup_among_benchmarks() {
        let sys = system();
        let speedup = |b: Benchmark| {
            sys.speedup_over(
                b,
                PlatformKind::DscsDsa,
                PlatformKind::BaselineCpu,
                EvalOptions::default(),
            )
        };
        let credit = speedup(Benchmark::CreditRiskAssessment);
        let max_other = Benchmark::ALL
            .iter()
            .filter(|&&b| b != Benchmark::CreditRiskAssessment)
            .map(|&b| speedup(b))
            .fold(f64::MIN, f64::max);
        assert!(credit < max_other, "credit {credit} vs best {max_other}");
    }

    #[test]
    fn dscs_energy_reduction_over_baseline() {
        let sys = system();
        let ratios: Vec<f64> = Benchmark::ALL
            .iter()
            .map(|&b| {
                let base = sys
                    .evaluate(b, PlatformKind::BaselineCpu, EvalOptions::default())
                    .total_energy();
                let dscs = sys
                    .evaluate(b, PlatformKind::DscsDsa, EvalOptions::default())
                    .total_energy();
                base.as_f64() / dscs.as_f64()
            })
            .collect();
        let mean = geometric_mean(&ratios);
        // Paper: 3.5x average system-energy reduction.
        assert!((2.0..6.5).contains(&mean), "energy reduction {mean}");
    }

    #[test]
    fn gpu_consumes_more_energy_than_dscs() {
        let sys = system();
        for &b in &[Benchmark::PpeDetection, Benchmark::RemoteSensing] {
            let gpu = sys
                .evaluate(b, PlatformKind::RemoteGpu, EvalOptions::default())
                .total_energy();
            let dscs = sys
                .evaluate(b, PlatformKind::DscsDsa, EvalOptions::default())
                .total_energy();
            assert!(
                gpu.as_f64() > 1.5 * dscs.as_f64(),
                "{b}: gpu {gpu} vs dscs {dscs}"
            );
        }
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let sys = system();
        let report = sys.evaluate(
            Benchmark::PpeDetection,
            PlatformKind::RemoteGpu,
            EvalOptions::default(),
        );
        let b = report.latency;
        let sum = b.remote_read
            + b.remote_write
            + b.local_io
            + b.device_copy
            + b.compute
            + b.notification
            + b.system_stack
            + b.cold_start;
        assert_eq!(sum, report.total_latency());
    }

    #[test]
    fn in_storage_platforms_have_no_remote_reads_for_accelerated_functions() {
        let sys = system();
        let report = sys.evaluate(
            Benchmark::RemoteSensing,
            PlatformKind::DscsDsa,
            EvalOptions::default(),
        );
        assert_eq!(report.latency.remote_read, SimDuration::ZERO);
        assert_eq!(report.latency.remote_write, SimDuration::ZERO);
        assert!(report.latency.local_io > SimDuration::ZERO);
        // Function 3 still pays the network.
        assert!(report.latency.notification.as_millis_f64() > 5.0);
    }

    #[test]
    fn cold_start_reduces_but_does_not_erase_the_speedup() {
        let sys = system();
        let warm = EvalOptions::default();
        let cold = EvalOptions {
            cold_start: true,
            ..EvalOptions::default()
        };
        let warm_speedups: Vec<f64> = Benchmark::ALL
            .iter()
            .map(|&b| sys.speedup_over(b, PlatformKind::DscsDsa, PlatformKind::BaselineCpu, warm))
            .collect();
        let cold_speedups: Vec<f64> = Benchmark::ALL
            .iter()
            .map(|&b| sys.speedup_over(b, PlatformKind::DscsDsa, PlatformKind::BaselineCpu, cold))
            .collect();
        let warm_mean = geometric_mean(&warm_speedups);
        let cold_mean = geometric_mean(&cold_speedups);
        assert!(cold_mean < warm_mean, "cold {cold_mean} < warm {warm_mean}");
        assert!(cold_mean > 1.0, "cold start still wins: {cold_mean}");
    }

    #[test]
    fn batch_64_amplifies_the_dscs_advantage() {
        let sys = system();
        let b1 = EvalOptions::default();
        let b64 = EvalOptions {
            batch: 64,
            ..EvalOptions::default()
        };
        let s1 = geometric_mean(
            &Benchmark::ALL
                .iter()
                .map(|&b| sys.speedup_over(b, PlatformKind::DscsDsa, PlatformKind::BaselineCpu, b1))
                .collect::<Vec<_>>(),
        );
        let s64 = geometric_mean(
            &Benchmark::ALL
                .iter()
                .map(|&b| {
                    sys.speedup_over(b, PlatformKind::DscsDsa, PlatformKind::BaselineCpu, b64)
                })
                .collect::<Vec<_>>(),
        );
        assert!(s64 > 1.5 * s1, "batch-64 speedup {s64} vs batch-1 {s1}");
    }

    #[test]
    fn extra_accelerated_functions_increase_the_speedup() {
        let sys = system();
        let base = EvalOptions::default();
        let plus3 = EvalOptions {
            extra_inference_functions: 3,
            ..EvalOptions::default()
        };
        let s0 = geometric_mean(
            &Benchmark::ALL
                .iter()
                .map(|&b| {
                    sys.speedup_over(b, PlatformKind::DscsDsa, PlatformKind::BaselineCpu, base)
                })
                .collect::<Vec<_>>(),
        );
        let s3 = geometric_mean(
            &Benchmark::ALL
                .iter()
                .map(|&b| {
                    sys.speedup_over(b, PlatformKind::DscsDsa, PlatformKind::BaselineCpu, plus3)
                })
                .collect::<Vec<_>>(),
        );
        assert!(s3 > s0, "+3 functions {s3} vs base {s0}");
    }

    #[test]
    fn higher_quantiles_favour_dscs_more() {
        let sys = system();
        let p50 = EvalOptions {
            quantile: 0.50,
            ..EvalOptions::default()
        };
        let p99 = EvalOptions {
            quantile: 0.99,
            ..EvalOptions::default()
        };
        let s50 = geometric_mean(
            &Benchmark::ALL
                .iter()
                .map(|&b| {
                    sys.speedup_over(b, PlatformKind::DscsDsa, PlatformKind::BaselineCpu, p50)
                })
                .collect::<Vec<_>>(),
        );
        let s99 = geometric_mean(
            &Benchmark::ALL
                .iter()
                .map(|&b| {
                    sys.speedup_over(b, PlatformKind::DscsDsa, PlatformKind::BaselineCpu, p99)
                })
                .collect::<Vec<_>>(),
        );
        assert!(
            s99 > s50,
            "p99 speedup {s99} should exceed p50 speedup {s50}"
        );
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn invalid_quantile_rejected() {
        let sys = system();
        let _ = sys.evaluate(
            Benchmark::PpeDetection,
            PlatformKind::BaselineCpu,
            EvalOptions {
                quantile: 1.5,
                ..EvalOptions::default()
            },
        );
    }
}
