//! Experiment runners: one function per paper table/figure in this crate's
//! scope.
//!
//! Each runner returns plain data (rows or series) so the benchmark harness and
//! the `reproduce` binary can print, compare and regress them. Figures that
//! need the design-space exploration (7, 8, 12) or the at-scale cluster
//! simulation (13) live in `dscs-dse` and `dscs-cluster` respectively; the
//! at-scale policy sweep (scheduler x keepalive x platform x workload, the
//! `reproduce at-scale` subcommand) is `dscs_cluster::at_scale`, kept there
//! because `dscs-cluster` sits above this crate in the dependency graph.

use serde::{Deserialize, Serialize};

use dscs_platforms::PlatformKind;
use dscs_simcore::rng::DeterministicRng;
use dscs_simcore::stats::{geometric_mean, Summary};

use crate::benchmarks::Benchmark;
use crate::endtoend::{EndToEndReport, EvalOptions, LatencyBreakdown, SystemModel};

/// One CDF series for Figure 3: per-benchmark S3-style read latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CdfSeries {
    /// The benchmark whose input object is read.
    pub benchmark: Benchmark,
    /// `(latency seconds, cumulative probability)` points.
    pub points: Vec<(f64, f64)>,
    /// Median read latency.
    pub p50: f64,
    /// 99th percentile read latency.
    pub p99: f64,
}

/// Figure 3: cumulative distribution of remote-storage read latency for each
/// benchmark's input object, from `samples` simulated reads each.
pub fn fig3_s3_read_cdf(samples: usize, seed: u64) -> Vec<CdfSeries> {
    assert!(samples >= 100, "need a meaningful number of samples");
    let sys = SystemModel::new();
    let mut rng = DeterministicRng::seeded(seed);
    Benchmark::ALL
        .iter()
        .map(|&benchmark| {
            let size = benchmark.spec().input_size;
            let mut child = rng.fork(benchmark as u64);
            let latencies: Vec<f64> = (0..samples)
                .map(|_| {
                    let net = sys.network().sample_access_latency(size, &mut child);
                    let drive = sys.drive().as_ssd().host_read_latency(size);
                    (net + drive).as_secs_f64()
                })
                .collect();
            let summary = Summary::from_samples(&latencies);
            CdfSeries {
                benchmark,
                points: summary.cdf().curve(50),
                p50: summary.p50(),
                p99: summary.p99(),
            }
        })
        .collect()
}

/// One row of a runtime-breakdown figure (Figures 4 and 10).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakdownRow {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// Platform.
    pub platform: PlatformKind,
    /// The absolute breakdown.
    pub breakdown: LatencyBreakdown,
}

impl BreakdownRow {
    /// The breakdown as fractions of the total (what the stacked bars show).
    pub fn normalized(&self) -> [(&'static str, f64); 7] {
        let total = self.breakdown.total().as_secs_f64();
        let f = |d: dscs_simcore::time::SimDuration| {
            if total == 0.0 {
                0.0
            } else {
                d.as_secs_f64() / total
            }
        };
        [
            ("remote_read", f(self.breakdown.remote_read)),
            ("remote_write", f(self.breakdown.remote_write)),
            (
                "local_io",
                f(self.breakdown.local_io) + f(self.breakdown.device_copy),
            ),
            ("compute", f(self.breakdown.compute)),
            ("notification", f(self.breakdown.notification)),
            ("system_stack", f(self.breakdown.system_stack)),
            ("cold_start", f(self.breakdown.cold_start)),
        ]
    }
}

/// Figure 4: runtime breakdown of every benchmark on the baseline CPU with
/// remote storage.
pub fn fig4_runtime_breakdown_baseline() -> Vec<BreakdownRow> {
    let sys = SystemModel::new();
    Benchmark::ALL
        .iter()
        .map(|&benchmark| BreakdownRow {
            benchmark,
            platform: PlatformKind::BaselineCpu,
            breakdown: sys
                .evaluate(benchmark, PlatformKind::BaselineCpu, EvalOptions::default())
                .latency,
        })
        .collect()
}

/// One speedup cell of Figure 9 / 11 style figures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatioCell {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// Platform being compared against the baseline CPU.
    pub platform: PlatformKind,
    /// Ratio (speedup or energy reduction) relative to the baseline CPU.
    pub ratio: f64,
}

/// A full platform-vs-benchmark ratio matrix plus per-platform geometric means.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatioMatrix {
    /// Every (benchmark, platform) cell.
    pub cells: Vec<RatioCell>,
    /// Per-platform geometric-mean ratio across benchmarks.
    pub means: Vec<(PlatformKind, f64)>,
}

impl RatioMatrix {
    /// The geometric-mean ratio for one platform.
    pub fn mean_for(&self, platform: PlatformKind) -> Option<f64> {
        self.means
            .iter()
            .find(|(p, _)| *p == platform)
            .map(|(_, m)| *m)
    }

    /// The ratio for one (benchmark, platform) pair.
    pub fn cell(&self, benchmark: Benchmark, platform: PlatformKind) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.benchmark == benchmark && c.platform == platform)
            .map(|c| c.ratio)
    }

    fn build(mut ratio: impl FnMut(Benchmark, PlatformKind) -> f64) -> Self {
        let platforms: Vec<PlatformKind> = PlatformKind::ALL
            .iter()
            .copied()
            .filter(|&p| p != PlatformKind::BaselineCpu)
            .collect();
        let mut cells = Vec::new();
        let mut means = Vec::new();
        for &platform in &platforms {
            let mut values = Vec::new();
            for &benchmark in &Benchmark::ALL {
                let r = ratio(benchmark, platform);
                values.push(r);
                cells.push(RatioCell {
                    benchmark,
                    platform,
                    ratio: r,
                });
            }
            means.push((platform, geometric_mean(&values)));
        }
        RatioMatrix { cells, means }
    }
}

/// Figure 9: end-to-end speedup of every platform over the baseline CPU.
pub fn fig9_speedup() -> RatioMatrix {
    let sys = SystemModel::new();
    RatioMatrix::build(|benchmark, platform| {
        sys.speedup_over(
            benchmark,
            platform,
            PlatformKind::BaselineCpu,
            EvalOptions::default(),
        )
    })
}

/// Figure 10: runtime breakdown of every benchmark on every platform.
pub fn fig10_runtime_breakdown() -> Vec<BreakdownRow> {
    let sys = SystemModel::new();
    let mut rows = Vec::new();
    for &platform in &PlatformKind::ALL {
        for &benchmark in &Benchmark::ALL {
            rows.push(BreakdownRow {
                benchmark,
                platform,
                breakdown: sys
                    .evaluate(benchmark, platform, EvalOptions::default())
                    .latency,
            });
        }
    }
    rows
}

/// Figure 11: end-to-end system-energy reduction of every platform over the
/// baseline CPU.
pub fn fig11_energy_reduction() -> RatioMatrix {
    let sys = SystemModel::new();
    RatioMatrix::build(|benchmark, platform| {
        let base = sys
            .evaluate(benchmark, PlatformKind::BaselineCpu, EvalOptions::default())
            .total_energy();
        let this = sys
            .evaluate(benchmark, platform, EvalOptions::default())
            .total_energy();
        base.as_f64() / this.as_f64()
    })
}

/// One point of a sensitivity sweep: a parameter value and the DSCS-over-baseline speedup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityPoint {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// The swept parameter value (batch size, quantile, extra functions, ...).
    pub parameter: f64,
    /// DSCS-Serverless speedup over the baseline CPU at that parameter.
    pub speedup: f64,
}

/// Figure 14: batch-size sensitivity. Speedup of DSCS over the baseline CPU at
/// batch sizes 1..=64 (both systems use the same batch).
pub fn fig14_batch_sensitivity() -> Vec<SensitivityPoint> {
    let sys = SystemModel::new();
    let mut points = Vec::new();
    for &batch in &[1u64, 4, 16, 64] {
        for &benchmark in &Benchmark::ALL {
            let options = EvalOptions {
                batch,
                ..EvalOptions::default()
            };
            points.push(SensitivityPoint {
                benchmark,
                parameter: batch as f64,
                speedup: sys.speedup_over(
                    benchmark,
                    PlatformKind::DscsDsa,
                    PlatformKind::BaselineCpu,
                    options,
                ),
            });
        }
    }
    points
}

/// Figure 15: tail-latency sensitivity. Speedup of DSCS over the baseline at
/// the 50th, 95th and 99th percentile of the storage/network distribution.
pub fn fig15_tail_sensitivity() -> Vec<SensitivityPoint> {
    let sys = SystemModel::new();
    let mut points = Vec::new();
    for &quantile in &[0.50, 0.95, 0.99] {
        for &benchmark in &Benchmark::ALL {
            let options = EvalOptions {
                quantile,
                ..EvalOptions::default()
            };
            points.push(SensitivityPoint {
                benchmark,
                parameter: quantile,
                speedup: sys.speedup_over(
                    benchmark,
                    PlatformKind::DscsDsa,
                    PlatformKind::BaselineCpu,
                    options,
                ),
            });
        }
    }
    points
}

/// Figure 16: sensitivity to the number of accelerated functions (0 to 3 extra
/// duplicated inference functions).
pub fn fig16_function_count_sensitivity() -> Vec<SensitivityPoint> {
    let sys = SystemModel::new();
    let mut points = Vec::new();
    for extra in 0..=3usize {
        for &benchmark in &Benchmark::ALL {
            let options = EvalOptions {
                extra_inference_functions: extra,
                ..EvalOptions::default()
            };
            points.push(SensitivityPoint {
                benchmark,
                parameter: extra as f64,
                speedup: sys.speedup_over(
                    benchmark,
                    PlatformKind::DscsDsa,
                    PlatformKind::BaselineCpu,
                    options,
                ),
            });
        }
    }
    points
}

/// Figure 17: cold vs warm containers. Per-benchmark speedup of DSCS over the
/// baseline for warm (parameter 0.0) and cold (parameter 1.0) invocations.
pub fn fig17_cold_start_sensitivity() -> Vec<SensitivityPoint> {
    let sys = SystemModel::new();
    let mut points = Vec::new();
    for (parameter, cold) in [(0.0f64, false), (1.0, true)] {
        for &benchmark in &Benchmark::ALL {
            let options = EvalOptions {
                cold_start: cold,
                ..EvalOptions::default()
            };
            points.push(SensitivityPoint {
                benchmark,
                parameter,
                speedup: sys.speedup_over(
                    benchmark,
                    PlatformKind::DscsDsa,
                    PlatformKind::BaselineCpu,
                    options,
                ),
            });
        }
    }
    points
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// Description.
    pub description: String,
    /// Model name.
    pub model: String,
    /// Parameter count.
    pub parameters: u64,
    /// Input object size in bytes.
    pub input_bytes: u64,
    /// Output object size in bytes.
    pub output_bytes: u64,
}

/// Table 1: the benchmark suite.
pub fn table1_benchmarks() -> Vec<Table1Row> {
    Benchmark::ALL
        .iter()
        .map(|&b| {
            let spec = b.spec();
            Table1Row {
                benchmark: b,
                description: spec.description.to_string(),
                model: spec.model.to_string(),
                parameters: spec.parameter_count(),
                input_bytes: spec.input_size.as_u64(),
                output_bytes: spec.result_size.as_u64(),
            }
        })
        .collect()
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Platform.
    pub platform: PlatformKind,
    /// Peak int8 TOPS.
    pub peak_tops: f64,
    /// Memory bandwidth in GB/s.
    pub memory_gbps: f64,
    /// Active power in watts.
    pub power_watts: f64,
    /// Where the platform sits.
    pub location: String,
    /// Platform CAPEX in dollars.
    pub capex_usd: f64,
}

/// Table 2: the evaluated platforms.
pub fn table2_platforms() -> Vec<Table2Row> {
    PlatformKind::ALL
        .iter()
        .map(|&p| {
            let s = p.spec();
            Table2Row {
                platform: p,
                peak_tops: s.peak_int8_tops,
                memory_gbps: s.memory_bandwidth.as_gbps(),
                power_watts: s.active_power.as_f64(),
                location: format!("{:?}", s.location),
                capex_usd: s.capex.as_f64(),
            }
        })
        .collect()
}

/// Convenience: the full matrix of end-to-end reports (used by Figure 12's cost
/// model and by integration tests).
pub fn all_reports() -> Vec<EndToEndReport> {
    let sys = SystemModel::new();
    let mut reports = Vec::new();
    for &platform in &PlatformKind::ALL {
        for &benchmark in &Benchmark::ALL {
            reports.push(sys.evaluate(benchmark, platform, EvalOptions::default()));
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_produces_one_series_per_benchmark_with_heavier_tails() {
        let series = fig3_s3_read_cdf(2_000, 7);
        assert_eq!(series.len(), 8);
        for s in &series {
            assert!(s.p99 > s.p50, "{}", s.benchmark);
            assert!(s.points.windows(2).all(|w| w[0].1 <= w[1].1));
            assert_eq!(s.points.last().expect("non-empty").1, 1.0);
        }
    }

    #[test]
    fn fig4_shows_majority_communication_on_average() {
        let rows = fig4_runtime_breakdown_baseline();
        let avg: f64 = rows
            .iter()
            .map(|r| r.breakdown.communication_fraction())
            .sum::<f64>()
            / rows.len() as f64;
        assert!(avg > 0.5, "average communication share {avg}");
    }

    #[test]
    fn fig9_matrix_is_complete_and_dscs_leads() {
        let m = fig9_speedup();
        assert_eq!(m.cells.len(), 8 * 6);
        let dscs = m.mean_for(PlatformKind::DscsDsa).expect("present");
        for (p, mean) in &m.means {
            assert!(dscs >= *mean, "DSCS {dscs} vs {p} {mean}");
        }
    }

    #[test]
    fn fig10_covers_every_platform() {
        let rows = fig10_runtime_breakdown();
        assert_eq!(rows.len(), 7 * 8);
        // Normalized fractions sum to ~1.
        for row in rows.iter().take(10) {
            let total: f64 = row.normalized().iter().map(|(_, f)| f).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fig11_energy_reductions_positive() {
        let m = fig11_energy_reduction();
        let dscs = m.mean_for(PlatformKind::DscsDsa).expect("present");
        assert!(dscs > 1.5, "DSCS energy reduction {dscs}");
    }

    #[test]
    fn fig14_batch_speedup_grows() {
        let points = fig14_batch_sensitivity();
        let mean_at = |batch: f64| {
            let v: Vec<f64> = points
                .iter()
                .filter(|p| p.parameter == batch)
                .map(|p| p.speedup)
                .collect();
            geometric_mean(&v)
        };
        assert!(mean_at(64.0) > mean_at(1.0) * 1.5);
    }

    #[test]
    fn fig15_tail_speedup_grows_with_quantile() {
        let points = fig15_tail_sensitivity();
        let mean_at = |q: f64| {
            let v: Vec<f64> = points
                .iter()
                .filter(|p| p.parameter == q)
                .map(|p| p.speedup)
                .collect();
            geometric_mean(&v)
        };
        assert!(mean_at(0.99) > mean_at(0.50));
    }

    #[test]
    fn fig16_more_functions_more_speedup() {
        let points = fig16_function_count_sensitivity();
        let mean_at = |e: f64| {
            let v: Vec<f64> = points
                .iter()
                .filter(|p| p.parameter == e)
                .map(|p| p.speedup)
                .collect();
            geometric_mean(&v)
        };
        assert!(mean_at(3.0) > mean_at(0.0));
    }

    #[test]
    fn fig17_cold_speedup_below_warm_but_above_one() {
        let points = fig17_cold_start_sensitivity();
        let mean_at = |c: f64| {
            let v: Vec<f64> = points
                .iter()
                .filter(|p| p.parameter == c)
                .map(|p| p.speedup)
                .collect();
            geometric_mean(&v)
        };
        let warm = mean_at(0.0);
        let cold = mean_at(1.0);
        assert!(cold < warm);
        assert!(cold > 1.0);
    }

    #[test]
    fn tables_have_expected_shapes() {
        assert_eq!(table1_benchmarks().len(), 8);
        assert_eq!(table2_platforms().len(), 7);
        assert_eq!(all_reports().len(), 56);
    }
}
