//! # dscs-core
//!
//! The DSCS-Serverless execution model — the paper's primary contribution —
//! tied together as an end-to-end system model.
//!
//! * [`benchmarks`] — the eight-application benchmark suite of Table 1, each a
//!   three-function serverless pipeline with calibrated input/output sizes and
//!   a structural model of its network.
//! * [`endtoend`] — the end-to-end latency/energy model: one invocation of a
//!   benchmark on any evaluated platform, broken down into remote storage
//!   access, local/P2P I/O, device staging copies, compute, the notification
//!   function, the serverless system stack and cold starts.
//! * [`experiments`] — one runner per table/figure in this crate's scope
//!   (Figures 3, 4, 9, 10, 11, 14, 15, 16, 17 and Tables 1, 2), returning plain
//!   data for the benchmark harness.
//!
//! # Quickstart
//!
//! ```
//! use dscs_core::benchmarks::Benchmark;
//! use dscs_core::endtoend::{EvalOptions, SystemModel};
//! use dscs_platforms::PlatformKind;
//!
//! let system = SystemModel::new();
//! let report = system.evaluate(Benchmark::PpeDetection, PlatformKind::DscsDsa, EvalOptions::default());
//! let baseline = system.evaluate(Benchmark::PpeDetection, PlatformKind::BaselineCpu, EvalOptions::default());
//! assert!(report.total_latency() < baseline.total_latency());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
pub mod endtoend;
pub mod experiments;

pub use benchmarks::{Benchmark, BenchmarkSpec};
pub use endtoend::{EndToEndReport, EnergyBreakdown, EvalOptions, LatencyBreakdown, SystemModel};
