//! DSA configuration points.
//!
//! The design-space exploration in the paper scales a TPUv1-like baseline from
//! 4x4 to 1024x1024 processing elements, buffers up to 32 MiB, and three memory
//! technologies (DDR4, DDR5, HBM2). A configuration also fixes the clock (the
//! synthesized design closes timing at 1 GHz) and the technology node.

use serde::{Deserialize, Serialize};
use std::fmt;

use dscs_simcore::quantity::{Bandwidth, Bytes, Frequency};

use crate::scaling::ScalingFactors;

/// Off-chip memory technology available to the DSA inside the drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryKind {
    /// DDR4: 19.2 GB/s.
    Ddr4,
    /// DDR5: 38 GB/s.
    Ddr5,
    /// HBM2: 460 GB/s.
    Hbm2,
}

impl MemoryKind {
    /// All memory kinds in the search space.
    pub const ALL: [MemoryKind; 3] = [MemoryKind::Ddr4, MemoryKind::Ddr5, MemoryKind::Hbm2];

    /// Peak bandwidth of the memory technology.
    pub fn bandwidth(self) -> Bandwidth {
        match self {
            MemoryKind::Ddr4 => Bandwidth::from_gbps(19.2),
            MemoryKind::Ddr5 => Bandwidth::from_gbps(38.0),
            MemoryKind::Hbm2 => Bandwidth::from_gbps(460.0),
        }
    }

    /// Access energy per byte in picojoules (DRAM interface + device).
    pub fn energy_pj_per_byte(self) -> f64 {
        match self {
            MemoryKind::Ddr4 => 20.0,
            MemoryKind::Ddr5 => 15.0,
            MemoryKind::Hbm2 => 7.0,
        }
    }

    /// Interface + device static power contribution in watts.
    pub fn static_power_watts(self) -> f64 {
        match self {
            MemoryKind::Ddr4 => 0.35,
            MemoryKind::Ddr5 => 0.45,
            MemoryKind::Hbm2 => 1.80,
        }
    }
}

impl fmt::Display for MemoryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemoryKind::Ddr4 => "DDR4",
            MemoryKind::Ddr5 => "DDR5",
            MemoryKind::Hbm2 => "HBM2",
        };
        f.write_str(s)
    }
}

/// Silicon technology node of the DSA implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TechnologyNode {
    /// FreePDK 45 nm — the node used for synthesis and the DSE figures.
    Nm45,
    /// 14 nm — the SmartSSD-class node used for the end-to-end results.
    Nm14,
}

impl TechnologyNode {
    /// The scaling factors relative to the 45 nm baseline.
    pub fn scaling(self) -> ScalingFactors {
        match self {
            TechnologyNode::Nm45 => ScalingFactors::identity(),
            TechnologyNode::Nm14 => ScalingFactors::nm45_to_nm14(),
        }
    }
}

impl fmt::Display for TechnologyNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TechnologyNode::Nm45 => "45nm",
            TechnologyNode::Nm14 => "14nm",
        };
        f.write_str(s)
    }
}

/// One DSA design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DsaConfig {
    /// Systolic-array rows (number of PE rows in the MPU).
    pub array_rows: u64,
    /// Systolic-array columns.
    pub array_cols: u64,
    /// Total on-chip scratchpad capacity shared by input, weight and output
    /// buffers (bytes).
    pub buffer_bytes: u64,
    /// Off-chip memory technology.
    pub memory: MemoryKind,
    /// Clock frequency in megahertz.
    pub clock_mhz: u64,
    /// Technology node.
    pub node: TechnologyNode,
}

impl DsaConfig {
    /// The design point the paper's DSE selects: a 128x128 systolic array with
    /// a 4 MiB scratchpad and DDR5 memory, clocked at 1 GHz, built at 14 nm for
    /// deployment inside the SmartSSD-class drive.
    pub fn paper_optimal() -> Self {
        DsaConfig {
            array_rows: 128,
            array_cols: 128,
            buffer_bytes: Bytes::from_mib(4).as_u64(),
            memory: MemoryKind::Ddr5,
            clock_mhz: 1000,
            node: TechnologyNode::Nm14,
        }
    }

    /// The same design point evaluated at the 45 nm synthesis node (used by the
    /// design-space figures).
    pub fn paper_optimal_45nm() -> Self {
        DsaConfig {
            node: TechnologyNode::Nm45,
            ..Self::paper_optimal()
        }
    }

    /// Creates a square-array configuration, scaling the buffer with the array
    /// as the paper's search space does (but capped at 32 MiB).
    ///
    /// # Panics
    /// Panics if `dim` is zero.
    pub fn square(dim: u64, buffer_bytes: u64, memory: MemoryKind, node: TechnologyNode) -> Self {
        assert!(dim > 0, "array dimension must be positive");
        DsaConfig {
            array_rows: dim,
            array_cols: dim,
            buffer_bytes,
            memory,
            clock_mhz: 1000,
            node,
        }
    }

    /// Number of processing elements.
    pub fn pe_count(&self) -> u64 {
        self.array_rows * self.array_cols
    }

    /// Clock frequency.
    pub fn frequency(&self) -> Frequency {
        Frequency::from_mhz(self.clock_mhz as f64)
    }

    /// On-chip buffer capacity.
    pub fn buffer(&self) -> Bytes {
        Bytes::new(self.buffer_bytes)
    }

    /// Off-chip memory bandwidth.
    pub fn memory_bandwidth(&self) -> Bandwidth {
        self.memory.bandwidth()
    }

    /// Peak int8 throughput in operations per second (two ops per MAC per cycle).
    pub fn peak_ops_per_sec(&self) -> f64 {
        2.0 * self.pe_count() as f64 * self.frequency().as_hz()
    }

    /// Bytes of off-chip traffic the memory can deliver per clock cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.memory_bandwidth().bytes_per_sec() / self.frequency().as_hz()
    }

    /// Number of SIMD lanes in the VPU. The VPU is sized to drain two MPU
    /// output columns per cycle so element-wise epilogues (bias, batch-norm,
    /// activation) never throttle the systolic array at large batch sizes.
    pub fn vpu_lanes(&self) -> u64 {
        2 * self.array_cols
    }

    /// A short identifier such as `Dim128-4MB-DDR5`, matching the labelling
    /// used in the paper's DSE figures.
    pub fn label(&self) -> String {
        format!(
            "Dim{}-{}MB-{}",
            self.array_rows,
            self.buffer_bytes / (1024 * 1024),
            self.memory
        )
    }

    /// Checks internal consistency (non-zero sizes, buffer can hold at least
    /// one double-buffered tile of each operand).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.array_rows == 0 || self.array_cols == 0 {
            return Err(ConfigError::ZeroDimension);
        }
        if self.clock_mhz == 0 {
            return Err(ConfigError::ZeroClock);
        }
        // Minimum: double-buffered weight + input + output tiles of the array's
        // native size in int8.
        let min_tile = self.array_rows * self.array_cols;
        if self.buffer_bytes < 6 * min_tile {
            return Err(ConfigError::BufferTooSmall {
                required: 6 * min_tile,
                available: self.buffer_bytes,
            });
        }
        Ok(())
    }
}

impl fmt::Display for DsaConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @{}MHz {}", self.label(), self.clock_mhz, self.node)
    }
}

/// Errors reported by [`DsaConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Array rows or columns are zero.
    ZeroDimension,
    /// Clock frequency is zero.
    ZeroClock,
    /// The scratchpad cannot hold a double-buffered minimum tile set.
    BufferTooSmall {
        /// Minimum bytes required.
        required: u64,
        /// Bytes available.
        available: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroDimension => write!(f, "array dimensions must be non-zero"),
            ConfigError::ZeroClock => write!(f, "clock frequency must be non-zero"),
            ConfigError::BufferTooSmall {
                required,
                available,
            } => {
                write!(
                    f,
                    "buffer too small: need {required} bytes, have {available}"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_optimal_matches_section_4() {
        let c = DsaConfig::paper_optimal();
        assert_eq!(c.array_rows, 128);
        assert_eq!(c.array_cols, 128);
        assert_eq!(c.buffer().as_u64(), 4 * 1024 * 1024);
        assert_eq!(c.memory, MemoryKind::Ddr5);
        assert_eq!(c.label(), "Dim128-4MB-DDR5");
        assert!(c.validate().is_ok());
    }

    #[test]
    fn peak_throughput_scales_with_pe_count() {
        let small = DsaConfig::square(
            16,
            Bytes::from_kib(256).as_u64(),
            MemoryKind::Ddr4,
            TechnologyNode::Nm45,
        );
        let big = DsaConfig::square(
            128,
            Bytes::from_mib(4).as_u64(),
            MemoryKind::Ddr4,
            TechnologyNode::Nm45,
        );
        assert!((big.peak_ops_per_sec() / small.peak_ops_per_sec() - 64.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bandwidths_match_table() {
        assert!((MemoryKind::Ddr4.bandwidth().as_gbps() - 19.2).abs() < 1e-9);
        assert!((MemoryKind::Ddr5.bandwidth().as_gbps() - 38.0).abs() < 1e-9);
        assert!((MemoryKind::Hbm2.bandwidth().as_gbps() - 460.0).abs() < 1e-9);
    }

    #[test]
    fn hbm_costs_more_static_power_but_less_energy_per_byte() {
        assert!(MemoryKind::Hbm2.static_power_watts() > MemoryKind::Ddr4.static_power_watts());
        assert!(MemoryKind::Hbm2.energy_pj_per_byte() < MemoryKind::Ddr4.energy_pj_per_byte());
    }

    #[test]
    fn tiny_buffer_rejected() {
        let c = DsaConfig::square(1024, 1024, MemoryKind::Ddr4, TechnologyNode::Nm45);
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BufferTooSmall { .. })
        ));
    }

    #[test]
    fn bytes_per_cycle_relates_bandwidth_and_clock() {
        let c = DsaConfig::paper_optimal();
        assert!((c.bytes_per_cycle() - 38.0).abs() < 1e-9);
    }

    #[test]
    fn display_labels_are_informative() {
        let c = DsaConfig::paper_optimal_45nm();
        let s = format!("{c}");
        assert!(s.contains("Dim128-4MB-DDR5"));
        assert!(s.contains("45nm"));
    }
}
