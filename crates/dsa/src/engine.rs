//! Cycle models of the DSA's execution engines.
//!
//! * [`MpuModel`] — the systolic-array Matrix Processing Unit. A GEMM tile of
//!   size `m x k x n` is executed as a weight-stationary pass: weights for an
//!   `rows x cols` sub-tile are pre-loaded, activations stream through the
//!   array one row per cycle, and partial sums cascade down the columns. The
//!   cycle cost is the streaming depth plus pipeline fill/drain, repeated for
//!   every sub-tile of the larger tile.
//! * [`VpuModel`] — the SIMD Vector Processing Unit: `lanes` operations per
//!   cycle plus a small issue overhead per tile.
//! * [`DmaModel`] — the DMA engine between drive DRAM and the scratchpad:
//!   bandwidth-limited transfer plus a fixed setup cost.

use serde::{Deserialize, Serialize};

use crate::config::DsaConfig;

/// Fixed DMA setup cost per transfer (descriptor fetch, address translation).
const DMA_SETUP_CYCLES: u64 = 60;
/// Per-tile issue/drain overhead of the VPU.
const VPU_ISSUE_CYCLES: u64 = 8;

/// Systolic-array cycle model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MpuModel {
    rows: u64,
    cols: u64,
}

impl MpuModel {
    /// Builds the MPU model from a configuration.
    pub fn new(config: &DsaConfig) -> Self {
        MpuModel {
            rows: config.array_rows,
            cols: config.array_cols,
        }
    }

    /// Cycles to execute a GEMM tile of `m x k x n`.
    ///
    /// The tile is decomposed into ceil(k/rows) x ceil(n/cols) weight
    /// sub-tiles. For each sub-tile the array streams `m` activation rows, and
    /// pays a fill/drain latency of `rows + cols` cycles, plus the weight
    /// pre-load of `rows` cycles (overlapped with the previous sub-tile's drain
    /// in steady state, so charged at half).
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn gemm_cycles(&self, m: u64, k: u64, n: u64) -> u64 {
        assert!(
            m > 0 && k > 0 && n > 0,
            "GEMM tile dimensions must be positive"
        );
        let k_tiles = k.div_ceil(self.rows);
        let n_tiles = n.div_ceil(self.cols);
        let fill_drain = self.rows + self.cols;
        let preload = self.rows / 2;
        k_tiles * n_tiles * (m + fill_drain + preload)
    }

    /// Utilisation of the MAC array for a tile: useful MACs over provisioned
    /// MAC-cycles. Small or skinny tiles underutilise a large array, which is
    /// exactly why the 1024x1024 configuration loses to 128x128 at batch 1.
    pub fn utilization(&self, m: u64, k: u64, n: u64) -> f64 {
        let useful = (m * k * n) as f64;
        let provisioned = (self.gemm_cycles(m, k, n) * self.rows * self.cols) as f64;
        (useful / provisioned).min(1.0)
    }
}

/// SIMD vector-unit cycle model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VpuModel {
    lanes: u64,
}

impl VpuModel {
    /// Builds the VPU model from a configuration.
    pub fn new(config: &DsaConfig) -> Self {
        VpuModel {
            lanes: config.vpu_lanes(),
        }
    }

    /// Cycles to execute `elements` values with `ops_per_element` operations each.
    ///
    /// # Panics
    /// Panics if `elements` is zero.
    pub fn vector_cycles(&self, elements: u64, ops_per_element: u64) -> u64 {
        assert!(elements > 0, "vector tile must have elements");
        let total_ops = elements * ops_per_element.max(1);
        total_ops.div_ceil(self.lanes) + VPU_ISSUE_CYCLES
    }
}

/// DMA engine cycle model (drive DRAM <-> scratchpad).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DmaModel {
    bytes_per_cycle: f64,
}

impl DmaModel {
    /// Builds the DMA model from a configuration.
    pub fn new(config: &DsaConfig) -> Self {
        DmaModel {
            bytes_per_cycle: config.bytes_per_cycle(),
        }
    }

    /// Cycles to transfer `bytes` between DRAM and the scratchpad.
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        (bytes as f64 / self.bytes_per_cycle).ceil() as u64 + DMA_SETUP_CYCLES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DsaConfig, MemoryKind, TechnologyNode};
    use dscs_simcore::quantity::Bytes;

    fn cfg(dim: u64) -> DsaConfig {
        DsaConfig::square(
            dim,
            Bytes::from_mib(4).as_u64(),
            MemoryKind::Ddr5,
            TechnologyNode::Nm45,
        )
    }

    #[test]
    fn native_tile_costs_stream_plus_fill() {
        let mpu = MpuModel::new(&cfg(128));
        // One 128x128 weight sub-tile, 128 activation rows.
        let cycles = mpu.gemm_cycles(128, 128, 128);
        assert_eq!(cycles, 128 + 256 + 64);
    }

    #[test]
    fn large_tiles_decompose_into_subtiles() {
        let mpu = MpuModel::new(&cfg(128));
        let one = mpu.gemm_cycles(128, 128, 128);
        let four = mpu.gemm_cycles(128, 256, 256);
        assert_eq!(four, 4 * one);
    }

    #[test]
    fn small_gemm_underutilises_big_array() {
        let small_array = MpuModel::new(&cfg(128));
        let big_array = MpuModel::new(&cfg(1024));
        let util_small = small_array.utilization(1, 512, 512);
        let util_big = big_array.utilization(1, 512, 512);
        assert!(util_small > util_big, "{util_small} vs {util_big}");
    }

    #[test]
    fn batch_one_favours_moderate_arrays() {
        // A skinny batch-1 GEMM (m=1) should not run faster on a 1024-wide
        // array than the fill/drain cost allows — this is the effect that makes
        // Dim128 the paper's optimum.
        let gemm = |dim: u64| MpuModel::new(&cfg(dim)).gemm_cycles(1, 4096, 4096);
        let c128 = gemm(128);
        let c1024 = gemm(1024);
        // The 1024 array uses 64x fewer sub-tiles but pays 8x the fill/drain,
        // so its advantage collapses to well under the 64x PE ratio.
        let speedup = c128 as f64 / c1024 as f64;
        assert!(speedup < 16.0, "speedup {speedup}");
    }

    #[test]
    fn vpu_cycles_scale_with_lanes() {
        let narrow = VpuModel::new(&cfg(32));
        let wide = VpuModel::new(&cfg(128));
        let e = 1 << 20;
        assert!(narrow.vector_cycles(e, 1) > wide.vector_cycles(e, 1));
    }

    #[test]
    fn vpu_charges_issue_overhead() {
        let vpu = VpuModel::new(&cfg(128));
        assert_eq!(vpu.vector_cycles(1, 1), 1 + 8);
    }

    #[test]
    fn dma_is_bandwidth_limited() {
        let dma = DmaModel::new(&cfg(128));
        let cycles = dma.transfer_cycles(38_000);
        // DDR5 at 1 GHz moves 38 bytes/cycle -> 1000 cycles + setup.
        assert_eq!(cycles, 1000 + 60);
        assert_eq!(dma.transfer_cycles(0), 0);
    }

    #[test]
    fn hbm_dma_is_faster_than_ddr4() {
        let hbm = DmaModel::new(&DsaConfig::square(
            128,
            Bytes::from_mib(4).as_u64(),
            MemoryKind::Hbm2,
            TechnologyNode::Nm45,
        ));
        let ddr4 = DmaModel::new(&DsaConfig::square(
            128,
            Bytes::from_mib(4).as_u64(),
            MemoryKind::Ddr4,
            TechnologyNode::Nm45,
        ));
        let bytes = 1 << 22;
        assert!(hbm.transfer_cycles(bytes) * 10 < ddr4.transfer_cycles(bytes));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_gemm_dim_panics() {
        MpuModel::new(&cfg(128)).gemm_cycles(0, 1, 1);
    }
}
