//! Program execution: the cycle-level simulator.
//!
//! The executor walks a compiled [`Program`] and models the double-buffered
//! overlap the real DSA (and the paper's compiler) relies on: while tile *i*
//! computes on the MPU/VPU, the DMA engine prefetches tile *i + 1*. A `Sync`
//! instruction (emitted by the compiler at fusion-group boundaries) forces the
//! outstanding compute and memory streams to drain before continuing.
//!
//! The paper validates its cycle-accurate simulator against the SmartSSD FPGA
//! prototype to within 10 %; this model reproduces the same first-order
//! behaviour — per-tile `max(compute, memory)` with fill/drain overheads — and
//! is the basis of every DSA performance number downstream.

use serde::{Deserialize, Serialize};

use dscs_simcore::quantity::Joules;
use dscs_simcore::time::SimDuration;

use crate::config::DsaConfig;
use crate::engine::{DmaModel, MpuModel, VpuModel};
use crate::isa::{Instruction, Program};
use crate::power::{EnergyBreakdown, PowerModel};

/// Result of executing one program on one DSA configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Total cycles from first instruction issue to last completion.
    pub total_cycles: u64,
    /// Cycles in which the MPU or VPU was computing.
    pub compute_cycles: u64,
    /// Cycles of DMA activity (may overlap compute).
    pub memory_cycles: u64,
    /// Cycles the compute units spent stalled waiting for memory.
    pub stall_cycles: u64,
    /// Total arithmetic operations executed.
    pub total_ops: u64,
    /// Total DMA bytes moved.
    pub dma_bytes: u64,
    /// Energy breakdown for the execution.
    pub energy: EnergyBreakdown,
    /// Clock frequency in MHz used to convert cycles to time.
    clock_mhz: u64,
}

impl ExecutionReport {
    /// Wall-clock execution latency.
    pub fn latency(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.total_cycles as f64 / (self.clock_mhz as f64 * 1e6))
    }

    /// Total energy consumed.
    pub fn total_energy(&self) -> Joules {
        self.energy.total()
    }

    /// Average power over the execution.
    pub fn average_power_watts(&self) -> f64 {
        let secs = self.latency().as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.total_energy().as_f64() / secs
    }

    /// Fraction of cycles where compute was stalled on memory.
    pub fn stall_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.stall_cycles as f64 / self.total_cycles as f64
    }

    /// Achieved operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.latency().as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.total_ops as f64 / secs
    }
}

/// Execution policy for the memory/compute overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverlapPolicy {
    /// Double-buffered: DMA for the next tile overlaps the current compute
    /// (the DSA's normal mode and the compiler's assumption).
    DoubleBuffered,
    /// No overlap: every transfer completes before compute starts. Used by the
    /// ablation bench to quantify the value of double buffering.
    Sequential,
}

/// Executes programs against one DSA configuration.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    config: DsaConfig,
    mpu: MpuModel,
    vpu: VpuModel,
    dma: DmaModel,
    power: PowerModel,
    policy: OverlapPolicy,
}

impl Executor {
    /// Creates an executor with double-buffered overlap (the default).
    pub fn new(config: DsaConfig) -> Self {
        Self::with_policy(config, OverlapPolicy::DoubleBuffered)
    }

    /// Creates an executor with an explicit overlap policy.
    pub fn with_policy(config: DsaConfig, policy: OverlapPolicy) -> Self {
        Executor {
            config,
            mpu: MpuModel::new(&config),
            vpu: VpuModel::new(&config),
            dma: DmaModel::new(&config),
            power: PowerModel::new(config),
            policy,
        }
    }

    /// The configuration this executor models.
    pub fn config(&self) -> &DsaConfig {
        &self.config
    }

    /// Executes `program` and returns the cycle/energy report.
    pub fn run(&self, program: &Program) -> ExecutionReport {
        // Two virtual timelines: when the DMA engine frees up, and when the
        // compute units free up. Double buffering lets a load begin as soon as
        // the DMA engine is free; compute for that tile must wait for both its
        // load and the previous compute.
        let mut dma_free: u64 = 0;
        let mut compute_free: u64 = 0;
        let mut compute_cycles: u64 = 0;
        let mut memory_cycles: u64 = 0;
        let mut stall_cycles: u64 = 0;
        let mut mpu_ops: u64 = 0;
        let mut vpu_ops: u64 = 0;
        let mut pending_load_done: u64 = 0;

        for instr in program.instructions() {
            match *instr {
                Instruction::LoadTile { bytes } => {
                    let cycles = self.dma.transfer_cycles(bytes);
                    memory_cycles += cycles;
                    let start = match self.policy {
                        OverlapPolicy::DoubleBuffered => dma_free,
                        OverlapPolicy::Sequential => dma_free.max(compute_free),
                    };
                    dma_free = start + cycles;
                    pending_load_done = pending_load_done.max(dma_free);
                }
                Instruction::StoreTile { bytes } => {
                    let cycles = self.dma.transfer_cycles(bytes);
                    memory_cycles += cycles;
                    // A store can only begin once the producing compute finished.
                    let start = match self.policy {
                        OverlapPolicy::DoubleBuffered => dma_free.max(compute_free),
                        OverlapPolicy::Sequential => dma_free.max(compute_free),
                    };
                    dma_free = start + cycles;
                }
                Instruction::GemmTile { m, k, n } => {
                    let cycles = self.mpu.gemm_cycles(m, k, n);
                    compute_cycles += cycles;
                    mpu_ops += instr.ops();
                    let ready = compute_free.max(pending_load_done);
                    stall_cycles += ready.saturating_sub(compute_free);
                    compute_free = ready + cycles;
                }
                Instruction::VectorTile {
                    elements,
                    ops_per_element,
                } => {
                    let cycles = self.vpu.vector_cycles(elements, ops_per_element);
                    compute_cycles += cycles;
                    vpu_ops += instr.ops();
                    let ready = compute_free.max(pending_load_done);
                    stall_cycles += ready.saturating_sub(compute_free);
                    compute_free = ready + cycles;
                }
                Instruction::Sync => {
                    let drained = compute_free.max(dma_free);
                    compute_free = drained;
                    dma_free = drained;
                    pending_load_done = pending_load_done.max(drained);
                }
            }
        }

        let total_cycles = compute_free.max(dma_free);
        let dma_bytes = program.total_dma_bytes().as_u64();
        let total_ops = mpu_ops + vpu_ops;
        // SRAM sees every DMA byte once plus one read + one write per computed
        // value's operand traffic; approximate operand traffic as ops / 4 bytes
        // (int8 weight + activation reuse in the array).
        let sram_bytes = dma_bytes + total_ops / 4;
        let seconds = total_cycles as f64 / (self.config.clock_mhz as f64 * 1e6);
        let energy = EnergyBreakdown {
            mpu: self.power.mpu_energy(mpu_ops),
            vpu: self.power.vpu_energy(vpu_ops),
            sram: self.power.sram_energy(sram_bytes),
            dram: self.power.dram_energy(dma_bytes),
            leakage: self
                .power
                .leakage_power()
                .over(SimDuration::from_secs_f64(seconds)),
        };

        ExecutionReport {
            total_cycles,
            compute_cycles,
            memory_cycles,
            stall_cycles,
            total_ops,
            dma_bytes,
            energy,
            clock_mhz: self.config.clock_mhz,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instruction;

    fn tiled_program(tiles: usize, load_bytes: u64, m: u64, k: u64, n: u64) -> Program {
        let mut p = Program::new("tiles");
        for _ in 0..tiles {
            p.push(Instruction::load_tile(load_bytes));
            p.push(Instruction::gemm_tile(m, k, n));
        }
        p.push(Instruction::store_tile(load_bytes / 4));
        p
    }

    #[test]
    fn empty_program_is_free() {
        let report = Executor::new(DsaConfig::paper_optimal()).run(&Program::new("empty"));
        assert_eq!(report.total_cycles, 0);
        assert_eq!(report.total_ops, 0);
        assert_eq!(report.average_power_watts(), 0.0);
    }

    #[test]
    fn compute_bound_program_hides_memory() {
        // Small loads, big GEMMs: total should be close to compute time.
        let p = tiled_program(16, 4 * 1024, 256, 512, 512);
        let report = Executor::new(DsaConfig::paper_optimal()).run(&p);
        assert!(report.total_cycles < report.compute_cycles + report.memory_cycles);
        assert!(
            report.stall_fraction() < 0.2,
            "stalls {}",
            report.stall_fraction()
        );
    }

    #[test]
    fn memory_bound_program_stalls() {
        // Huge loads, tiny GEMMs on slow DDR4.
        let cfg = DsaConfig {
            memory: crate::config::MemoryKind::Ddr4,
            ..DsaConfig::paper_optimal()
        };
        let p = tiled_program(16, 4 * 1024 * 1024, 8, 128, 128);
        let report = Executor::new(cfg).run(&p);
        assert!(
            report.stall_fraction() > 0.5,
            "stalls {}",
            report.stall_fraction()
        );
    }

    #[test]
    fn double_buffering_beats_sequential() {
        let p = tiled_program(32, 512 * 1024, 128, 512, 512);
        let cfg = DsaConfig::paper_optimal();
        let overlapped = Executor::with_policy(cfg, OverlapPolicy::DoubleBuffered).run(&p);
        let sequential = Executor::with_policy(cfg, OverlapPolicy::Sequential).run(&p);
        assert!(sequential.total_cycles > overlapped.total_cycles);
    }

    #[test]
    fn sync_serialises_streams() {
        let mut with_sync = Program::new("sync");
        with_sync.push(Instruction::load_tile(1 << 20));
        with_sync.push(Instruction::Sync);
        with_sync.push(Instruction::gemm_tile(128, 128, 128));
        let mut without_sync = Program::new("nosync");
        without_sync.push(Instruction::load_tile(1 << 20));
        without_sync.push(Instruction::gemm_tile(128, 128, 128));
        let cfg = DsaConfig::paper_optimal();
        let a = Executor::new(cfg).run(&with_sync);
        let b = Executor::new(cfg).run(&without_sync);
        // With this simple two-instruction program both serialise identically,
        // but the sync must never make things faster.
        assert!(a.total_cycles >= b.total_cycles);
    }

    #[test]
    fn latency_respects_clock() {
        let mut p = Program::new("t");
        p.push(Instruction::gemm_tile(128, 128, 128));
        let report = Executor::new(DsaConfig::paper_optimal()).run(&p);
        let expected = report.total_cycles as f64 / 1e9;
        assert!((report.latency().as_secs_f64() - expected).abs() < 1e-12);
    }

    #[test]
    fn energy_scales_with_work() {
        let small = tiled_program(2, 64 * 1024, 128, 256, 256);
        let large = tiled_program(16, 64 * 1024, 128, 256, 256);
        let ex = Executor::new(DsaConfig::paper_optimal());
        let e_small = ex.run(&small).total_energy().as_f64();
        let e_large = ex.run(&large).total_energy().as_f64();
        assert!(e_large > 4.0 * e_small);
    }

    #[test]
    fn paper_config_power_is_storage_class() {
        // A sustained, fairly compute-dense workload on the 14 nm paper config
        // should land in single-digit watts (the paper reports 4.2 W for the
        // DSA), far below the 25 W drive budget.
        let p = tiled_program(64, 256 * 1024, 256, 1024, 1024);
        let report = Executor::new(DsaConfig::paper_optimal()).run(&p);
        let watts = report.average_power_watts();
        assert!((1.0..15.0).contains(&watts), "power {watts} W");
    }

    #[test]
    fn ops_accounting_matches_program() {
        let p = tiled_program(4, 1024, 64, 64, 64);
        let report = Executor::new(DsaConfig::paper_optimal()).run(&p);
        assert_eq!(report.total_ops, p.total_ops());
        assert_eq!(report.dma_bytes, p.total_dma_bytes().as_u64());
    }
}
