//! The tile-level instruction set targeted by the compiler.
//!
//! The compiler (in `dscs-compiler`) lowers a model graph into a sequence of
//! tile operations: DMA loads of weight/activation tiles into the scratchpad,
//! MPU GEMM tiles, VPU vector tiles, and DMA stores of results. The executor
//! models double-buffered overlap between consecutive loads and computes.

use serde::{Deserialize, Serialize};
use std::fmt;

use dscs_simcore::quantity::Bytes;

/// One tile-level instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instruction {
    /// DMA transfer of `bytes` from drive DRAM into the scratchpad.
    LoadTile {
        /// Bytes transferred.
        bytes: u64,
    },
    /// DMA transfer of `bytes` from the scratchpad back to drive DRAM.
    StoreTile {
        /// Bytes transferred.
        bytes: u64,
    },
    /// A GEMM tile of size `m x k x n` executed on the MPU.
    GemmTile {
        /// Tile rows (mapped onto array rows over multiple passes).
        m: u64,
        /// Reduction depth.
        k: u64,
        /// Tile columns.
        n: u64,
    },
    /// A vector tile of `elements` values with `ops_per_element` arithmetic
    /// operations each, executed on the VPU.
    VectorTile {
        /// Number of elements processed.
        elements: u64,
        /// Arithmetic operations per element.
        ops_per_element: u64,
    },
    /// A barrier: all outstanding tiles must complete before execution
    /// continues. Emitted between layers that cannot be overlapped.
    Sync,
}

impl Instruction {
    /// Convenience constructor for a load.
    pub fn load_tile(bytes: u64) -> Self {
        Instruction::LoadTile { bytes }
    }

    /// Convenience constructor for a store.
    pub fn store_tile(bytes: u64) -> Self {
        Instruction::StoreTile { bytes }
    }

    /// Convenience constructor for a GEMM tile.
    pub fn gemm_tile(m: u64, k: u64, n: u64) -> Self {
        Instruction::GemmTile { m, k, n }
    }

    /// Convenience constructor for a vector tile.
    pub fn vector_tile(elements: u64, ops_per_element: u64) -> Self {
        Instruction::VectorTile {
            elements,
            ops_per_element,
        }
    }

    /// Bytes moved between DRAM and the scratchpad by this instruction.
    pub fn dma_bytes(&self) -> u64 {
        match *self {
            Instruction::LoadTile { bytes } | Instruction::StoreTile { bytes } => bytes,
            _ => 0,
        }
    }

    /// Arithmetic operations performed by this instruction (MACs count as two).
    pub fn ops(&self) -> u64 {
        match *self {
            Instruction::GemmTile { m, k, n } => 2 * m * k * n,
            Instruction::VectorTile {
                elements,
                ops_per_element,
            } => elements * ops_per_element,
            _ => 0,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::LoadTile { bytes } => write!(f, "load {bytes}B"),
            Instruction::StoreTile { bytes } => write!(f, "store {bytes}B"),
            Instruction::GemmTile { m, k, n } => write!(f, "gemm {m}x{k}x{n}"),
            Instruction::VectorTile {
                elements,
                ops_per_element,
            } => write!(f, "vec {elements}x{ops_per_element}"),
            Instruction::Sync => write!(f, "sync"),
        }
    }
}

/// A compiled program: an ordered instruction stream plus bookkeeping totals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    name: String,
    instructions: Vec<Instruction>,
}

impl Program {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            instructions: Vec::new(),
        }
    }

    /// The program name (usually the model name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends an instruction.
    pub fn push(&mut self, instruction: Instruction) {
        self.instructions.push(instruction);
    }

    /// The instruction stream.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Total DMA traffic between drive DRAM and the scratchpad.
    pub fn total_dma_bytes(&self) -> Bytes {
        Bytes::new(self.instructions.iter().map(Instruction::dma_bytes).sum())
    }

    /// Total arithmetic operations.
    pub fn total_ops(&self) -> u64 {
        self.instructions.iter().map(Instruction::ops).sum()
    }

    /// Number of GEMM tiles (useful to sanity-check tiling decisions).
    pub fn gemm_tile_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i, Instruction::GemmTile { .. }))
            .count()
    }
}

impl Extend<Instruction> for Program {
    fn extend<T: IntoIterator<Item = Instruction>>(&mut self, iter: T) {
        self.instructions.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_accounting() {
        assert_eq!(Instruction::load_tile(100).dma_bytes(), 100);
        assert_eq!(Instruction::store_tile(50).dma_bytes(), 50);
        assert_eq!(Instruction::gemm_tile(2, 3, 4).ops(), 48);
        assert_eq!(Instruction::vector_tile(10, 4).ops(), 40);
        assert_eq!(Instruction::Sync.ops(), 0);
        assert_eq!(Instruction::Sync.dma_bytes(), 0);
    }

    #[test]
    fn program_totals() {
        let mut p = Program::new("t");
        p.push(Instruction::load_tile(128));
        p.push(Instruction::gemm_tile(4, 4, 4));
        p.push(Instruction::vector_tile(16, 1));
        p.push(Instruction::store_tile(64));
        assert_eq!(p.total_dma_bytes().as_u64(), 192);
        assert_eq!(p.total_ops(), 2 * 64 + 16);
        assert_eq!(p.gemm_tile_count(), 1);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn program_extend_appends() {
        let mut p = Program::new("t");
        p.extend([Instruction::Sync, Instruction::Sync]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(format!("{}", Instruction::gemm_tile(1, 2, 3)), "gemm 1x2x3");
        assert_eq!(format!("{}", Instruction::load_tile(8)), "load 8B");
    }
}
