//! # dscs-dsa
//!
//! Cycle, power and area models of the in-storage **Domain-Specific
//! Accelerator (DSA)** described in Section 4 of the DSCS-Serverless paper.
//!
//! The DSA couples a systolic-array **Matrix Processing Unit (MPU)** with a
//! SIMD **Vector Processing Unit (VPU)** through shared multi-bank scratchpad
//! buffers, and talks to the drive's DRAM through a DMA engine. The accelerator
//! executes tiled programs: tiles of weights/activations are streamed into the
//! on-chip buffers while the previous tile computes (double buffering), so the
//! effective latency of a layer is `max(compute, memory)` per tile plus
//! pipeline fill/drain.
//!
//! The crate is organised as:
//!
//! * [`config`] — accelerator configuration points (array dimensions, buffer
//!   capacity, memory technology, clock, technology node) including the
//!   paper's chosen 128x128 / 4 MiB / DDR5 design.
//! * [`isa`] — the tile-level instruction set the compiler targets.
//! * [`engine`] — MPU, VPU and DMA cycle models.
//! * [`executor`] — executes a compiled [`isa::Program`] against a
//!   configuration and reports cycles, stalls and energy.
//! * [`power`] — component-level energy/power/area models at 45 nm
//!   (Synopsys-DC-plus-CACTI-style coefficients).
//! * [`scaling`] — DeepScaleTool-style technology scaling from 45 nm to the
//!   SmartSSD-class 14 nm node.
//!
//! # Example
//!
//! ```
//! use dscs_dsa::config::DsaConfig;
//! use dscs_dsa::isa::{Instruction, Program};
//! use dscs_dsa::executor::Executor;
//!
//! let config = DsaConfig::paper_optimal();
//! let mut program = Program::new("demo");
//! program.push(Instruction::load_tile(256 * 1024));
//! program.push(Instruction::gemm_tile(128, 128, 128));
//! program.push(Instruction::store_tile(64 * 1024));
//! let report = Executor::new(config).run(&program);
//! assert!(report.total_cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod executor;
pub mod isa;
pub mod power;
pub mod scaling;

pub use config::{DsaConfig, MemoryKind, TechnologyNode};
pub use executor::{ExecutionReport, Executor};
pub use isa::{Instruction, Program};
pub use power::{AreaModel, EnergyBreakdown, PowerModel};
pub use scaling::ScalingFactors;
