//! Component-level power, energy and area models.
//!
//! The paper obtains logic power from Synopsys Design Compiler synthesis at
//! 45 nm and SRAM energy from CACTI-P, then scales to 14 nm. We use published
//! per-operation energy coefficients for the same structures at 45 nm and apply
//! the same scaling. The absolute values land the paper's chosen configuration
//! (128x128, 4 MiB, DDR5) at roughly 4 W of accelerator power at 14 nm and a
//! few tens of watts at 45 nm, matching the DSE figures' range.

use serde::{Deserialize, Serialize};

use dscs_simcore::quantity::{AreaMm2, Joules, Watts};

use crate::config::DsaConfig;

/// Energy per int8 MAC at 45 nm, in picojoules (MAC + local register movement).
const MAC_ENERGY_PJ_45NM: f64 = 0.9;
/// Energy per VPU (fp16-class) lane operation at 45 nm, in picojoules.
const VECTOR_OP_ENERGY_PJ_45NM: f64 = 1.6;
/// Energy per byte of scratchpad SRAM access at 45 nm, in picojoules.
const SRAM_ENERGY_PJ_PER_BYTE_45NM: f64 = 1.2;
/// Leakage power per PE at 45 nm, in microwatts.
const PE_LEAKAGE_UW_45NM: f64 = 18.0;
/// Leakage power per KiB of SRAM at 45 nm, in microwatts.
const SRAM_LEAKAGE_UW_PER_KIB_45NM: f64 = 9.0;
/// Area per PE at 45 nm in square micrometres (8-bit MAC + registers).
const PE_AREA_UM2_45NM: f64 = 2_800.0;
/// Area per KiB of SRAM at 45 nm in square micrometres.
const SRAM_AREA_UM2_PER_KIB_45NM: f64 = 5_500.0;
/// Fixed controller / DMA / NoC area at 45 nm in mm².
const UNCORE_AREA_MM2_45NM: f64 = 4.0;
/// Fixed controller / DMA / NoC leakage at 45 nm in watts.
const UNCORE_LEAKAGE_W_45NM: f64 = 0.25;

/// Energy consumed by one program execution, broken down by component.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// MAC-array switching energy.
    pub mpu: Joules,
    /// Vector-unit switching energy.
    pub vpu: Joules,
    /// Scratchpad SRAM access energy.
    pub sram: Joules,
    /// Drive-DRAM access energy (DMA traffic).
    pub dram: Joules,
    /// Leakage energy over the execution interval.
    pub leakage: Joules,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> Joules {
        self.mpu + self.vpu + self.sram + self.dram + self.leakage
    }
}

/// Power/energy model for one DSA configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    config: DsaConfig,
}

impl PowerModel {
    /// Builds the power model for a configuration.
    pub fn new(config: DsaConfig) -> Self {
        PowerModel { config }
    }

    /// Switching energy for `mac_ops` MAC-array operations (ops = 2 x MACs).
    pub fn mpu_energy(&self, ops: u64) -> Joules {
        let scale = self.config.node.scaling().dynamic_energy;
        Joules::new(ops as f64 / 2.0 * MAC_ENERGY_PJ_45NM * 1e-12 * scale)
    }

    /// Switching energy for `ops` vector-unit operations.
    pub fn vpu_energy(&self, ops: u64) -> Joules {
        let scale = self.config.node.scaling().dynamic_energy;
        Joules::new(ops as f64 * VECTOR_OP_ENERGY_PJ_45NM * 1e-12 * scale)
    }

    /// Energy for `bytes` of scratchpad traffic.
    pub fn sram_energy(&self, bytes: u64) -> Joules {
        let scale = self.config.node.scaling().dynamic_energy;
        Joules::new(bytes as f64 * SRAM_ENERGY_PJ_PER_BYTE_45NM * 1e-12 * scale)
    }

    /// Energy for `bytes` of drive-DRAM traffic (DMA loads/stores).
    pub fn dram_energy(&self, bytes: u64) -> Joules {
        // DRAM energy does not scale with the logic node.
        Joules::new(bytes as f64 * self.config.memory.energy_pj_per_byte() * 1e-12)
    }

    /// Total leakage (static) power of the accelerator.
    pub fn leakage_power(&self) -> Watts {
        let scaling = self.config.node.scaling().leakage_power;
        let pe = self.config.pe_count() as f64 * PE_LEAKAGE_UW_45NM * 1e-6;
        let sram_kib = self.config.buffer_bytes as f64 / 1024.0;
        let sram = sram_kib * SRAM_LEAKAGE_UW_PER_KIB_45NM * 1e-6;
        Watts::new(
            (pe + sram + UNCORE_LEAKAGE_W_45NM) * scaling + self.config.memory.static_power_watts(),
        )
    }

    /// Average power when `energy` is dissipated over `seconds`.
    ///
    /// # Panics
    /// Panics if `seconds` is not strictly positive.
    pub fn average_power(&self, energy: Joules, seconds: f64) -> Watts {
        assert!(seconds > 0.0, "interval must be positive");
        Watts::new(energy.as_f64() / seconds)
    }
}

/// Area model for one DSA configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    config: DsaConfig,
}

impl AreaModel {
    /// Builds the area model for a configuration.
    pub fn new(config: DsaConfig) -> Self {
        AreaModel { config }
    }

    /// MAC-array area.
    pub fn mpu_area(&self) -> AreaMm2 {
        let scale = self.config.node.scaling().area;
        AreaMm2::new(self.config.pe_count() as f64 * PE_AREA_UM2_45NM * 1e-6 * scale)
    }

    /// Scratchpad area.
    pub fn sram_area(&self) -> AreaMm2 {
        let scale = self.config.node.scaling().area;
        let kib = self.config.buffer_bytes as f64 / 1024.0;
        AreaMm2::new(kib * SRAM_AREA_UM2_PER_KIB_45NM * 1e-6 * scale)
    }

    /// Vector unit plus uncore (controllers, DMA, NoC) area.
    pub fn uncore_area(&self) -> AreaMm2 {
        let scale = self.config.node.scaling().area;
        // The VPU is one row of vector engines; charge it like one array row
        // of PEs at double width plus the fixed uncore.
        let vpu = 2.0 * self.config.vpu_lanes() as f64 * PE_AREA_UM2_45NM * 1e-6;
        AreaMm2::new((vpu + UNCORE_AREA_MM2_45NM) * scale)
    }

    /// Total die area of the DSA.
    pub fn total(&self) -> AreaMm2 {
        self.mpu_area() + self.sram_area() + self.uncore_area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DsaConfig, MemoryKind, TechnologyNode};
    use dscs_simcore::quantity::Bytes;

    #[test]
    fn paper_config_leakage_within_drive_budget() {
        let p = PowerModel::new(DsaConfig::paper_optimal());
        let leak = p.leakage_power().as_f64();
        assert!(leak < 3.0, "leakage {leak} W");
    }

    #[test]
    fn peak_dynamic_power_at_45nm_is_tens_of_watts() {
        let cfg = DsaConfig::paper_optimal_45nm();
        let p = PowerModel::new(cfg);
        // One second of fully-utilised MACs.
        let ops = cfg.peak_ops_per_sec() as u64;
        let dynamic = p.mpu_energy(ops).as_f64();
        assert!(
            (5.0..60.0).contains(&dynamic),
            "dynamic {dynamic} W at 45nm"
        );
    }

    #[test]
    fn scaling_to_14nm_cuts_dynamic_energy() {
        let ops = 1_000_000_000;
        let e45 = PowerModel::new(DsaConfig::paper_optimal_45nm()).mpu_energy(ops);
        let e14 = PowerModel::new(DsaConfig::paper_optimal()).mpu_energy(ops);
        let ratio = e14.as_f64() / e45.as_f64();
        assert!((0.1..0.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn dram_energy_ignores_logic_node() {
        let bytes = 1 << 20;
        let e45 = PowerModel::new(DsaConfig::paper_optimal_45nm()).dram_energy(bytes);
        let e14 = PowerModel::new(DsaConfig::paper_optimal()).dram_energy(bytes);
        assert_eq!(e45, e14);
    }

    #[test]
    fn energy_breakdown_totals() {
        let b = EnergyBreakdown {
            mpu: Joules::new(1.0),
            vpu: Joules::new(2.0),
            sram: Joules::new(3.0),
            dram: Joules::new(4.0),
            leakage: Joules::new(5.0),
        };
        assert!((b.total().as_f64() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn area_grows_with_array_and_buffer() {
        let small = AreaModel::new(DsaConfig::square(
            32,
            Bytes::from_mib(1).as_u64(),
            MemoryKind::Ddr4,
            TechnologyNode::Nm45,
        ));
        let big = AreaModel::new(DsaConfig::square(
            1024,
            Bytes::from_mib(32).as_u64(),
            MemoryKind::Ddr4,
            TechnologyNode::Nm45,
        ));
        assert!(big.total().as_f64() > 50.0 * small.total().as_f64());
    }

    #[test]
    fn paper_area_range_matches_figure_8_scale() {
        // Figure 8 spans up to ~8000 mm^2 at 45 nm for the 1024x1024/32MB point;
        // the selected 128x128/4MB point sits well under 200 mm^2.
        let big = AreaModel::new(DsaConfig::square(
            1024,
            Bytes::from_mib(32).as_u64(),
            MemoryKind::Hbm2,
            TechnologyNode::Nm45,
        ));
        assert!(big.total().as_f64() > 1_000.0);
        let chosen = AreaModel::new(DsaConfig::paper_optimal_45nm());
        assert!(
            chosen.total().as_f64() < 400.0,
            "chosen {} mm2",
            chosen.total()
        );
    }

    #[test]
    fn average_power_divides_energy_by_time() {
        let p = PowerModel::new(DsaConfig::paper_optimal());
        let w = p.average_power(Joules::new(2.0), 4.0);
        assert!((w.as_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_power_panics() {
        let p = PowerModel::new(DsaConfig::paper_optimal());
        let _ = p.average_power(Joules::new(1.0), 0.0);
    }
}
