//! Technology-node scaling.
//!
//! The paper synthesizes the DSA with the open FreePDK 45 nm library and then
//! scales power and area to 14 nm (the SmartSSD-class node) following the
//! DeepScaleTool methodology. We capture that as a pair of multiplicative
//! factors applied to the 45 nm component models; the published DeepScaleTool
//! ratios for 45 nm → 14 nm are roughly 7.5x area density and 5-6x switching
//! energy improvement, with leakage improving a little less.

use serde::{Deserialize, Serialize};

/// Multiplicative factors relative to the 45 nm baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingFactors {
    /// Dynamic (switching) energy multiplier.
    pub dynamic_energy: f64,
    /// Leakage power multiplier.
    pub leakage_power: f64,
    /// Area multiplier.
    pub area: f64,
}

impl ScalingFactors {
    /// No scaling (stay at 45 nm).
    pub fn identity() -> Self {
        ScalingFactors {
            dynamic_energy: 1.0,
            leakage_power: 1.0,
            area: 1.0,
        }
    }

    /// DeepScaleTool-style factors for 45 nm → 14 nm.
    pub fn nm45_to_nm14() -> Self {
        ScalingFactors {
            dynamic_energy: 0.18,
            leakage_power: 0.30,
            area: 0.133,
        }
    }

    /// Validates that all factors are positive and finite.
    pub fn is_valid(&self) -> bool {
        [self.dynamic_energy, self.leakage_power, self.area]
            .iter()
            .all(|f| *f > 0.0 && f.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_one() {
        let s = ScalingFactors::identity();
        assert_eq!(s.dynamic_energy, 1.0);
        assert_eq!(s.leakage_power, 1.0);
        assert_eq!(s.area, 1.0);
        assert!(s.is_valid());
    }

    #[test]
    fn scaled_node_improves_everything() {
        let s = ScalingFactors::nm45_to_nm14();
        assert!(s.dynamic_energy < 1.0);
        assert!(s.leakage_power < 1.0);
        assert!(s.area < 1.0);
        assert!(s.is_valid());
    }

    #[test]
    fn dynamic_energy_improves_more_than_leakage() {
        let s = ScalingFactors::nm45_to_nm14();
        assert!(s.dynamic_energy < s.leakage_power);
    }
}
