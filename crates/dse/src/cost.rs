//! CAPEX/OPEX cost-efficiency model (Figure 12).
//!
//! Following the paper (which follows E3 and ASIC Clouds):
//!
//! ```text
//! cost efficiency = throughput x T / (CAPEX + OPEX)
//! ```
//!
//! CAPEX is the purchase price of the processing units, server share, storage
//! and networking. OPEX is the electricity (including cooling overhead) over
//! the ownership period at a utilisation rate. The paper uses a three-year
//! period, 30 % utilisation and the 2023 average U.S. industrial electricity
//! rate of $0.0975/kWh.

use serde::{Deserialize, Serialize};

use dscs_simcore::quantity::{AreaMm2, Dollars, Watts};

/// Ownership-period parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParameters {
    /// Ownership period in years.
    pub years: f64,
    /// Average utilisation over the period.
    pub utilization: f64,
    /// Electricity price in dollars per kWh.
    pub dollars_per_kwh: f64,
    /// Power usage effectiveness (cooling and distribution overhead).
    pub pue: f64,
}

impl Default for CostParameters {
    fn default() -> Self {
        CostParameters {
            years: 3.0,
            utilization: 0.30,
            dollars_per_kwh: 0.0975,
            pue: 1.5,
        }
    }
}

impl CostParameters {
    /// Total active-operation seconds over the ownership period.
    pub fn active_seconds(&self) -> f64 {
        self.years * 365.25 * 24.0 * 3600.0 * self.utilization
    }

    /// Electricity cost of drawing `power` whenever active over the period.
    pub fn opex(&self, power: Watts) -> Dollars {
        let kwh = power.as_f64() * self.pue * self.active_seconds() / 3600.0 / 1000.0;
        Dollars::new(kwh * self.dollars_per_kwh)
    }

    /// Cost efficiency: total requests served over the period divided by the
    /// total cost of ownership.
    ///
    /// # Panics
    /// Panics if throughput is not positive and finite.
    pub fn cost_efficiency(&self, throughput_rps: f64, power: Watts, capex: Dollars) -> f64 {
        assert!(
            throughput_rps > 0.0 && throughput_rps.is_finite(),
            "throughput must be positive"
        );
        let total_requests = throughput_rps * self.active_seconds();
        let total_cost = capex + self.opex(power);
        total_requests / total_cost.as_f64()
    }
}

/// ASIC fabrication cost estimate in the style of ASIC Clouds: wafer cost
/// amortised over dies (with yield) plus packaging/test, plus an NRE share.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsicCostModel {
    /// Cost of one processed 300 mm wafer in dollars.
    pub wafer_cost: Dollars,
    /// Usable wafer area in mm².
    pub wafer_area_mm2: f64,
    /// Die yield (fraction of good dies).
    pub yield_fraction: f64,
    /// Packaging, test and margin per good die.
    pub package_and_test: Dollars,
    /// Non-recurring engineering cost amortised over the production volume.
    pub nre: Dollars,
    /// Production volume the NRE is spread over.
    pub volume: f64,
}

impl Default for AsicCostModel {
    fn default() -> Self {
        AsicCostModel {
            wafer_cost: Dollars::new(4_000.0),
            wafer_area_mm2: 70_000.0,
            yield_fraction: 0.85,
            package_and_test: Dollars::new(18.0),
            nre: Dollars::new(6_000_000.0),
            volume: 100_000.0,
        }
    }
}

impl AsicCostModel {
    /// Estimated unit cost of a die of the given area.
    ///
    /// # Panics
    /// Panics if the area is zero.
    pub fn die_cost(&self, area: AreaMm2) -> Dollars {
        assert!(area.as_f64() > 0.0, "die area must be positive");
        let dies_per_wafer = (self.wafer_area_mm2 / area.as_f64()).floor().max(1.0);
        let silicon = self.wafer_cost.as_f64() / (dies_per_wafer * self.yield_fraction);
        let nre_share = self.nre.as_f64() / self.volume;
        Dollars::new(silicon) + self.package_and_test + Dollars::new(nre_share)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_seconds_reflect_utilisation() {
        let p = CostParameters::default();
        let expected = 3.0 * 365.25 * 24.0 * 3600.0 * 0.30;
        assert!((p.active_seconds() - expected).abs() < 1.0);
    }

    #[test]
    fn opex_matches_hand_calculation() {
        let p = CostParameters {
            years: 1.0,
            utilization: 1.0,
            dollars_per_kwh: 0.10,
            pue: 1.0,
        };
        // 1 kW for one year = 8766 kWh (365.25 days) -> $876.6.
        let opex = p.opex(Watts::new(1000.0));
        assert!((opex.as_f64() - 876.6).abs() < 1.0, "opex {opex}");
    }

    #[test]
    fn low_power_improves_cost_efficiency_over_time() {
        let p = CostParameters::default();
        // Same throughput and CAPEX, different power.
        let efficient = p.cost_efficiency(10.0, Watts::new(10.0), Dollars::new(1000.0));
        let hungry = p.cost_efficiency(10.0, Watts::new(250.0), Dollars::new(1000.0));
        assert!(efficient > hungry);
    }

    #[test]
    fn cost_efficiency_scales_with_throughput() {
        let p = CostParameters::default();
        let slow = p.cost_efficiency(1.0, Watts::new(50.0), Dollars::new(2000.0));
        let fast = p.cost_efficiency(4.0, Watts::new(50.0), Dollars::new(2000.0));
        assert!((fast / slow - 4.0).abs() < 1e-9);
    }

    #[test]
    fn asic_die_cost_grows_with_area_and_stays_storage_class() {
        let model = AsicCostModel::default();
        let small = model.die_cost(AreaMm2::new(30.0));
        let large = model.die_cost(AreaMm2::new(600.0));
        assert!(large.as_f64() > small.as_f64());
        // A ~30 mm^2 14 nm DSA die should cost tens of dollars, not thousands.
        assert!(small.as_f64() < 150.0, "die cost {small}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_throughput_rejected() {
        let _ = CostParameters::default().cost_efficiency(0.0, Watts::new(1.0), Dollars::new(1.0));
    }
}
