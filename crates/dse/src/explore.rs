//! Design-point evaluation and Pareto frontiers (Figures 7 and 8).
//!
//! Each configuration is evaluated by compiling a set of representative
//! benchmark models and running them on the DSA cycle simulator; the metric is
//! average throughput (inferences per second), and the costs are the power
//! model's average power and the area model's die area — exactly the axes of
//! the paper's power–performance and area–performance frontiers at 45 nm.

use serde::{Deserialize, Serialize};

use dscs_compiler::{compile, CompileOptions};
use dscs_dsa::config::DsaConfig;
use dscs_dsa::executor::Executor;
use dscs_dsa::power::{AreaModel, PowerModel};
use dscs_nn::zoo::{Model, ModelKind};
use dscs_simcore::fit::{polyfit, Polynomial};
use dscs_simcore::pareto::{pareto_frontier, within_budget, ParetoPoint};
use dscs_simcore::stats::arithmetic_mean;

/// The storage drive's power envelope: PCIe-powered drives are capped at 25 W,
/// shared between the flash and the accelerator.
pub const DRIVE_POWER_BUDGET_WATTS: f64 = 25.0;

/// One evaluated design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// The configuration.
    pub config: DsaConfig,
    /// Average throughput across the evaluation models, in inferences/second.
    pub throughput_ips: f64,
    /// Average power (dynamic + leakage) while running, in watts.
    pub power_watts: f64,
    /// Die area in square millimetres.
    pub area_mm2: f64,
}

/// The default evaluation set: one representative CNN, one transformer encoder
/// and one detector, spanning the benchmark suite's behaviour without paying
/// for all eight models at every one of the 650+ points.
pub fn default_evaluation_models() -> Vec<ModelKind> {
    vec![
        ModelKind::ResNet50,
        ModelKind::BertBase,
        ModelKind::SsdMobileNet,
    ]
}

/// Activity factor used for the provisioning (TDP-style) power estimate: the
/// fraction of the MAC array switching in a sustained design-power scenario.
/// The DSE budgets against provisioned power, not a single workload's average,
/// because the drive's 25 W envelope must hold for the worst case.
const PROVISIONING_ACTIVITY: f64 = 0.30;

/// Evaluates one configuration over a set of models.
pub fn evaluate_config(config: DsaConfig, models: &[ModelKind]) -> DesignPoint {
    assert!(!models.is_empty(), "need at least one evaluation model");
    let executor = Executor::new(config);
    let power = PowerModel::new(config);
    let area = AreaModel::new(config);
    let mut throughputs = Vec::with_capacity(models.len());
    for &kind in models {
        let model = Model::build(kind);
        let program = compile(model.graph(), &config, CompileOptions::default());
        let report = executor.run(&program);
        throughputs.push(1.0 / report.latency().as_secs_f64());
    }
    // Provisioned power: leakage plus the MAC array switching at the
    // provisioning activity factor for one second.
    let peak_ops = config.peak_ops_per_sec() as u64;
    let dynamic = power
        .mpu_energy((peak_ops as f64 * PROVISIONING_ACTIVITY) as u64)
        .as_f64();
    let power_watts = power.leakage_power().as_f64() + dynamic;
    DesignPoint {
        config,
        throughput_ips: arithmetic_mean(&throughputs),
        power_watts,
        area_mm2: area.total().as_f64(),
    }
}

/// Evaluates every configuration in `space`.
pub fn sweep(space: &[DsaConfig], models: &[ModelKind]) -> Vec<DesignPoint> {
    space
        .iter()
        .map(|&config| evaluate_config(config, models))
        .collect()
}

/// The power–performance frontier (Figure 7): minimise power, maximise
/// throughput, considering only points within the drive power budget.
pub fn power_performance_frontier(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let candidates: Vec<ParetoPoint<DesignPoint>> = points
        .iter()
        .map(|&p| ParetoPoint::new(p.power_watts, p.throughput_ips, p))
        .collect();
    let feasible = within_budget(candidates, DRIVE_POWER_BUDGET_WATTS);
    pareto_frontier(feasible)
        .into_iter()
        .map(|p| p.tag)
        .collect()
}

/// The area–performance frontier (Figure 8): minimise area, maximise throughput.
pub fn area_performance_frontier(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let candidates: Vec<ParetoPoint<DesignPoint>> = points
        .iter()
        .map(|&p| ParetoPoint::new(p.area_mm2, p.throughput_ips, p))
        .collect();
    pareto_frontier(candidates)
        .into_iter()
        .map(|p| p.tag)
        .collect()
}

/// Cubic fit of a frontier, matching the paper's annotated `P(c)` / `A(c)`
/// polynomials (cost as a function of throughput).
///
/// Falls back to the highest degree the point count supports when the frontier
/// has fewer than four points.
pub fn frontier_fit(frontier: &[DesignPoint], cost: impl Fn(&DesignPoint) -> f64) -> Polynomial {
    assert!(
        frontier.len() >= 2,
        "need at least two frontier points to fit"
    );
    let pts: Vec<(f64, f64)> = frontier
        .iter()
        .map(|p| (p.throughput_ips, cost(p)))
        .collect();
    let degree = 3.min(pts.len() - 1);
    polyfit(&pts, degree)
}

/// Picks the frontier point with the highest throughput — with the 25 W budget
/// applied this is the configuration the paper selects (Dim128-4MB-DDR5).
pub fn select_optimal(points: &[DesignPoint]) -> Option<DesignPoint> {
    power_performance_frontier(points)
        .into_iter()
        .max_by(|a, b| {
            a.throughput_ips
                .partial_cmp(&b.throughput_ips)
                .expect("finite")
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::enumerate_small;
    use dscs_dsa::config::TechnologyNode;

    fn small_points() -> Vec<DesignPoint> {
        sweep(
            &enumerate_small(TechnologyNode::Nm45),
            &[ModelKind::ResNet50],
        )
    }

    #[test]
    fn evaluation_produces_finite_positive_metrics() {
        for p in small_points() {
            assert!(
                p.throughput_ips > 0.0 && p.throughput_ips.is_finite(),
                "{}",
                p.config
            );
            assert!(
                p.power_watts > 0.0 && p.power_watts.is_finite(),
                "{}",
                p.config
            );
            assert!(p.area_mm2 > 0.0, "{}", p.config);
        }
    }

    #[test]
    fn bigger_arrays_cost_more_power_and_area() {
        let points = small_points();
        let find = |dim: u64| {
            points
                .iter()
                .find(|p| {
                    p.config.array_rows == dim
                        && p.config.memory == dscs_dsa::config::MemoryKind::Ddr5
                })
                .copied()
                .expect("present")
        };
        let small = find(16);
        let big = find(512);
        assert!(big.power_watts > small.power_watts);
        assert!(big.area_mm2 > small.area_mm2);
    }

    #[test]
    fn moderate_array_beats_huge_array_at_batch_one() {
        // The paper's key DSE finding: scaling the array past the mid-sized
        // point stops paying off at batch 1 (tile fill/drain and memory
        // transfers dominate), and the huge arrays blow the 25 W drive budget.
        let points = small_points();
        let throughput = |dim: u64| {
            points
                .iter()
                .filter(|p| p.config.array_rows == dim)
                .map(|p| p.throughput_ips)
                .fold(f64::MIN, f64::max)
        };
        let power = |dim: u64| {
            points
                .iter()
                .filter(|p| p.config.array_rows == dim)
                .map(|p| p.power_watts)
                .fold(f64::MAX, f64::min)
        };
        assert!(throughput(128) > throughput(16), "128 should beat 16");
        // 16x the PEs buys far less than 16x the throughput...
        assert!(
            throughput(512) < 6.0 * throughput(128),
            "512 throughput {} vs 128 {}",
            throughput(512),
            throughput(128)
        );
        // ...while exceeding the storage power envelope that 128 comfortably fits.
        assert!(
            power(128) < DRIVE_POWER_BUDGET_WATTS,
            "128 power {}",
            power(128)
        );
        assert!(
            power(512) > DRIVE_POWER_BUDGET_WATTS,
            "512 power {}",
            power(512)
        );
    }

    #[test]
    fn frontiers_are_monotone_and_within_budget() {
        let points = small_points();
        let power_frontier = power_performance_frontier(&points);
        assert!(!power_frontier.is_empty());
        assert!(power_frontier
            .iter()
            .all(|p| p.power_watts <= DRIVE_POWER_BUDGET_WATTS));
        assert!(power_frontier
            .windows(2)
            .all(|w| w[0].power_watts < w[1].power_watts
                && w[0].throughput_ips < w[1].throughput_ips));
        let area_frontier = area_performance_frontier(&points);
        assert!(area_frontier
            .windows(2)
            .all(|w| w[0].area_mm2 < w[1].area_mm2));
    }

    #[test]
    fn selected_optimum_is_a_mid_sized_array() {
        let points = small_points();
        let best = select_optimal(&points).expect("non-empty frontier");
        assert!(
            (64..=256).contains(&best.config.array_rows),
            "selected {} — expected a mid-sized array under the 25 W budget as in the paper",
            best.config
        );
    }

    #[test]
    fn frontier_fit_tracks_the_points() {
        let points = small_points();
        let frontier = power_performance_frontier(&points);
        if frontier.len() >= 2 {
            let fit = frontier_fit(&frontier, |p| p.power_watts);
            let pts: Vec<(f64, f64)> = frontier
                .iter()
                .map(|p| (p.throughput_ips, p.power_watts))
                .collect();
            assert!(fit.r_squared(&pts) > 0.8);
        }
    }
}
