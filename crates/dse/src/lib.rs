//! # dscs-dse
//!
//! Design-space exploration and cost modelling for the DSCS-Serverless DSA.
//!
//! * [`space`] — enumerates the accelerator design space the paper sweeps
//!   (array dimension 4–1024, buffers up to 32 MiB, DDR4/DDR5/HBM2).
//! * [`explore`] — evaluates design points on the cycle simulator, extracts the
//!   power–performance and area–performance Pareto frontiers under the 25 W
//!   drive power budget (Figures 7 and 8), fits the frontier polynomials and
//!   selects the optimal configuration (the paper's Dim128-4MB-DDR5).
//! * [`cost`] — the CAPEX/OPEX cost-efficiency model used by Figure 12,
//!   including an ASIC-Clouds-style die-cost estimate.
//!
//! # Example
//!
//! ```
//! use dscs_dse::explore::{evaluate_config, DRIVE_POWER_BUDGET_WATTS};
//! use dscs_dsa::config::DsaConfig;
//! use dscs_nn::zoo::ModelKind;
//!
//! let point = evaluate_config(DsaConfig::paper_optimal(), &[ModelKind::ResNet50]);
//! assert!(point.power_watts < DRIVE_POWER_BUDGET_WATTS);
//! assert!(point.throughput_ips > 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod explore;
pub mod space;

pub use cost::{AsicCostModel, CostParameters};
pub use explore::{
    area_performance_frontier, evaluate_config, frontier_fit, power_performance_frontier,
    select_optimal, sweep, DesignPoint, DRIVE_POWER_BUDGET_WATTS,
};
pub use space::{enumerate, enumerate_small, ARRAY_DIMS, BUFFER_CAP};
