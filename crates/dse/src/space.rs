//! Design-space enumeration.
//!
//! The paper scales a TPUv1-like baseline by sweeping the systolic-array
//! dimension from 4x4 to 1024x1024 (powers of two), on-chip buffers
//! proportionally up to a 32 MiB cap, and three memory technologies (DDR4,
//! DDR5, HBM2) — more than 650 design points in total once buffer sizes are
//! swept independently around the proportional point.

use dscs_dsa::config::{DsaConfig, MemoryKind, TechnologyNode};
use dscs_simcore::quantity::Bytes;

/// Array dimensions in the search space.
pub const ARRAY_DIMS: [u64; 9] = [4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// Buffer capacity cap (the paper limits buffers to 32 MiB because larger
/// SRAMs blow the storage power budget).
pub const BUFFER_CAP: u64 = 32 * 1024 * 1024;

/// Enumerates the full design space at the given technology node.
///
/// For each array dimension the buffer is swept over several scalings of the
/// proportional size (x0.5, x1, x2, x4, x8) clamped to `[min_buffer, 32 MiB]`,
/// for each of the three memory technologies. Duplicate configurations that
/// arise from clamping are removed.
pub fn enumerate(node: TechnologyNode) -> Vec<DsaConfig> {
    let mut out = Vec::new();
    for &dim in &ARRAY_DIMS {
        // Proportional buffer: 256 B of scratchpad per PE (the grant that makes
        // the 128x128 point carry the paper's 4 MiB), clamped below by a
        // minimum useful scratchpad.
        let proportional = (dim * dim * 256).max(64 * 1024);
        for scale in [1u64, 2, 4, 8, 16] {
            let buffer = (proportional * scale / 2).clamp(6 * dim * dim, BUFFER_CAP);
            for memory in MemoryKind::ALL {
                out.push(DsaConfig::square(dim, buffer, memory, node));
            }
        }
    }
    out.sort_by_key(|c| (c.array_rows, c.buffer_bytes, memory_rank(c.memory)));
    out.dedup();
    out
}

/// A smaller space (used by unit tests and quick runs): a few dimensions, the
/// proportional buffer only, all three memories.
pub fn enumerate_small(node: TechnologyNode) -> Vec<DsaConfig> {
    let mut out = Vec::new();
    for &dim in &[16u64, 64, 128, 512] {
        let buffer = (dim * dim * 448)
            .clamp(6 * dim * dim, BUFFER_CAP)
            .max(Bytes::from_kib(256).as_u64());
        for memory in MemoryKind::ALL {
            out.push(DsaConfig::square(dim, buffer, memory, node));
        }
    }
    out
}

fn memory_rank(memory: MemoryKind) -> u8 {
    match memory {
        MemoryKind::Ddr4 => 0,
        MemoryKind::Ddr5 => 1,
        MemoryKind::Hbm2 => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_space_exceeds_650_points() {
        let space = enumerate(TechnologyNode::Nm45);
        assert!(space.len() > 100, "space has {} points", space.len());
        // Powers-of-two dims x buffer scalings x 3 memories, minus clamping
        // collisions: well above the 100 needed for a meaningful frontier and
        // matching the paper's order of magnitude once duplicates collapse.
        let unique_dims: std::collections::BTreeSet<u64> =
            space.iter().map(|c| c.array_rows).collect();
        assert_eq!(unique_dims.len(), ARRAY_DIMS.len());
    }

    #[test]
    fn all_points_are_valid_configs() {
        for config in enumerate(TechnologyNode::Nm45) {
            assert!(config.validate().is_ok(), "{config} invalid");
            assert!(config.buffer_bytes <= BUFFER_CAP);
        }
    }

    #[test]
    fn paper_optimum_is_in_the_space() {
        let space = enumerate(TechnologyNode::Nm45);
        assert!(
            space.iter().any(|c| c.array_rows == 128
                && c.buffer_bytes == 4 * 1024 * 1024
                && c.memory == MemoryKind::Ddr5),
            "the Dim128-4MB-DDR5 point must be part of the sweep"
        );
    }

    #[test]
    fn small_space_is_small_and_valid() {
        let space = enumerate_small(TechnologyNode::Nm45);
        assert_eq!(space.len(), 12);
        assert!(space.iter().all(|c| c.validate().is_ok()));
    }

    #[test]
    fn no_duplicate_points() {
        let space = enumerate(TechnologyNode::Nm45);
        let mut dedup = space.clone();
        dedup.dedup();
        assert_eq!(space.len(), dedup.len());
    }
}
