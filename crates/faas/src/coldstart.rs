//! Cold-start and container-lifecycle model.
//!
//! A function experiences a cold start when its container image must be pulled
//! from a remote registry, unpacked and health-checked before the first
//! request can run (Section 5.3). DSCS-Serverless incurs the same cold start,
//! plus loading the model weights into the DSA's memory — but it can also
//! offload an evicted function's image to the drive's flash over the P2P path
//! and reload it from there instead of the remote registry on the next
//! invocation.
//!
//! A third modality sits beside those two: CRIU-style **snapshot restore**,
//! where a checkpointed warm process is resumed from local storage instead
//! of being spawned at all — no image unpack, no runtime boot, just the
//! restore stream and its page-fault warmup tail (priced by
//! [`dscs_storage::snapshot`]).

use serde::{Deserialize, Serialize};

use dscs_simcore::quantity::{Bandwidth, Bytes};
use dscs_simcore::time::SimDuration;
use dscs_storage::snapshot::{SnapshotConfig, SnapshotStore};

/// Where a container image is fetched from on a cold start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ImageSource {
    /// Remote container registry over the datacenter network.
    RemoteRegistry,
    /// The drive's own flash array over the P2P path (DSCS-Serverless's cached
    /// image path).
    LocalFlash,
    /// A CRIU-style process snapshot restored from local storage: skips the
    /// unpack and runtime-boot phases entirely, paying the restore stream
    /// plus its page-fault warmup tail instead.
    SnapshotRestore,
}

/// Cold-start model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColdStartModel {
    /// Bandwidth to the remote registry.
    pub registry_bandwidth: Bandwidth,
    /// Bandwidth from local flash over the P2P path.
    pub flash_bandwidth: Bandwidth,
    /// Image unpack/decompression throughput.
    pub unpack_bandwidth: Bandwidth,
    /// Runtime initialisation + health check time.
    pub startup_check: SimDuration,
    /// How long an idle container (or a function held in DSA memory) stays
    /// warm before eviction.
    pub keep_warm: SimDuration,
    /// Pricing of the snapshot-restore path (restore bandwidth, fixed setup
    /// and the page-fault warmup tail).
    pub snapshot: SnapshotConfig,
}

impl Default for ColdStartModel {
    fn default() -> Self {
        ColdStartModel {
            registry_bandwidth: Bandwidth::from_mbps(250.0),
            flash_bandwidth: Bandwidth::from_gbps(3.0),
            unpack_bandwidth: Bandwidth::from_mbps(400.0),
            startup_check: SimDuration::from_millis(350),
            keep_warm: SimDuration::from_secs(600),
            snapshot: SnapshotConfig::criu_local_nvme(),
        }
    }
}

impl ColdStartModel {
    /// Cold-start latency for an image of `image_size` fetched from `source`.
    ///
    /// For [`ImageSource::SnapshotRestore`], `image_size` is read as the
    /// snapshot size (the checkpointed resident set, approximated by the
    /// unpacked image) and the unpack + startup-check phases are skipped:
    /// the restored process is already initialised, so the whole cost is
    /// [`ColdStartModel::snapshot_restore_latency`].
    pub fn cold_start_latency(&self, image_size: Bytes, source: ImageSource) -> SimDuration {
        let fetch_bw = match source {
            ImageSource::RemoteRegistry => self.registry_bandwidth,
            ImageSource::LocalFlash => self.flash_bandwidth,
            ImageSource::SnapshotRestore => return self.snapshot_restore_latency(image_size),
        };
        fetch_bw.transfer_time(image_size)
            + self.unpack_bandwidth.transfer_time(image_size)
            + self.startup_check
    }

    /// Time-to-ready for restoring a `snapshot_size` process snapshot:
    /// fixed setup + restore stream + page-fault warmup tail (see
    /// [`dscs_storage::snapshot::SnapshotStore::restore_latency`]).
    pub fn snapshot_restore_latency(&self, snapshot_size: Bytes) -> SimDuration {
        SnapshotStore::new(self.snapshot).restore_latency(snapshot_size)
    }

    /// Additional latency to load `weight_bytes` of model weights into the
    /// accelerator's memory (charged on the first invocation after a cold
    /// start for platforms with device memory).
    pub fn weight_load_latency(
        &self,
        weight_bytes: Bytes,
        device_bandwidth: Bandwidth,
    ) -> SimDuration {
        device_bandwidth.transfer_time(weight_bytes)
    }

    /// Whether a container invoked `idle_for` after its previous request is
    /// still warm.
    pub fn is_warm(&self, idle_for: SimDuration) -> bool {
        idle_for <= self.keep_warm
    }
}

/// Tracks the warm/cold state of one function's container on one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContainerState {
    last_invocation: Option<SimDuration>,
    /// Whether the image has been cached to the drive's flash (so the next
    /// cold start may use [`ImageSource::LocalFlash`]).
    image_cached_on_flash: bool,
}

impl Default for ContainerState {
    fn default() -> Self {
        Self::new()
    }
}

impl ContainerState {
    /// A never-invoked (cold, uncached) container.
    pub fn new() -> Self {
        ContainerState {
            last_invocation: None,
            image_cached_on_flash: false,
        }
    }

    /// Records an invocation at `now` (time since simulation start).
    pub fn record_invocation(&mut self, now: SimDuration) {
        self.last_invocation = Some(now);
    }

    /// Marks the image as offloaded to the drive's flash (DSCS's eviction path).
    pub fn cache_image_on_flash(&mut self) {
        self.image_cached_on_flash = true;
    }

    /// Whether the function is warm at `now` under `model`.
    pub fn is_warm(&self, now: SimDuration, model: &ColdStartModel) -> bool {
        match self.last_invocation {
            Some(last) if now >= last => model.is_warm(now - last),
            Some(_) => true,
            None => false,
        }
    }

    /// The image source a cold start at this point would use.
    pub fn cold_image_source(&self) -> ImageSource {
        if self.image_cached_on_flash {
            ImageSource::LocalFlash
        } else {
            ImageSource::RemoteRegistry
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_start_cost_scales_with_image_size() {
        let m = ColdStartModel::default();
        let small = m.cold_start_latency(Bytes::from_mib(60), ImageSource::RemoteRegistry);
        let large = m.cold_start_latency(Bytes::from_mib(600), ImageSource::RemoteRegistry);
        assert!(large > small * 5u64);
    }

    #[test]
    fn local_flash_cold_start_is_faster_than_registry() {
        let m = ColdStartModel::default();
        let size = Bytes::from_mib(400);
        let remote = m.cold_start_latency(size, ImageSource::RemoteRegistry);
        let local = m.cold_start_latency(size, ImageSource::LocalFlash);
        assert!(local < remote);
    }

    #[test]
    fn typical_cold_start_is_seconds_scale() {
        let m = ColdStartModel::default();
        let latency = m.cold_start_latency(Bytes::from_mib(400), ImageSource::RemoteRegistry);
        assert!(
            (1.0..10.0).contains(&latency.as_secs_f64()),
            "latency {latency}"
        );
    }

    #[test]
    fn warm_window_honoured() {
        let m = ColdStartModel::default();
        let mut c = ContainerState::new();
        assert!(!c.is_warm(SimDuration::from_secs(1), &m));
        c.record_invocation(SimDuration::from_secs(10));
        assert!(c.is_warm(SimDuration::from_secs(300), &m));
        assert!(!c.is_warm(SimDuration::from_secs(10 + 601), &m));
    }

    #[test]
    fn flash_caching_changes_cold_source() {
        let mut c = ContainerState::new();
        assert_eq!(c.cold_image_source(), ImageSource::RemoteRegistry);
        c.cache_image_on_flash();
        assert_eq!(c.cold_image_source(), ImageSource::LocalFlash);
    }

    #[test]
    fn snapshot_restore_undercuts_both_image_paths() {
        let m = ColdStartModel::default();
        let size = Bytes::from_mib(400);
        let restore = m.cold_start_latency(size, ImageSource::SnapshotRestore);
        assert!(restore < m.cold_start_latency(size, ImageSource::LocalFlash));
        assert!(restore < m.cold_start_latency(size, ImageSource::RemoteRegistry));
        assert_eq!(restore, m.snapshot_restore_latency(size));
    }

    #[test]
    fn snapshot_restore_scales_with_snapshot_size() {
        let m = ColdStartModel::default();
        let small = m.snapshot_restore_latency(Bytes::from_mib(32));
        let large = m.snapshot_restore_latency(Bytes::from_mib(512));
        assert!(large > small);
        assert_eq!(m.snapshot_restore_latency(Bytes::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn weight_load_uses_device_bandwidth() {
        let m = ColdStartModel::default();
        let t = m.weight_load_latency(Bytes::from_mib(380), Bandwidth::from_gbps(38.0));
        assert!(t.as_millis_f64() > 5.0 && t.as_millis_f64() < 30.0, "t {t}");
    }
}
