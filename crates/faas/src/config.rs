//! Deployment configuration parsing.
//!
//! Developers describe each function in a YAML-style configuration file.
//! DSCS-Serverless extends the file with an `acceleratable` hint so the
//! scheduler knows which functions may be offloaded to the in-storage DSA
//! (Section 5.1, "Programming model").
//!
//! The parser handles the small, flat subset of YAML the deployment files use —
//! top-level `key: value` pairs plus a `functions:` list of indented blocks —
//! without pulling in a YAML dependency.

use std::fmt;

use dscs_simcore::quantity::Bytes;
use dscs_simcore::time::SimDuration;

use crate::function::{AppPipeline, FunctionRole, FunctionSpec};

/// Errors produced while parsing a deployment config.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigParseError {
    /// A line was not `key: value` or a list item.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A required key is missing.
    MissingKey(&'static str),
    /// A value could not be interpreted.
    InvalidValue {
        /// The key whose value is invalid.
        key: String,
        /// The raw value.
        value: String,
    },
}

impl fmt::Display for ConfigParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigParseError::Malformed { line, text } => {
                write!(f, "malformed config at line {line}: {text:?}")
            }
            ConfigParseError::MissingKey(key) => write!(f, "missing required key {key:?}"),
            ConfigParseError::InvalidValue { key, value } => {
                write!(f, "invalid value {value:?} for key {key:?}")
            }
        }
    }
}

impl std::error::Error for ConfigParseError {}

/// Parses a deployment configuration into an [`AppPipeline`].
///
/// # Example
///
/// ```
/// use dscs_faas::config::parse_deployment;
///
/// let yaml = r#"
/// app: remote-sensing
/// functions:
///   - name: preprocess
///     role: preprocess
///     acceleratable: true
///     image_mb: 180
///   - name: infer
///     role: inference
///     acceleratable: true
///     image_mb: 420
///     timeout_s: 60
///   - name: notify
///     role: notification
///     acceleratable: false
///     image_mb: 60
/// "#;
/// let pipeline = parse_deployment(yaml).expect("valid config");
/// assert_eq!(pipeline.name, "remote-sensing");
/// assert_eq!(pipeline.len(), 3);
/// assert_eq!(pipeline.acceleratable_prefix_len(), 2);
/// ```
pub fn parse_deployment(text: &str) -> Result<AppPipeline, ConfigParseError> {
    let mut app_name: Option<String> = None;
    let mut functions: Vec<FunctionSpec> = Vec::new();
    let mut current: Option<FunctionBuilder> = None;
    let mut in_functions = false;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim_end();
        let trimmed = line.trim_start();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if let Some(item) = trimmed.strip_prefix("- ") {
            if !in_functions {
                return Err(ConfigParseError::Malformed {
                    line: line_no,
                    text: line.to_string(),
                });
            }
            if let Some(builder) = current.take() {
                functions.push(builder.build()?);
            }
            let mut builder = FunctionBuilder::default();
            apply_kv(&mut builder, item, line_no)?;
            current = Some(builder);
            continue;
        }
        let (key, value) = split_kv(trimmed, line_no)?;
        if line.starts_with(' ') {
            // Indented: belongs to the current function block.
            let builder = current.as_mut().ok_or(ConfigParseError::Malformed {
                line: line_no,
                text: line.to_string(),
            })?;
            builder.set(key, value)?;
        } else {
            match key {
                "app" | "name" => app_name = Some(value.to_string()),
                "functions" => in_functions = true,
                // Other top-level metadata (provider, storage, triggers, ...) is
                // accepted and ignored; it does not affect scheduling decisions.
                _ => {}
            }
        }
    }
    if let Some(builder) = current.take() {
        functions.push(builder.build()?);
    }

    let name = app_name.ok_or(ConfigParseError::MissingKey("app"))?;
    if functions.is_empty() {
        return Err(ConfigParseError::MissingKey("functions"));
    }
    Ok(AppPipeline::new(name, functions))
}

fn split_kv(text: &str, line: usize) -> Result<(&str, &str), ConfigParseError> {
    let (key, value) = text.split_once(':').ok_or(ConfigParseError::Malformed {
        line,
        text: text.to_string(),
    })?;
    Ok((key.trim(), value.trim()))
}

fn apply_kv(
    builder: &mut FunctionBuilder,
    text: &str,
    line: usize,
) -> Result<(), ConfigParseError> {
    let (key, value) = split_kv(text, line)?;
    builder.set(key, value)
}

#[derive(Debug, Default)]
struct FunctionBuilder {
    name: Option<String>,
    role: Option<FunctionRole>,
    acceleratable: Option<bool>,
    image_mb: Option<u64>,
    timeout_s: Option<u64>,
    memory_mb: Option<u64>,
}

impl FunctionBuilder {
    fn set(&mut self, key: &str, value: &str) -> Result<(), ConfigParseError> {
        let invalid = || ConfigParseError::InvalidValue {
            key: key.to_string(),
            value: value.to_string(),
        };
        match key {
            "name" => self.name = Some(value.to_string()),
            "role" => {
                self.role = Some(match value {
                    "preprocess" | "pre-processing" => FunctionRole::Preprocess,
                    "inference" | "ml" | "dnn" => FunctionRole::Inference,
                    "notification" | "notify" => FunctionRole::Notification,
                    _ => return Err(invalid()),
                })
            }
            "acceleratable" | "dscs" => {
                self.acceleratable = Some(match value {
                    "true" | "yes" => true,
                    "false" | "no" => false,
                    _ => return Err(invalid()),
                })
            }
            "image_mb" => self.image_mb = Some(value.parse().map_err(|_| invalid())?),
            "timeout_s" => self.timeout_s = Some(value.parse().map_err(|_| invalid())?),
            "memory_mb" => self.memory_mb = Some(value.parse().map_err(|_| invalid())?),
            // Unknown per-function keys (env, handlers, triggers) are ignored.
            _ => {}
        }
        Ok(())
    }

    fn build(self) -> Result<FunctionSpec, ConfigParseError> {
        let name = self
            .name
            .ok_or(ConfigParseError::MissingKey("functions[].name"))?;
        let role = self
            .role
            .ok_or(ConfigParseError::MissingKey("functions[].role"))?;
        let mut spec = FunctionSpec::new(
            name,
            role,
            self.acceleratable.unwrap_or(false),
            Bytes::from_mib(self.image_mb.unwrap_or(120)),
        );
        if let Some(t) = self.timeout_s {
            spec.timeout = SimDuration::from_secs(t);
        }
        if let Some(m) = self.memory_mb {
            spec.memory_limit = Bytes::from_mib(m);
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
app: content-moderation
provider: openfaas
functions:
  - name: decode
    role: preprocess
    acceleratable: true
    image_mb: 150
  - name: classify
    role: inference
    acceleratable: true
    image_mb: 380
    timeout_s: 45
    memory_mb: 2048
  - name: flag
    role: notification
    acceleratable: false
    image_mb: 40
"#;

    #[test]
    fn parses_full_pipeline() {
        let p = parse_deployment(SAMPLE).expect("valid");
        assert_eq!(p.name, "content-moderation");
        assert_eq!(p.len(), 3);
        assert_eq!(p.functions[1].timeout, SimDuration::from_secs(45));
        assert_eq!(p.functions[1].memory_limit, Bytes::from_mib(2048));
        assert!(p.functions[0].acceleratable);
        assert!(!p.functions[2].acceleratable);
    }

    #[test]
    fn missing_app_name_is_an_error() {
        let text = "functions:\n  - name: a\n    role: inference\n";
        assert_eq!(
            parse_deployment(text),
            Err(ConfigParseError::MissingKey("app"))
        );
    }

    #[test]
    fn missing_functions_is_an_error() {
        let text = "app: x\n";
        assert_eq!(
            parse_deployment(text),
            Err(ConfigParseError::MissingKey("functions"))
        );
    }

    #[test]
    fn bad_role_reported_with_value() {
        let text = "app: x\nfunctions:\n  - name: a\n    role: quantum\n";
        match parse_deployment(text) {
            Err(ConfigParseError::InvalidValue { key, value }) => {
                assert_eq!(key, "role");
                assert_eq!(value, "quantum");
            }
            other => panic!("expected InvalidValue, got {other:?}"),
        }
    }

    #[test]
    fn unknown_keys_are_ignored() {
        let text = "app: x\nregion: us-west-2\nfunctions:\n  - name: a\n    role: inference\n    handler: main.py\n";
        let p = parse_deployment(text).expect("valid");
        assert_eq!(p.len(), 1);
        assert!(!p.functions[0].acceleratable);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# deployment\napp: x\n\nfunctions:\n  # the only function\n  - name: a\n    role: inference\n";
        assert!(parse_deployment(text).is_ok());
    }

    #[test]
    fn list_item_outside_functions_is_malformed() {
        let text = "app: x\n- name: a\n";
        assert!(matches!(
            parse_deployment(text),
            Err(ConfigParseError::Malformed { line: 2, .. })
        ));
    }
}
