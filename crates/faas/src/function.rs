//! Serverless functions and application DAGs.
//!
//! Applications are expressed as chains of decoupled functions (Section 5.1).
//! Every benchmark in the paper is a three-function pipeline — data
//! pre-processing, ML/DNN inference, and a notification service — that
//! exchanges data through persistent storage. Deployment metadata marks which
//! functions are amenable to in-storage acceleration.

use serde::{Deserialize, Serialize};
use std::fmt;

use dscs_simcore::quantity::Bytes;
use dscs_simcore::time::SimDuration;

/// What a function does, which determines where it may execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FunctionRole {
    /// Data pre-processing (decode, resize, tokenise, featurise).
    Preprocess,
    /// ML/DNN inference.
    Inference,
    /// Notification / result delivery; always runs on a host CPU.
    Notification,
}

impl fmt::Display for FunctionRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FunctionRole::Preprocess => "preprocess",
            FunctionRole::Inference => "inference",
            FunctionRole::Notification => "notification",
        };
        f.write_str(s)
    }
}

/// One serverless function's deployment specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionSpec {
    /// Function name (unique within an application).
    pub name: String,
    /// Role in the pipeline.
    pub role: FunctionRole,
    /// Whether the developer marked this function as acceleratable by the
    /// in-storage DSA (the YAML hint DSCS-Serverless adds).
    pub acceleratable: bool,
    /// Execution timeout.
    pub timeout: SimDuration,
    /// Memory limit of the function's container.
    pub memory_limit: Bytes,
    /// Size of the container image (runtime, libraries, model weights) that a
    /// cold start must pull and unpack.
    pub image_size: Bytes,
}

impl FunctionSpec {
    /// Creates a function spec with common defaults (30 s timeout, 1 GiB memory).
    pub fn new(
        name: impl Into<String>,
        role: FunctionRole,
        acceleratable: bool,
        image_size: Bytes,
    ) -> Self {
        FunctionSpec {
            name: name.into(),
            role,
            acceleratable,
            timeout: SimDuration::from_secs(30),
            memory_limit: Bytes::from_gib(1),
            image_size,
        }
    }
}

/// A serverless application: an ordered chain of functions (the paper's DAGs
/// are linear chains for all eight benchmarks) plus its storage inputs/outputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppPipeline {
    /// Application name.
    pub name: String,
    /// Functions in invocation order.
    pub functions: Vec<FunctionSpec>,
}

impl AppPipeline {
    /// Creates a pipeline.
    ///
    /// # Panics
    /// Panics if `functions` is empty or function names are not unique.
    pub fn new(name: impl Into<String>, functions: Vec<FunctionSpec>) -> Self {
        assert!(
            !functions.is_empty(),
            "a pipeline needs at least one function"
        );
        let mut names: Vec<&str> = functions.iter().map(|f| f.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(
            names.len(),
            functions.len(),
            "function names must be unique"
        );
        AppPipeline {
            name: name.into(),
            functions,
        }
    }

    /// The standard three-function pipeline used by every benchmark:
    /// preprocess -> inference -> notification, with the first two marked
    /// acceleratable.
    pub fn standard_three_stage(name: impl Into<String>, image_size: Bytes) -> Self {
        let name = name.into();
        AppPipeline::new(
            name.clone(),
            vec![
                FunctionSpec::new(
                    format!("{name}-preprocess"),
                    FunctionRole::Preprocess,
                    true,
                    Bytes::from_mib(180),
                ),
                FunctionSpec::new(
                    format!("{name}-inference"),
                    FunctionRole::Inference,
                    true,
                    image_size,
                ),
                FunctionSpec::new(
                    format!("{name}-notify"),
                    FunctionRole::Notification,
                    false,
                    Bytes::from_mib(60),
                ),
            ],
        )
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether the pipeline has no functions (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Functions marked acceleratable.
    pub fn acceleratable_functions(&self) -> impl Iterator<Item = &FunctionSpec> {
        self.functions.iter().filter(|f| f.acceleratable)
    }

    /// Whether the chain of acceleratable functions is contiguous from the
    /// start — the condition under which DSCS-Serverless maps the chained
    /// functions onto the same DSCS-Drive (Section 5.3, "Function chaining").
    pub fn acceleratable_prefix_len(&self) -> usize {
        self.functions
            .iter()
            .take_while(|f| f.acceleratable)
            .count()
    }

    /// Appends `extra` duplicates of the inference function, used by the
    /// "number of accelerated functions" sensitivity study (Figure 16).
    ///
    /// # Panics
    /// Panics if the pipeline has no inference function.
    pub fn with_extra_inference_functions(&self, extra: usize) -> AppPipeline {
        let template = self
            .functions
            .iter()
            .find(|f| f.role == FunctionRole::Inference)
            .expect("pipeline has an inference function")
            .clone();
        let mut functions: Vec<FunctionSpec> = self
            .functions
            .iter()
            .filter(|f| f.role != FunctionRole::Notification)
            .cloned()
            .collect();
        for i in 0..extra {
            let mut dup = template.clone();
            dup.name = format!("{}-dup{}", template.name, i + 1);
            functions.push(dup);
        }
        functions.extend(
            self.functions
                .iter()
                .filter(|f| f.role == FunctionRole::Notification)
                .cloned(),
        );
        AppPipeline::new(format!("{}+{}", self.name, extra), functions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_pipeline_has_three_stages() {
        let p = AppPipeline::standard_three_stage("ppe-detection", Bytes::from_mib(300));
        assert_eq!(p.len(), 3);
        assert_eq!(p.functions[0].role, FunctionRole::Preprocess);
        assert_eq!(p.functions[1].role, FunctionRole::Inference);
        assert_eq!(p.functions[2].role, FunctionRole::Notification);
        assert_eq!(p.acceleratable_prefix_len(), 2);
        assert_eq!(p.acceleratable_functions().count(), 2);
    }

    #[test]
    fn notification_is_never_acceleratable_in_standard_pipeline() {
        let p = AppPipeline::standard_three_stage("x", Bytes::from_mib(100));
        assert!(!p.functions[2].acceleratable);
    }

    #[test]
    fn extra_inference_functions_extend_the_chain() {
        let p = AppPipeline::standard_three_stage("x", Bytes::from_mib(100));
        let p3 = p.with_extra_inference_functions(3);
        assert_eq!(p3.len(), 6);
        assert_eq!(p3.acceleratable_prefix_len(), 5);
        // Notification still comes last.
        assert_eq!(
            p3.functions.last().expect("non-empty").role,
            FunctionRole::Notification
        );
    }

    #[test]
    fn duplicate_names_rejected() {
        let f = FunctionSpec::new("same", FunctionRole::Inference, true, Bytes::from_mib(10));
        let result =
            std::panic::catch_unwind(|| AppPipeline::new("app", vec![f.clone(), f.clone()]));
        assert!(result.is_err());
    }

    #[test]
    #[should_panic(expected = "at least one function")]
    fn empty_pipeline_rejected() {
        let _ = AppPipeline::new("empty", Vec::new());
    }
}
