//! # dscs-faas
//!
//! Serverless-framework substrate for the DSCS-Serverless reproduction: the
//! OpenFaaS/Kubernetes-shaped pieces the paper integrates with (Section 5).
//!
//! * [`function`] — function specifications and application pipelines (the
//!   three-stage preprocess → inference → notification chains of Table 1),
//!   including the `acceleratable` deployment hint.
//! * [`config`] — the YAML-style deployment file parser with the DSCS
//!   `acceleratable` extension.
//! * [`registry`] — the function registry that deployment and cold starts use.
//! * [`coldstart`] — container/cold-start model, including DSCS's path that
//!   caches evicted images on the drive's flash and reloads them over P2P.
//! * [`scheduler`] — the FCFS, DSCS-aware scheduler with fail-over to
//!   conventional compute nodes, driven by Prometheus-style telemetry.
//! * [`telemetry`] — the Prometheus-style metrics registry.
//!
//! # Example
//!
//! ```
//! use dscs_faas::config::parse_deployment;
//! use dscs_faas::registry::FunctionRegistry;
//!
//! let yaml = "app: ppe\nfunctions:\n  - name: infer\n    role: inference\n    acceleratable: true\n";
//! let pipeline = parse_deployment(yaml).expect("valid deployment");
//! let mut registry = FunctionRegistry::new();
//! registry.deploy(pipeline).expect("deployed");
//! assert_eq!(registry.app_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coldstart;
pub mod config;
pub mod function;
pub mod registry;
pub mod scheduler;
pub mod telemetry;

pub use coldstart::{ColdStartModel, ContainerState, ImageSource};
pub use config::{parse_deployment, ConfigParseError};
pub use function::{AppPipeline, FunctionRole, FunctionSpec};
pub use registry::{FunctionRegistry, RegistryError};
pub use scheduler::{NodeCapability, NodeId, PendingRequest, Placement, ScheduleError, Scheduler};
pub use telemetry::Telemetry;
