//! Function registry.
//!
//! OpenFaaS keeps deployed functions (and their container images) in a
//! registry; invocation looks the function up, and cold starts pull the image
//! from it. The registry here stores deployed [`AppPipeline`]s and answers the
//! lookups the scheduler and the end-to-end model need.

use std::collections::HashMap;

use dscs_simcore::quantity::Bytes;

use crate::function::{AppPipeline, FunctionSpec};

/// Errors returned by the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// An application with the same name is already deployed.
    AlreadyDeployed(String),
    /// The application is not deployed.
    UnknownApp(String),
    /// The function is not part of the application.
    UnknownFunction {
        /// Application name.
        app: String,
        /// Function name.
        function: String,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::AlreadyDeployed(app) => write!(f, "application already deployed: {app}"),
            RegistryError::UnknownApp(app) => write!(f, "unknown application: {app}"),
            RegistryError::UnknownFunction { app, function } => {
                write!(f, "unknown function {function} in application {app}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// The function registry.
#[derive(Debug, Default, Clone)]
pub struct FunctionRegistry {
    apps: HashMap<String, AppPipeline>,
}

impl FunctionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        FunctionRegistry::default()
    }

    /// Deploys an application.
    pub fn deploy(&mut self, pipeline: AppPipeline) -> Result<(), RegistryError> {
        if self.apps.contains_key(&pipeline.name) {
            return Err(RegistryError::AlreadyDeployed(pipeline.name));
        }
        self.apps.insert(pipeline.name.clone(), pipeline);
        Ok(())
    }

    /// Removes an application, returning its pipeline.
    pub fn undeploy(&mut self, app: &str) -> Result<AppPipeline, RegistryError> {
        self.apps
            .remove(app)
            .ok_or_else(|| RegistryError::UnknownApp(app.to_string()))
    }

    /// Looks up a deployed application.
    pub fn app(&self, app: &str) -> Result<&AppPipeline, RegistryError> {
        self.apps
            .get(app)
            .ok_or_else(|| RegistryError::UnknownApp(app.to_string()))
    }

    /// Looks up one function of a deployed application.
    pub fn function(&self, app: &str, function: &str) -> Result<&FunctionSpec, RegistryError> {
        let pipeline = self.app(app)?;
        pipeline
            .functions
            .iter()
            .find(|f| f.name == function)
            .ok_or_else(|| RegistryError::UnknownFunction {
                app: app.to_string(),
                function: function.to_string(),
            })
    }

    /// Number of deployed applications.
    pub fn app_count(&self) -> usize {
        self.apps.len()
    }

    /// Names of deployed applications, sorted.
    pub fn app_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.apps.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Total container-image bytes a node would have to pull to host every
    /// function of an application (the cold-start working set).
    pub fn total_image_size(&self, app: &str) -> Result<Bytes, RegistryError> {
        Ok(self.app(app)?.functions.iter().map(|f| f.image_size).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::AppPipeline;

    fn sample() -> AppPipeline {
        AppPipeline::standard_three_stage("remote-sensing", Bytes::from_mib(420))
    }

    #[test]
    fn deploy_and_lookup() {
        let mut r = FunctionRegistry::new();
        r.deploy(sample()).expect("deploy");
        assert_eq!(r.app_count(), 1);
        assert_eq!(r.app("remote-sensing").expect("app").len(), 3);
        assert!(r
            .function("remote-sensing", "remote-sensing-inference")
            .is_ok());
    }

    #[test]
    fn duplicate_deploys_rejected() {
        let mut r = FunctionRegistry::new();
        r.deploy(sample()).expect("deploy");
        assert_eq!(
            r.deploy(sample()),
            Err(RegistryError::AlreadyDeployed("remote-sensing".to_string()))
        );
    }

    #[test]
    fn unknown_lookups_error() {
        let r = FunctionRegistry::new();
        assert!(matches!(r.app("nope"), Err(RegistryError::UnknownApp(_))));
        let mut r = FunctionRegistry::new();
        r.deploy(sample()).expect("deploy");
        assert!(matches!(
            r.function("remote-sensing", "nope"),
            Err(RegistryError::UnknownFunction { .. })
        ));
    }

    #[test]
    fn undeploy_removes_the_app() {
        let mut r = FunctionRegistry::new();
        r.deploy(sample()).expect("deploy");
        r.undeploy("remote-sensing").expect("undeploy");
        assert_eq!(r.app_count(), 0);
        assert!(r.undeploy("remote-sensing").is_err());
    }

    #[test]
    fn image_totals_sum_all_functions() {
        let mut r = FunctionRegistry::new();
        r.deploy(sample()).expect("deploy");
        let total = r.total_image_size("remote-sensing").expect("total");
        assert_eq!(
            total,
            Bytes::from_mib(180) + Bytes::from_mib(420) + Bytes::from_mib(60)
        );
    }

    #[test]
    fn app_names_sorted() {
        let mut r = FunctionRegistry::new();
        r.deploy(AppPipeline::standard_three_stage(
            "zeta",
            Bytes::from_mib(1),
        ))
        .expect("ok");
        r.deploy(AppPipeline::standard_three_stage(
            "alpha",
            Bytes::from_mib(1),
        ))
        .expect("ok");
        assert_eq!(r.app_names(), vec!["alpha", "zeta"]);
    }
}
