//! Function scheduling and placement.
//!
//! The paper extends the centralized Kubernetes scheduler so that storage nodes
//! with in-storage accelerators are visible, and maps acceleratable functions
//! onto the node that holds the data — falling back to conventional compute
//! nodes when the DSA is busy or absent (Section 5.3). Requests are served
//! First-Come-First-Serve and functions run to completion without preemption.

use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use crate::telemetry::Telemetry;

/// Identifier of a schedulable node (compute node or DSCS-capable storage node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// What kind of execution a node offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeCapability {
    /// A conventional compute node (CPU, or CPU + discrete accelerator).
    Compute,
    /// A storage node whose drive contains an in-storage DSA.
    DscsStorage,
}

/// A request waiting to be placed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingRequest {
    /// Request identifier (assigned by the caller).
    pub id: u64,
    /// Application the request belongs to.
    pub app: String,
    /// Whether the request's functions are acceleratable (and its data was
    /// placed on a DSCS-Drive).
    pub acceleratable: bool,
    /// Preferred node: the storage node holding the data, when known.
    pub data_node: Option<NodeId>,
}

/// Placement decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Run on the in-storage DSA of the given storage node.
    InStorage(NodeId),
    /// Run on a conventional compute node (the fail-over / default path).
    OnCompute(NodeId),
}

impl Placement {
    /// The node chosen by this placement.
    pub fn node(&self) -> NodeId {
        match *self {
            Placement::InStorage(n) | Placement::OnCompute(n) => n,
        }
    }

    /// Whether the placement uses the in-storage accelerator.
    pub fn uses_dsa(&self) -> bool {
        matches!(self, Placement::InStorage(_))
    }
}

/// Errors returned by the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The pending queue is full (its depth models the paper's 10 000-entry
    /// scheduler queue).
    QueueFull,
    /// The request references an unknown node.
    UnknownNode(NodeId),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::QueueFull => write!(f, "scheduler queue is full"),
            ScheduleError::UnknownNode(n) => write!(f, "unknown node {n:?}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// FCFS scheduler with DSCS-aware placement and fail-over.
#[derive(Debug)]
pub struct Scheduler {
    capabilities: HashMap<NodeId, NodeCapability>,
    busy: HashMap<NodeId, bool>,
    queue: VecDeque<PendingRequest>,
    queue_depth: usize,
    telemetry: Telemetry,
}

impl Scheduler {
    /// Creates a scheduler over the given nodes with a bounded queue.
    ///
    /// # Panics
    /// Panics if `nodes` is empty or `queue_depth` is zero.
    pub fn new(
        nodes: impl IntoIterator<Item = (NodeId, NodeCapability)>,
        queue_depth: usize,
    ) -> Self {
        let capabilities: HashMap<_, _> = nodes.into_iter().collect();
        assert!(
            !capabilities.is_empty(),
            "scheduler needs at least one node"
        );
        assert!(queue_depth > 0, "queue depth must be positive");
        let busy = capabilities.keys().map(|&n| (n, false)).collect();
        Scheduler {
            capabilities,
            busy,
            queue: VecDeque::new(),
            queue_depth,
            telemetry: Telemetry::new(),
        }
    }

    /// The telemetry registry (counters: `scheduled_total`, `queued_total`,
    /// `fallback_total`; gauge: `queue_depth`).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Number of requests waiting in the queue.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues a request; it will be placed by [`Scheduler::dispatch`] in FCFS
    /// order as nodes free up.
    pub fn submit(&mut self, request: PendingRequest) -> Result<(), ScheduleError> {
        if let Some(node) = request.data_node {
            if !self.capabilities.contains_key(&node) {
                return Err(ScheduleError::UnknownNode(node));
            }
        }
        if self.queue.len() >= self.queue_depth {
            return Err(ScheduleError::QueueFull);
        }
        self.queue.push_back(request);
        self.telemetry.inc_counter("queued_total");
        self.telemetry
            .set_gauge("queue_depth", self.queue.len() as f64);
        Ok(())
    }

    /// Attempts to place queued requests onto free nodes, in FCFS order,
    /// returning the placements made. Placement prefers the in-storage DSA of
    /// the data's node for acceleratable requests and falls back to any free
    /// compute node otherwise (the paper's fail-over path).
    pub fn dispatch(&mut self) -> Vec<(PendingRequest, Placement)> {
        let mut placed = Vec::new();
        let mut remaining = VecDeque::new();
        while let Some(request) = self.queue.pop_front() {
            match self.place(&request) {
                Some(placement) => {
                    *self.busy.get_mut(&placement.node()).expect("node exists") = true;
                    self.telemetry.inc_counter("scheduled_total");
                    if !placement.uses_dsa() && request.acceleratable {
                        self.telemetry.inc_counter("fallback_total");
                    }
                    placed.push((request, placement));
                }
                None => {
                    // FCFS: do not let later requests jump ahead of one that
                    // cannot be placed yet.
                    remaining.push_back(request);
                    break;
                }
            }
        }
        while let Some(r) = self.queue.pop_front() {
            remaining.push_back(r);
        }
        // Preserve FCFS order: the unplaceable head (if any) stays first.
        let placed_head = remaining.clone();
        self.queue = placed_head;
        self.telemetry
            .set_gauge("queue_depth", self.queue.len() as f64);
        placed
    }

    /// Marks a node as available again (function ran to completion).
    ///
    /// # Panics
    /// Panics if the node is unknown.
    pub fn release(&mut self, node: NodeId) {
        let slot = self.busy.get_mut(&node).expect("release of unknown node");
        *slot = false;
    }

    /// Whether a node is currently busy.
    pub fn is_busy(&self, node: NodeId) -> bool {
        self.busy.get(&node).copied().unwrap_or(false)
    }

    fn place(&self, request: &PendingRequest) -> Option<Placement> {
        if request.acceleratable {
            if let Some(data_node) = request.data_node {
                if self.capabilities.get(&data_node) == Some(&NodeCapability::DscsStorage)
                    && !self.is_busy(data_node)
                {
                    return Some(Placement::InStorage(data_node));
                }
            }
            // Another free DSCS node holding a replica could be used; fall back
            // to any free DSCS node, then to compute.
            if let Some(node) = self.free_node_of(NodeCapability::DscsStorage) {
                return Some(Placement::InStorage(node));
            }
        }
        self.free_node_of(NodeCapability::Compute)
            .map(Placement::OnCompute)
    }

    fn free_node_of(&self, capability: NodeCapability) -> Option<NodeId> {
        let mut candidates: Vec<NodeId> = self
            .capabilities
            .iter()
            .filter(|(id, cap)| **cap == capability && !self.is_busy(**id))
            .map(|(id, _)| *id)
            .collect();
        candidates.sort_unstable();
        candidates.first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheduler() -> Scheduler {
        Scheduler::new(
            vec![
                (NodeId(0), NodeCapability::Compute),
                (NodeId(1), NodeCapability::Compute),
                (NodeId(10), NodeCapability::DscsStorage),
            ],
            100,
        )
    }

    fn request(id: u64, acceleratable: bool, data_node: Option<NodeId>) -> PendingRequest {
        PendingRequest {
            id,
            app: "app".to_string(),
            acceleratable,
            data_node,
        }
    }

    #[test]
    fn acceleratable_requests_go_to_the_data_node() {
        let mut s = scheduler();
        s.submit(request(1, true, Some(NodeId(10))))
            .expect("submit");
        let placed = s.dispatch();
        assert_eq!(placed.len(), 1);
        assert_eq!(placed[0].1, Placement::InStorage(NodeId(10)));
        assert!(s.is_busy(NodeId(10)));
    }

    #[test]
    fn non_acceleratable_requests_use_compute_nodes() {
        let mut s = scheduler();
        s.submit(request(1, false, None)).expect("submit");
        let placed = s.dispatch();
        assert_eq!(placed[0].1, Placement::OnCompute(NodeId(0)));
    }

    #[test]
    fn busy_dsa_falls_back_to_compute() {
        let mut s = scheduler();
        s.submit(request(1, true, Some(NodeId(10))))
            .expect("submit");
        s.submit(request(2, true, Some(NodeId(10))))
            .expect("submit");
        let placed = s.dispatch();
        assert_eq!(placed.len(), 2);
        assert!(placed[0].1.uses_dsa());
        assert!(!placed[1].1.uses_dsa(), "second request must fall back");
        assert_eq!(s.telemetry().counter("fallback_total"), 1);
    }

    #[test]
    fn release_makes_node_available_again() {
        let mut s = scheduler();
        s.submit(request(1, true, Some(NodeId(10))))
            .expect("submit");
        s.dispatch();
        s.release(NodeId(10));
        s.submit(request(2, true, Some(NodeId(10))))
            .expect("submit");
        let placed = s.dispatch();
        assert!(placed[0].1.uses_dsa());
    }

    #[test]
    fn fcfs_order_is_preserved_when_nodes_are_exhausted() {
        let mut s = Scheduler::new(vec![(NodeId(0), NodeCapability::Compute)], 10);
        for id in 0..3 {
            s.submit(request(id, false, None)).expect("submit");
        }
        let placed = s.dispatch();
        assert_eq!(placed.len(), 1);
        assert_eq!(placed[0].0.id, 0);
        assert_eq!(s.queued(), 2);
        s.release(NodeId(0));
        let placed = s.dispatch();
        assert_eq!(placed[0].0.id, 1, "FCFS order respected");
    }

    #[test]
    fn queue_depth_is_enforced() {
        let mut s = Scheduler::new(vec![(NodeId(0), NodeCapability::Compute)], 2);
        s.submit(request(1, false, None)).expect("ok");
        s.submit(request(2, false, None)).expect("ok");
        assert_eq!(
            s.submit(request(3, false, None)),
            Err(ScheduleError::QueueFull)
        );
    }

    #[test]
    fn unknown_data_node_is_rejected() {
        let mut s = scheduler();
        assert_eq!(
            s.submit(request(1, true, Some(NodeId(99)))),
            Err(ScheduleError::UnknownNode(NodeId(99)))
        );
    }

    #[test]
    fn telemetry_tracks_queue_depth() {
        let mut s = scheduler();
        s.submit(request(1, false, None)).expect("ok");
        assert_eq!(s.telemetry().gauge("queue_depth"), Some(1.0));
        s.dispatch();
        assert_eq!(s.telemetry().gauge("queue_depth"), Some(0.0));
    }
}
