//! Prometheus-style telemetry.
//!
//! The framework relies on cluster telemetry (the paper deploys Prometheus) to
//! drive scheduling decisions: node busy/available state, queue depths, request
//! counts and latency histograms. This module provides a small, thread-safe
//! metrics registry with the same counter/gauge/histogram vocabulary.

use std::collections::HashMap;
use std::sync;

/// Thin wrapper over [`std::sync::RwLock`] with `parking_lot`-style ergonomics
/// (guards returned directly, poisoning treated as a bug).
#[derive(Debug, Default)]
struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().expect("telemetry lock poisoned")
    }

    fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().expect("telemetry lock poisoned")
    }
}

/// A metrics registry keyed by metric name.
///
/// ```
/// use dscs_faas::telemetry::Telemetry;
/// let t = Telemetry::new();
/// t.inc_counter("requests_total");
/// t.set_gauge("queue_depth", 7.0);
/// t.observe("latency_seconds", 0.120);
/// assert_eq!(t.counter("requests_total"), 1);
/// assert_eq!(t.gauge("queue_depth"), Some(7.0));
/// ```
#[derive(Debug, Default)]
pub struct Telemetry {
    counters: RwLock<HashMap<String, u64>>,
    gauges: RwLock<HashMap<String, f64>>,
    observations: RwLock<HashMap<String, Vec<f64>>>,
}

impl Telemetry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Increments a counter by one.
    pub fn inc_counter(&self, name: &str) {
        self.add_counter(name, 1);
    }

    /// Increments a counter by `delta`.
    pub fn add_counter(&self, name: &str, delta: u64) {
        *self.counters.write().entry(name.to_string()).or_insert(0) += delta;
    }

    /// Reads a counter (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.read().get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge.
    ///
    /// # Panics
    /// Panics if `value` is not finite.
    pub fn set_gauge(&self, name: &str, value: f64) {
        assert!(value.is_finite(), "gauge values must be finite");
        self.gauges.write().insert(name.to_string(), value);
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.read().get(name).copied()
    }

    /// Records an observation (e.g. one request latency).
    ///
    /// # Panics
    /// Panics if `value` is not finite.
    pub fn observe(&self, name: &str, value: f64) {
        assert!(value.is_finite(), "observations must be finite");
        self.observations
            .write()
            .entry(name.to_string())
            .or_default()
            .push(value);
    }

    /// Number of observations recorded under `name`.
    pub fn observation_count(&self, name: &str) -> usize {
        self.observations.read().get(name).map_or(0, Vec::len)
    }

    /// Snapshot of the observations recorded under `name`.
    pub fn observations(&self, name: &str) -> Vec<f64> {
        self.observations
            .read()
            .get(name)
            .cloned()
            .unwrap_or_default()
    }

    /// Renders all metrics in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let counters = self.counters.read();
        let mut names: Vec<&String> = counters.keys().collect();
        names.sort();
        for name in names {
            out.push_str(&format!(
                "# TYPE {name} counter\n{name} {}\n",
                counters[name]
            ));
        }
        let gauges = self.gauges.read();
        let mut names: Vec<&String> = gauges.keys().collect();
        names.sort();
        for name in names {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", gauges[name]));
        }
        let observations = self.observations.read();
        let mut names: Vec<&String> = observations.keys().collect();
        names.sort();
        for name in names {
            let values = &observations[name];
            let sum: f64 = values.iter().sum();
            out.push_str(&format!(
                "# TYPE {name} summary\n{name}_count {}\n{name}_sum {sum}\n",
                values.len()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let t = Telemetry::new();
        t.inc_counter("reqs");
        t.add_counter("reqs", 4);
        assert_eq!(t.counter("reqs"), 5);
        assert_eq!(t.counter("missing"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let t = Telemetry::new();
        t.set_gauge("busy_nodes", 3.0);
        t.set_gauge("busy_nodes", 5.0);
        assert_eq!(t.gauge("busy_nodes"), Some(5.0));
        assert_eq!(t.gauge("missing"), None);
    }

    #[test]
    fn observations_collect() {
        let t = Telemetry::new();
        t.observe("lat", 0.1);
        t.observe("lat", 0.3);
        assert_eq!(t.observation_count("lat"), 2);
        assert_eq!(t.observations("lat"), vec![0.1, 0.3]);
    }

    #[test]
    fn render_is_prometheus_shaped() {
        let t = Telemetry::new();
        t.inc_counter("requests_total");
        t.set_gauge("queue_depth", 2.0);
        t.observe("latency_seconds", 0.5);
        let text = t.render();
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("queue_depth 2"));
        assert!(text.contains("latency_seconds_count 1"));
        assert!(text.contains("latency_seconds_sum 0.5"));
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        use std::sync::Arc;
        let t = Arc::new(Telemetry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        t.inc_counter("par");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("thread");
        }
        assert_eq!(t.counter("par"), 8000);
    }
}
