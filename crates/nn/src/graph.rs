//! Operator graphs.
//!
//! Models are represented as DAGs of [`Operator`] nodes. For the analytical
//! and cycle models the topological order of operators is what matters; the
//! graph also records producer/consumer edges so the compiler can perform
//! operator fusion.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

use dscs_simcore::quantity::Bytes;

use crate::op::{Operator, OperatorClass};

/// Identifier of a node within one graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A node: an operator plus its producers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Node identifier (index into the graph's node list).
    pub id: NodeId,
    /// Human-readable layer name (e.g. `"layer3.conv2"`).
    pub name: String,
    /// The operator.
    pub op: Operator,
    /// Producer nodes whose outputs feed this node.
    pub inputs: Vec<NodeId>,
}

/// An operator graph in topological order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    name: String,
    nodes: Vec<Node>,
}

impl Graph {
    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node lookup.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Total FLOPs across all operators.
    pub fn total_flops(&self) -> u64 {
        self.nodes.iter().map(|n| n.op.flops()).sum()
    }

    /// Total weight bytes across all operators (the model size).
    pub fn total_weight_bytes(&self) -> Bytes {
        self.nodes.iter().map(|n| n.op.weight_bytes()).sum()
    }

    /// Total parameter count.
    pub fn parameter_count(&self) -> u64 {
        self.nodes.iter().map(|n| n.op.parameter_count()).sum()
    }

    /// Total activation traffic (inputs + outputs) across operators, an upper
    /// bound on off-chip activation movement with no fusion.
    pub fn total_activation_bytes(&self) -> Bytes {
        self.nodes
            .iter()
            .map(|n| n.op.input_bytes() + n.op.output_bytes())
            .sum()
    }

    /// FLOPs broken down by operator class.
    pub fn flops_by_class(&self) -> [(OperatorClass, u64); 3] {
        let mut gemm = 0;
        let mut vector = 0;
        let mut data = 0;
        for n in &self.nodes {
            match n.op.class() {
                OperatorClass::Gemm => gemm += n.op.flops(),
                OperatorClass::Vector => vector += n.op.flops(),
                OperatorClass::DataMovement => data += n.op.flops(),
            }
        }
        [
            (OperatorClass::Gemm, gemm),
            (OperatorClass::Vector, vector),
            (OperatorClass::DataMovement, data),
        ]
    }

    /// Consumers of each node (inverse edges), indexed by node id.
    pub fn consumers(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for node in &self.nodes {
            for &input in &node.inputs {
                out[input.0].push(node.id);
            }
        }
        out
    }

    /// Checks structural invariants: ids are dense, inputs reference earlier
    /// nodes only (topological order), no self-edges.
    pub fn validate(&self) -> Result<(), GraphError> {
        for (idx, node) in self.nodes.iter().enumerate() {
            if node.id.0 != idx {
                return Err(GraphError::NonDenseIds {
                    expected: idx,
                    found: node.id,
                });
            }
            let mut seen = HashSet::new();
            for &input in &node.inputs {
                if input.0 >= idx {
                    return Err(GraphError::ForwardEdge {
                        node: node.id,
                        input,
                    });
                }
                if !seen.insert(input) {
                    return Err(GraphError::DuplicateEdge {
                        node: node.id,
                        input,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Structural errors reported by [`Graph::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Node ids are not the dense range `0..len`.
    NonDenseIds {
        /// Expected id at this position.
        expected: usize,
        /// Id actually found.
        found: NodeId,
    },
    /// A node references an input at or after its own position.
    ForwardEdge {
        /// Offending node.
        node: NodeId,
        /// Input that is not an earlier node.
        input: NodeId,
    },
    /// A node lists the same input twice.
    DuplicateEdge {
        /// Offending node.
        node: NodeId,
        /// Duplicated input.
        input: NodeId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NonDenseIds { expected, found } => {
                write!(f, "node id {found} found where {expected} was expected")
            }
            GraphError::ForwardEdge { node, input } => {
                write!(f, "node {node} references non-earlier input {input}")
            }
            GraphError::DuplicateEdge { node, input } => {
                write!(f, "node {node} lists input {input} twice")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Incremental graph builder that assigns dense ids and maintains topological
/// order by construction.
///
/// ```
/// use dscs_nn::graph::GraphBuilder;
/// use dscs_nn::op::Operator;
/// use dscs_nn::tensor::DType;
///
/// let mut b = GraphBuilder::new("tiny");
/// let a = b.add("fc1", Operator::MatMul { m: 1, k: 4, n: 8, dtype: DType::Int8 }, &[]);
/// let _ = b.add("fc2", Operator::MatMul { m: 1, k: 8, n: 2, dtype: DType::Int8 }, &[a]);
/// let g = b.build();
/// assert_eq!(g.len(), 2);
/// assert!(g.validate().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    name: String,
    nodes: Vec<Node>,
}

impl GraphBuilder {
    /// Creates an empty builder for a model with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        GraphBuilder {
            name: name.into(),
            nodes: Vec::new(),
        }
    }

    /// Appends an operator fed by `inputs` and returns its id.
    ///
    /// # Panics
    /// Panics if any input id has not been added yet.
    pub fn add(&mut self, name: impl Into<String>, op: Operator, inputs: &[NodeId]) -> NodeId {
        let id = NodeId(self.nodes.len());
        for &input in inputs {
            assert!(
                input.0 < id.0,
                "input {input} must be added before node {id}"
            );
        }
        self.nodes.push(Node {
            id,
            name: name.into(),
            op,
            inputs: inputs.to_vec(),
        });
        id
    }

    /// Appends an operator fed by the previously added node (or nothing if the
    /// graph is empty) — the common case for sequential models.
    pub fn add_seq(&mut self, name: impl Into<String>, op: Operator) -> NodeId {
        let inputs: Vec<NodeId> = if self.nodes.is_empty() {
            Vec::new()
        } else {
            vec![NodeId(self.nodes.len() - 1)]
        };
        self.add(name, op, &inputs)
    }

    /// Id of the most recently added node.
    ///
    /// # Panics
    /// Panics if the builder is empty.
    pub fn last(&self) -> NodeId {
        NodeId(self.nodes.len().checked_sub(1).expect("builder is empty"))
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Finalises the graph.
    pub fn build(self) -> Graph {
        let graph = Graph {
            name: self.name,
            nodes: self.nodes,
        };
        debug_assert!(graph.validate().is_ok());
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{ActivationKind, Operator};
    use crate::tensor::DType;

    fn mm(m: u64, k: u64, n: u64) -> Operator {
        Operator::MatMul {
            m,
            k,
            n,
            dtype: DType::Int8,
        }
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = GraphBuilder::new("t");
        let a = b.add("a", mm(1, 2, 3), &[]);
        let c = b.add("c", mm(1, 3, 4), &[a]);
        assert_eq!(a, NodeId(0));
        assert_eq!(c, NodeId(1));
        let g = b.build();
        assert!(g.validate().is_ok());
        assert_eq!(g.node(c).inputs, vec![a]);
    }

    #[test]
    fn sequential_builder_links_previous() {
        let mut b = GraphBuilder::new("seq");
        b.add_seq("a", mm(1, 2, 3));
        b.add_seq(
            "act",
            Operator::Activation {
                kind: ActivationKind::Relu,
                elements: 3,
                dtype: DType::Int8,
            },
        );
        let g = b.build();
        assert_eq!(g.node(NodeId(1)).inputs, vec![NodeId(0)]);
    }

    #[test]
    fn totals_sum_over_nodes() {
        let mut b = GraphBuilder::new("t");
        b.add_seq("a", mm(2, 4, 8));
        b.add_seq("b", mm(2, 8, 16));
        let g = b.build();
        assert_eq!(g.total_flops(), 2 * 2 * 4 * 8 + 2 * 2 * 8 * 16);
        assert_eq!(g.parameter_count(), 4 * 8 + 8 * 16);
        assert_eq!(g.total_weight_bytes().as_u64(), 4 * 8 + 8 * 16);
    }

    #[test]
    fn flops_by_class_partitions_total() {
        let mut b = GraphBuilder::new("t");
        b.add_seq("mm", mm(16, 16, 16));
        b.add_seq(
            "act",
            Operator::Activation {
                kind: ActivationKind::Relu,
                elements: 256,
                dtype: DType::Int8,
            },
        );
        let g = b.build();
        let by_class = g.flops_by_class();
        let sum: u64 = by_class.iter().map(|(_, f)| f).sum();
        assert_eq!(sum, g.total_flops());
        assert!(by_class[0].1 > by_class[1].1);
    }

    #[test]
    fn consumers_invert_edges() {
        let mut b = GraphBuilder::new("t");
        let a = b.add("a", mm(1, 2, 3), &[]);
        let c = b.add("c", mm(1, 3, 4), &[a]);
        let d = b.add("d", mm(1, 3, 4), &[a]);
        let g = b.build();
        let consumers = g.consumers();
        assert_eq!(consumers[a.0], vec![c, d]);
        assert!(consumers[c.0].is_empty());
    }

    #[test]
    fn validate_catches_forward_edges() {
        let g = Graph {
            name: "bad".into(),
            nodes: vec![Node {
                id: NodeId(0),
                name: "a".into(),
                op: mm(1, 1, 1),
                inputs: vec![NodeId(0)],
            }],
        };
        assert!(matches!(g.validate(), Err(GraphError::ForwardEdge { .. })));
    }

    #[test]
    #[should_panic(expected = "must be added before")]
    fn builder_rejects_unknown_inputs() {
        let mut b = GraphBuilder::new("t");
        b.add("a", mm(1, 1, 1), &[NodeId(5)]);
    }
}
