//! Reusable layer-block builders for the model zoo.
//!
//! These helpers emit the operator sequences that make up the benchmark
//! networks: convolution + batch-norm + activation blocks, residual
//! bottlenecks, transformer encoder/decoder blocks and classifier heads.

use crate::graph::GraphBuilder;
use crate::op::{ActivationKind, ElementwiseKind, Operator};
use crate::tensor::DType;

/// Spatial feature-map dimensions threaded through convolutional builders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureMap {
    /// Batch size.
    pub batch: u64,
    /// Channels.
    pub channels: u64,
    /// Height.
    pub h: u64,
    /// Width.
    pub w: u64,
}

impl FeatureMap {
    /// Number of elements.
    pub fn numel(&self) -> u64 {
        self.batch * self.channels * self.h * self.w
    }
}

/// Appends `conv -> batch-norm -> relu`, returning the output feature map.
pub fn conv_bn_relu(
    b: &mut GraphBuilder,
    name: &str,
    input: FeatureMap,
    out_channels: u64,
    kernel: u64,
    stride: u64,
    dtype: DType,
) -> FeatureMap {
    let conv = Operator::Conv2d {
        batch: input.batch,
        in_channels: input.channels,
        out_channels,
        in_h: input.h,
        in_w: input.w,
        kernel,
        stride,
        dtype,
    };
    b.add_seq(format!("{name}.conv"), conv);
    let out = FeatureMap {
        batch: input.batch,
        channels: out_channels,
        h: input.h.div_ceil(stride),
        w: input.w.div_ceil(stride),
    };
    b.add_seq(
        format!("{name}.bn"),
        Operator::BatchNorm {
            elements: out.numel(),
            dtype,
        },
    );
    b.add_seq(
        format!("{name}.relu"),
        Operator::Activation {
            kind: ActivationKind::Relu,
            elements: out.numel(),
            dtype,
        },
    );
    out
}

/// Appends a ResNet bottleneck block (1x1 reduce, 3x3, 1x1 expand + residual add).
pub fn resnet_bottleneck(
    b: &mut GraphBuilder,
    name: &str,
    input: FeatureMap,
    mid_channels: u64,
    out_channels: u64,
    stride: u64,
    dtype: DType,
) -> FeatureMap {
    let skip_src = if b.is_empty() { None } else { Some(b.last()) };
    let x = conv_bn_relu(b, &format!("{name}.a"), input, mid_channels, 1, 1, dtype);
    let x = conv_bn_relu(b, &format!("{name}.b"), x, mid_channels, 3, stride, dtype);
    let out = conv_bn_relu(b, &format!("{name}.c"), x, out_channels, 1, 1, dtype);
    // Projection shortcut when shape changes, then residual add.
    if input.channels != out_channels || stride != 1 {
        if let Some(src) = skip_src {
            let proj = Operator::Conv2d {
                batch: input.batch,
                in_channels: input.channels,
                out_channels,
                in_h: input.h,
                in_w: input.w,
                kernel: 1,
                stride,
                dtype,
            };
            b.add(format!("{name}.proj"), proj, &[src]);
        } else {
            b.add_seq(
                format!("{name}.proj"),
                Operator::Conv2d {
                    batch: input.batch,
                    in_channels: input.channels,
                    out_channels,
                    in_h: input.h,
                    in_w: input.w,
                    kernel: 1,
                    stride,
                    dtype,
                },
            );
        }
    }
    b.add_seq(
        format!("{name}.add"),
        Operator::Elementwise {
            kind: ElementwiseKind::Add,
            elements: out.numel(),
            dtype,
        },
    );
    out
}

/// Appends a MobileNet-style depthwise-separable block.
pub fn depthwise_separable(
    b: &mut GraphBuilder,
    name: &str,
    input: FeatureMap,
    out_channels: u64,
    stride: u64,
    dtype: DType,
) -> FeatureMap {
    b.add_seq(
        format!("{name}.dw"),
        Operator::DepthwiseConv2d {
            batch: input.batch,
            channels: input.channels,
            in_h: input.h,
            in_w: input.w,
            kernel: 3,
            stride,
            dtype,
        },
    );
    let mid = FeatureMap {
        batch: input.batch,
        channels: input.channels,
        h: input.h.div_ceil(stride),
        w: input.w.div_ceil(stride),
    };
    b.add_seq(
        format!("{name}.dw.bn"),
        Operator::BatchNorm {
            elements: mid.numel(),
            dtype,
        },
    );
    b.add_seq(
        format!("{name}.dw.relu"),
        Operator::Activation {
            kind: ActivationKind::Relu,
            elements: mid.numel(),
            dtype,
        },
    );
    conv_bn_relu(b, &format!("{name}.pw"), mid, out_channels, 1, 1, dtype)
}

/// Appends a transformer encoder block: multi-head self-attention + FFN with
/// residual adds and layer norms.
pub fn transformer_encoder_block(
    b: &mut GraphBuilder,
    name: &str,
    tokens: u64,
    hidden: u64,
    ffn: u64,
    heads: u64,
    dtype: DType,
) {
    attention_block(
        b,
        &format!("{name}.attn"),
        tokens,
        tokens,
        hidden,
        heads,
        dtype,
    );
    feed_forward_block(b, &format!("{name}.ffn"), tokens, hidden, ffn, dtype);
}

/// Appends a transformer decoder block: masked self-attention, cross-attention
/// over `src_tokens` encoder outputs, and an FFN.
#[allow(clippy::too_many_arguments)]
pub fn transformer_decoder_block(
    b: &mut GraphBuilder,
    name: &str,
    tgt_tokens: u64,
    src_tokens: u64,
    hidden: u64,
    ffn: u64,
    heads: u64,
    dtype: DType,
) {
    attention_block(
        b,
        &format!("{name}.self_attn"),
        tgt_tokens,
        tgt_tokens,
        hidden,
        heads,
        dtype,
    );
    attention_block(
        b,
        &format!("{name}.cross_attn"),
        tgt_tokens,
        src_tokens,
        hidden,
        heads,
        dtype,
    );
    feed_forward_block(b, &format!("{name}.ffn"), tgt_tokens, hidden, ffn, dtype);
}

/// Appends a multi-head attention block where `q_tokens` queries attend over
/// `kv_tokens` keys/values.
pub fn attention_block(
    b: &mut GraphBuilder,
    name: &str,
    q_tokens: u64,
    kv_tokens: u64,
    hidden: u64,
    heads: u64,
    dtype: DType,
) {
    // Q, K, V projections.
    b.add_seq(
        format!("{name}.q_proj"),
        Operator::MatMul {
            m: q_tokens,
            k: hidden,
            n: hidden,
            dtype,
        },
    );
    b.add_seq(
        format!("{name}.k_proj"),
        Operator::MatMul {
            m: kv_tokens,
            k: hidden,
            n: hidden,
            dtype,
        },
    );
    b.add_seq(
        format!("{name}.v_proj"),
        Operator::MatMul {
            m: kv_tokens,
            k: hidden,
            n: hidden,
            dtype,
        },
    );
    // Scores: per head, [q, d_head] x [d_head, kv].
    let d_head = hidden / heads.max(1);
    b.add_seq(
        format!("{name}.scores"),
        Operator::MatMul {
            m: q_tokens * heads,
            k: d_head,
            n: kv_tokens,
            dtype,
        },
    );
    b.add_seq(
        format!("{name}.softmax"),
        Operator::Softmax {
            rows: q_tokens * heads,
            cols: kv_tokens,
            dtype,
        },
    );
    // Context: [q, kv] x [kv, d_head] per head.
    b.add_seq(
        format!("{name}.context"),
        Operator::MatMul {
            m: q_tokens * heads,
            k: kv_tokens,
            n: d_head,
            dtype,
        },
    );
    // Output projection + residual + layer norm.
    b.add_seq(
        format!("{name}.out_proj"),
        Operator::MatMul {
            m: q_tokens,
            k: hidden,
            n: hidden,
            dtype,
        },
    );
    b.add_seq(
        format!("{name}.residual"),
        Operator::Elementwise {
            kind: ElementwiseKind::Add,
            elements: q_tokens * hidden,
            dtype,
        },
    );
    b.add_seq(
        format!("{name}.ln"),
        Operator::LayerNorm {
            rows: q_tokens,
            cols: hidden,
            dtype,
        },
    );
}

/// Appends a transformer feed-forward block (two projections with GELU) plus
/// residual add and layer norm.
pub fn feed_forward_block(
    b: &mut GraphBuilder,
    name: &str,
    tokens: u64,
    hidden: u64,
    ffn: u64,
    dtype: DType,
) {
    b.add_seq(
        format!("{name}.fc1"),
        Operator::MatMul {
            m: tokens,
            k: hidden,
            n: ffn,
            dtype,
        },
    );
    b.add_seq(
        format!("{name}.gelu"),
        Operator::Activation {
            kind: ActivationKind::Gelu,
            elements: tokens * ffn,
            dtype,
        },
    );
    b.add_seq(
        format!("{name}.fc2"),
        Operator::MatMul {
            m: tokens,
            k: ffn,
            n: hidden,
            dtype,
        },
    );
    b.add_seq(
        format!("{name}.residual"),
        Operator::Elementwise {
            kind: ElementwiseKind::Add,
            elements: tokens * hidden,
            dtype,
        },
    );
    b.add_seq(
        format!("{name}.ln"),
        Operator::LayerNorm {
            rows: tokens,
            cols: hidden,
            dtype,
        },
    );
}

/// Appends a global-average-pool + fully-connected classifier head.
pub fn classifier_head(
    b: &mut GraphBuilder,
    name: &str,
    input: FeatureMap,
    classes: u64,
    dtype: DType,
) {
    b.add_seq(
        format!("{name}.gap"),
        Operator::Pool {
            batch: input.batch,
            channels: input.channels,
            out_h: 1,
            out_w: 1,
            window: input.h,
            dtype,
        },
    );
    b.add_seq(
        format!("{name}.fc"),
        Operator::MatMul {
            m: input.batch,
            k: input.channels,
            n: classes,
            dtype,
        },
    );
    b.add_seq(
        format!("{name}.softmax"),
        Operator::Softmax {
            rows: input.batch,
            cols: classes,
            dtype,
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn conv_block_tracks_spatial_dims() {
        let mut b = GraphBuilder::new("t");
        let input = FeatureMap {
            batch: 1,
            channels: 3,
            h: 224,
            w: 224,
        };
        let out = conv_bn_relu(&mut b, "stem", input, 64, 7, 2, DType::Int8);
        assert_eq!(out.channels, 64);
        assert_eq!(out.h, 112);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn bottleneck_emits_projection_on_shape_change() {
        let mut b = GraphBuilder::new("t");
        let input = FeatureMap {
            batch: 1,
            channels: 64,
            h: 56,
            w: 56,
        };
        conv_bn_relu(&mut b, "stem", input, 64, 3, 1, DType::Int8);
        let before = b.len();
        resnet_bottleneck(&mut b, "block", input, 64, 256, 1, DType::Int8);
        let names: Vec<String> = (before..b.len())
            .map(|i| b.clone().build().nodes()[i].name.clone())
            .collect();
        assert!(names.iter().any(|n| n.contains("proj")));
        assert!(names.iter().any(|n| n.contains("add")));
    }

    #[test]
    fn attention_flops_scale_quadratically_with_tokens() {
        let flops_for = |tokens: u64| {
            let mut b = GraphBuilder::new("t");
            attention_block(&mut b, "a", tokens, tokens, 768, 12, DType::Int8);
            b.build().total_flops()
        };
        let f128 = flops_for(128);
        let f256 = flops_for(256);
        // Projections scale linearly, score/context quadratically, so the ratio
        // sits between 2x and 4x.
        assert!(f256 > 2 * f128 && f256 < 4 * f128);
    }

    #[test]
    fn encoder_block_has_attention_and_ffn() {
        let mut b = GraphBuilder::new("t");
        transformer_encoder_block(&mut b, "enc0", 128, 768, 3072, 12, DType::Int8);
        let g = b.build();
        assert!(g.nodes().iter().any(|n| n.name.contains("attn")));
        assert!(g.nodes().iter().any(|n| n.name.contains("ffn")));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn decoder_block_has_cross_attention() {
        let mut b = GraphBuilder::new("t");
        transformer_decoder_block(&mut b, "dec0", 64, 128, 512, 2048, 8, DType::Int8);
        let g = b.build();
        assert!(g.nodes().iter().any(|n| n.name.contains("cross_attn")));
    }

    #[test]
    fn depthwise_separable_produces_pointwise_output_channels() {
        let mut b = GraphBuilder::new("t");
        let input = FeatureMap {
            batch: 1,
            channels: 32,
            h: 112,
            w: 112,
        };
        let out = depthwise_separable(&mut b, "ds1", input, 64, 1, DType::Int8);
        assert_eq!(out.channels, 64);
        assert_eq!(out.h, 112);
    }

    #[test]
    fn classifier_head_ends_with_softmax() {
        let mut b = GraphBuilder::new("t");
        let input = FeatureMap {
            batch: 1,
            channels: 2048,
            h: 7,
            w: 7,
        };
        conv_bn_relu(&mut b, "x", input, 2048, 1, 1, DType::Int8);
        classifier_head(&mut b, "head", input, 1000, DType::Int8);
        let g = b.build();
        assert!(g
            .nodes()
            .last()
            .expect("non-empty")
            .name
            .contains("softmax"));
    }
}
