//! # dscs-nn
//!
//! Machine-learning workload intermediate representation (IR) for the
//! DSCS-Serverless reproduction.
//!
//! The paper targets a domain-specific accelerator for ML/DNN serverless
//! functions, spanning image classification, object detection, semantic
//! analysis, logistic regression, neural machine translation, conversational AI
//! and generative AI. This crate provides:
//!
//! * [`tensor`] — tensor shapes and element types with byte accounting.
//! * [`op`] — the operator vocabulary the paper's DSA supports (GEMM-class
//!   operators executed on the Matrix Processing Unit, and vector-class
//!   operators executed on the Vector Processing Unit).
//! * [`graph`] — operator graphs (layers in topological order) with aggregate
//!   FLOP, weight and activation accounting.
//! * [`layers`] — reusable building blocks (conv blocks, attention blocks,
//!   feed-forward blocks) used by the model zoo.
//! * [`zoo`] — structural models of the eight benchmark applications' networks
//!   (Table 1): logistic regression, ResNet-50, SSD-MobileNet, Inception-v3,
//!   BERT, a seq2seq translation transformer, a GPT-2-class chatbot model and a
//!   Vision Transformer.
//! * [`preprocess`] — the data pre/post-processing functions that accompany the
//!   inference function in each serverless pipeline.
//!
//! The IR is *structural*: it records shapes, FLOPs and bytes, not weight
//! values, because every downstream consumer (the DSA cycle model, the platform
//! roofline models, the compiler) only needs operation counts and data volumes.
//!
//! # Example
//!
//! ```
//! use dscs_nn::zoo::{Model, ModelKind};
//!
//! let resnet = Model::build(ModelKind::ResNet50);
//! assert!(resnet.graph().total_flops() > 7.0e9 as u64); // ~8 GFLOPs per image
//! assert!(resnet.parameter_count() > 20_000_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod layers;
pub mod op;
pub mod preprocess;
pub mod tensor;
pub mod zoo;

pub use graph::{Graph, GraphBuilder, Node, NodeId};
pub use op::{ActivationKind, ElementwiseKind, Operator, OperatorClass};
pub use preprocess::{PostprocessSpec, PreprocessKind, PreprocessSpec};
pub use tensor::{DType, Shape, TensorSpec};
pub use zoo::{Model, ModelKind};
