//! The operator vocabulary supported by the DSCS-Serverless DSA.
//!
//! The paper's workload analysis (Section 4) finds that the benchmark models
//! consist of GEMM-class operators (matrix multiplication, convolution) plus
//! element-wise math, activations, data-layout transformations,
//! reduction-based normalisations and data-type conversions. GEMM-class
//! operators map to the Matrix Processing Unit; everything else maps to the
//! Vector Processing Unit.

use serde::{Deserialize, Serialize};
use std::fmt;

use dscs_simcore::quantity::Bytes;

use crate::tensor::DType;

/// Element-wise activation functions executed on the VPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivationKind {
    /// Rectified linear unit.
    Relu,
    /// Leaky rectified linear unit.
    LeakyRelu,
    /// Gaussian error linear unit (transformers).
    Gelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl ActivationKind {
    /// Approximate arithmetic operations per element (used by the VPU cycle model).
    pub const fn ops_per_element(self) -> u64 {
        match self {
            ActivationKind::Relu => 1,
            ActivationKind::LeakyRelu => 2,
            ActivationKind::Gelu => 8,
            ActivationKind::Tanh | ActivationKind::Sigmoid => 4,
        }
    }
}

/// Element-wise binary/unary arithmetic executed on the VPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElementwiseKind {
    /// Element-wise addition (residual connections, bias add).
    Add,
    /// Element-wise subtraction.
    Sub,
    /// Element-wise multiplication (gating, scaling).
    Mul,
    /// Element-wise division.
    Div,
}

/// Which execution unit an operator maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperatorClass {
    /// Executed on the systolic-array Matrix Processing Unit.
    Gemm,
    /// Executed on the SIMD Vector Processing Unit.
    Vector,
    /// Pure data movement / layout change (no arithmetic).
    DataMovement,
}

/// One operator (layer) in a model graph.
///
/// Every variant knows its FLOP count and the bytes it reads and writes, which
/// is all the cycle, roofline and energy models consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operator {
    /// Dense matrix multiplication: `[m, k] x [k, n] -> [m, n]`.
    MatMul {
        /// Output rows (typically batch x sequence).
        m: u64,
        /// Reduction dimension.
        k: u64,
        /// Output columns.
        n: u64,
        /// Element type of the inputs.
        dtype: DType,
    },
    /// 2-D convolution in NCHW layout.
    Conv2d {
        /// Batch size.
        batch: u64,
        /// Input channels.
        in_channels: u64,
        /// Output channels.
        out_channels: u64,
        /// Input spatial height.
        in_h: u64,
        /// Input spatial width.
        in_w: u64,
        /// Square kernel size.
        kernel: u64,
        /// Stride.
        stride: u64,
        /// Element type.
        dtype: DType,
    },
    /// Depthwise 2-D convolution (MobileNet-style).
    DepthwiseConv2d {
        /// Batch size.
        batch: u64,
        /// Channels (input == output).
        channels: u64,
        /// Input spatial height.
        in_h: u64,
        /// Input spatial width.
        in_w: u64,
        /// Square kernel size.
        kernel: u64,
        /// Stride.
        stride: u64,
        /// Element type.
        dtype: DType,
    },
    /// Element-wise arithmetic over `elements` values.
    Elementwise {
        /// Operation kind.
        kind: ElementwiseKind,
        /// Number of elements.
        elements: u64,
        /// Element type.
        dtype: DType,
    },
    /// Element-wise activation function.
    Activation {
        /// Activation kind.
        kind: ActivationKind,
        /// Number of elements.
        elements: u64,
        /// Element type.
        dtype: DType,
    },
    /// Softmax over `rows` rows of `cols` values (attention, classifier heads).
    Softmax {
        /// Number of independent rows.
        rows: u64,
        /// Values per row.
        cols: u64,
        /// Element type.
        dtype: DType,
    },
    /// Layer normalisation over `rows` rows of `cols` values.
    LayerNorm {
        /// Number of independent rows.
        rows: u64,
        /// Values per row.
        cols: u64,
        /// Element type.
        dtype: DType,
    },
    /// Batch normalisation (inference: scale + shift) over `elements` values.
    BatchNorm {
        /// Number of elements.
        elements: u64,
        /// Element type.
        dtype: DType,
    },
    /// Spatial pooling (max or average).
    Pool {
        /// Batch size.
        batch: u64,
        /// Channels.
        channels: u64,
        /// Output spatial height.
        out_h: u64,
        /// Output spatial width.
        out_w: u64,
        /// Square pooling window.
        window: u64,
        /// Element type.
        dtype: DType,
    },
    /// Embedding table lookup: `tokens` gathers of `dim`-wide rows.
    Embedding {
        /// Number of lookups.
        tokens: u64,
        /// Embedding width.
        dim: u64,
        /// Vocabulary size (weights).
        vocab: u64,
        /// Element type.
        dtype: DType,
    },
    /// Data layout transformation (transpose / reshape / im2col staging).
    Layout {
        /// Number of elements moved.
        elements: u64,
        /// Element type.
        dtype: DType,
    },
    /// Data type conversion between `from` and `to` over `elements` values.
    Cast {
        /// Number of elements.
        elements: u64,
        /// Source type.
        from: DType,
        /// Destination type.
        to: DType,
    },
}

impl Operator {
    /// The execution unit class of this operator.
    pub fn class(&self) -> OperatorClass {
        match self {
            Operator::MatMul { .. }
            | Operator::Conv2d { .. }
            | Operator::DepthwiseConv2d { .. } => OperatorClass::Gemm,
            Operator::Layout { .. } => OperatorClass::DataMovement,
            _ => OperatorClass::Vector,
        }
    }

    /// Output spatial size of a strided convolution (same padding).
    fn conv_out(dim: u64, stride: u64) -> u64 {
        dim.div_ceil(stride)
    }

    /// Floating-point (or int) operations performed, counting one
    /// multiply-accumulate as two operations.
    pub fn flops(&self) -> u64 {
        match *self {
            Operator::MatMul { m, k, n, .. } => 2 * m * k * n,
            Operator::Conv2d {
                batch,
                in_channels,
                out_channels,
                in_h,
                in_w,
                kernel,
                stride,
                ..
            } => {
                let out_h = Self::conv_out(in_h, stride);
                let out_w = Self::conv_out(in_w, stride);
                2 * batch * out_channels * out_h * out_w * in_channels * kernel * kernel
            }
            Operator::DepthwiseConv2d {
                batch,
                channels,
                in_h,
                in_w,
                kernel,
                stride,
                ..
            } => {
                let out_h = Self::conv_out(in_h, stride);
                let out_w = Self::conv_out(in_w, stride);
                2 * batch * channels * out_h * out_w * kernel * kernel
            }
            Operator::Elementwise { elements, .. } => elements,
            Operator::Activation { kind, elements, .. } => elements * kind.ops_per_element(),
            Operator::Softmax { rows, cols, .. } => rows * cols * 5,
            Operator::LayerNorm { rows, cols, .. } => rows * cols * 8,
            Operator::BatchNorm { elements, .. } => elements * 2,
            Operator::Pool {
                batch,
                channels,
                out_h,
                out_w,
                window,
                ..
            } => batch * channels * out_h * out_w * window * window,
            Operator::Embedding { tokens, dim, .. } => tokens * dim,
            Operator::Layout { .. } => 0,
            Operator::Cast { elements, .. } => elements,
        }
    }

    /// Bytes of model weights this operator reads (zero for weight-free ops).
    pub fn weight_bytes(&self) -> Bytes {
        let bytes = match *self {
            Operator::MatMul { k, n, dtype, .. } => k * n * dtype.size_bytes(),
            Operator::Conv2d {
                in_channels,
                out_channels,
                kernel,
                dtype,
                ..
            } => out_channels * in_channels * kernel * kernel * dtype.size_bytes(),
            Operator::DepthwiseConv2d {
                channels,
                kernel,
                dtype,
                ..
            } => channels * kernel * kernel * dtype.size_bytes(),
            Operator::BatchNorm { elements: _, dtype } => {
                // Scale and shift vectors are negligible relative to conv weights;
                // approximate with a small fixed charge.
                2 * 1024 * dtype.size_bytes()
            }
            Operator::Embedding {
                vocab, dim, dtype, ..
            } => vocab * dim * dtype.size_bytes(),
            _ => 0,
        };
        Bytes::new(bytes)
    }

    /// Bytes of activations read (excluding weights).
    pub fn input_bytes(&self) -> Bytes {
        let bytes = match *self {
            Operator::MatMul { m, k, dtype, .. } => m * k * dtype.size_bytes(),
            Operator::Conv2d {
                batch,
                in_channels,
                in_h,
                in_w,
                dtype,
                ..
            } => batch * in_channels * in_h * in_w * dtype.size_bytes(),
            Operator::DepthwiseConv2d {
                batch,
                channels,
                in_h,
                in_w,
                dtype,
                ..
            } => batch * channels * in_h * in_w * dtype.size_bytes(),
            Operator::Elementwise {
                elements, dtype, ..
            } => 2 * elements * dtype.size_bytes(),
            Operator::Activation {
                elements, dtype, ..
            } => elements * dtype.size_bytes(),
            Operator::Softmax { rows, cols, dtype } | Operator::LayerNorm { rows, cols, dtype } => {
                rows * cols * dtype.size_bytes()
            }
            Operator::BatchNorm { elements, dtype } => elements * dtype.size_bytes(),
            Operator::Pool {
                batch,
                channels,
                out_h,
                out_w,
                window,
                dtype,
            } => batch * channels * out_h * out_w * window * window * dtype.size_bytes(),
            Operator::Embedding { tokens, .. } => tokens * 4, // token ids are int32
            Operator::Layout { elements, dtype } => elements * dtype.size_bytes(),
            Operator::Cast { elements, from, .. } => elements * from.size_bytes(),
        };
        Bytes::new(bytes)
    }

    /// Bytes of activations written.
    pub fn output_bytes(&self) -> Bytes {
        let bytes = match *self {
            Operator::MatMul { m, n, dtype, .. } => m * n * dtype.size_bytes(),
            Operator::Conv2d {
                batch,
                out_channels,
                in_h,
                in_w,
                stride,
                dtype,
                ..
            } => {
                batch
                    * out_channels
                    * Self::conv_out(in_h, stride)
                    * Self::conv_out(in_w, stride)
                    * dtype.size_bytes()
            }
            Operator::DepthwiseConv2d {
                batch,
                channels,
                in_h,
                in_w,
                stride,
                dtype,
                ..
            } => {
                batch
                    * channels
                    * Self::conv_out(in_h, stride)
                    * Self::conv_out(in_w, stride)
                    * dtype.size_bytes()
            }
            Operator::Elementwise {
                elements, dtype, ..
            }
            | Operator::Activation {
                elements, dtype, ..
            }
            | Operator::BatchNorm { elements, dtype }
            | Operator::Layout { elements, dtype } => elements * dtype.size_bytes(),
            Operator::Softmax { rows, cols, dtype } | Operator::LayerNorm { rows, cols, dtype } => {
                rows * cols * dtype.size_bytes()
            }
            Operator::Pool {
                batch,
                channels,
                out_h,
                out_w,
                dtype,
                ..
            } => batch * channels * out_h * out_w * dtype.size_bytes(),
            Operator::Embedding {
                tokens, dim, dtype, ..
            } => tokens * dim * dtype.size_bytes(),
            Operator::Cast { elements, to, .. } => elements * to.size_bytes(),
        };
        Bytes::new(bytes)
    }

    /// Number of weight parameters (element count, not bytes).
    pub fn parameter_count(&self) -> u64 {
        match *self {
            Operator::MatMul { k, n, .. } => k * n,
            Operator::Conv2d {
                in_channels,
                out_channels,
                kernel,
                ..
            } => out_channels * in_channels * kernel * kernel,
            Operator::DepthwiseConv2d {
                channels, kernel, ..
            } => channels * kernel * kernel,
            Operator::Embedding { vocab, dim, .. } => vocab * dim,
            _ => 0,
        }
    }

    /// Total bytes moved (weights + inputs + outputs); the operator's memory
    /// traffic assuming no on-chip reuse. Cycle models apply reuse on top.
    pub fn total_bytes(&self) -> Bytes {
        self.weight_bytes() + self.input_bytes() + self.output_bytes()
    }

    /// Arithmetic intensity in FLOPs per byte of traffic.
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.total_bytes().as_f64();
        if bytes == 0.0 {
            return 0.0;
        }
        self.flops() as f64 / bytes
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operator::MatMul { m, k, n, .. } => write!(f, "MatMul({m}x{k}x{n})"),
            Operator::Conv2d {
                out_channels,
                kernel,
                stride,
                ..
            } => write!(f, "Conv2d(oc={out_channels},k={kernel},s={stride})"),
            Operator::DepthwiseConv2d {
                channels, kernel, ..
            } => write!(f, "DwConv2d(c={channels},k={kernel})"),
            Operator::Elementwise { kind, elements, .. } => {
                write!(f, "Elementwise({kind:?},{elements})")
            }
            Operator::Activation { kind, elements, .. } => {
                write!(f, "Activation({kind:?},{elements})")
            }
            Operator::Softmax { rows, cols, .. } => write!(f, "Softmax({rows}x{cols})"),
            Operator::LayerNorm { rows, cols, .. } => write!(f, "LayerNorm({rows}x{cols})"),
            Operator::BatchNorm { elements, .. } => write!(f, "BatchNorm({elements})"),
            Operator::Pool { window, .. } => write!(f, "Pool(w={window})"),
            Operator::Embedding { tokens, dim, .. } => write!(f, "Embedding({tokens}x{dim})"),
            Operator::Layout { elements, .. } => write!(f, "Layout({elements})"),
            Operator::Cast { elements, from, to } => write!(f, "Cast({elements},{from}->{to})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_flops_and_bytes() {
        let op = Operator::MatMul {
            m: 4,
            k: 8,
            n: 16,
            dtype: DType::Int8,
        };
        assert_eq!(op.flops(), 2 * 4 * 8 * 16);
        assert_eq!(op.weight_bytes().as_u64(), 8 * 16);
        assert_eq!(op.input_bytes().as_u64(), 4 * 8);
        assert_eq!(op.output_bytes().as_u64(), 4 * 16);
        assert_eq!(op.class(), OperatorClass::Gemm);
        assert_eq!(op.parameter_count(), 128);
    }

    #[test]
    fn conv_flops_scale_with_output_size() {
        let base = Operator::Conv2d {
            batch: 1,
            in_channels: 64,
            out_channels: 64,
            in_h: 56,
            in_w: 56,
            kernel: 3,
            stride: 1,
            dtype: DType::Int8,
        };
        let strided = Operator::Conv2d {
            batch: 1,
            in_channels: 64,
            out_channels: 64,
            in_h: 56,
            in_w: 56,
            kernel: 3,
            stride: 2,
            dtype: DType::Int8,
        };
        assert_eq!(base.flops(), 4 * strided.flops());
    }

    #[test]
    fn depthwise_is_cheaper_than_dense() {
        let dense = Operator::Conv2d {
            batch: 1,
            in_channels: 128,
            out_channels: 128,
            in_h: 28,
            in_w: 28,
            kernel: 3,
            stride: 1,
            dtype: DType::Int8,
        };
        let dw = Operator::DepthwiseConv2d {
            batch: 1,
            channels: 128,
            in_h: 28,
            in_w: 28,
            kernel: 3,
            stride: 1,
            dtype: DType::Int8,
        };
        assert!(dw.flops() * 64 < dense.flops());
    }

    #[test]
    fn vector_ops_classify_as_vector() {
        let act = Operator::Activation {
            kind: ActivationKind::Gelu,
            elements: 100,
            dtype: DType::Fp16,
        };
        assert_eq!(act.class(), OperatorClass::Vector);
        assert_eq!(act.flops(), 800);
        let layout = Operator::Layout {
            elements: 10,
            dtype: DType::Fp32,
        };
        assert_eq!(layout.class(), OperatorClass::DataMovement);
        assert_eq!(layout.flops(), 0);
    }

    #[test]
    fn cast_changes_output_size() {
        let cast = Operator::Cast {
            elements: 100,
            from: DType::Fp32,
            to: DType::Fp16,
        };
        assert_eq!(cast.input_bytes().as_u64(), 400);
        assert_eq!(cast.output_bytes().as_u64(), 200);
    }

    #[test]
    fn arithmetic_intensity_orders_gemm_above_vector() {
        let gemm = Operator::MatMul {
            m: 256,
            k: 1024,
            n: 1024,
            dtype: DType::Int8,
        };
        let add = Operator::Elementwise {
            kind: ElementwiseKind::Add,
            elements: 1024,
            dtype: DType::Fp16,
        };
        assert!(gemm.arithmetic_intensity() > add.arithmetic_intensity());
    }

    #[test]
    fn embedding_weights_dominate() {
        let emb = Operator::Embedding {
            tokens: 128,
            dim: 768,
            vocab: 30522,
            dtype: DType::Int8,
        };
        assert!(emb.weight_bytes().as_u64() > emb.output_bytes().as_u64());
        assert_eq!(emb.parameter_count(), 30522 * 768);
    }

    #[test]
    fn display_is_compact() {
        let op = Operator::Softmax {
            rows: 12,
            cols: 64,
            dtype: DType::Fp16,
        };
        assert_eq!(format!("{op}"), "Softmax(12x64)");
    }
}
