//! Data pre- and post-processing function models.
//!
//! In the paper's benchmark pipelines each application is a chain of three
//! serverless functions: *Function 1* performs data pre-processing (image
//! decode/resize/normalise, text tokenisation, tabular featurisation),
//! *Function 2* performs ML/DNN inference, and *Function 3* is a notification
//! service that always runs on a host CPU. The VPU can execute the
//! pre/post-processing functions, which is how DSCS-Serverless widens the set
//! of offloadable functions (Section 4.1).

use serde::{Deserialize, Serialize};

use dscs_simcore::quantity::Bytes;

use crate::graph::{Graph, GraphBuilder};
use crate::op::{ElementwiseKind, Operator};
use crate::tensor::DType;

/// The kind of pre-processing the application's first function performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PreprocessKind {
    /// JPEG-class image decode, resize to the model input and normalise.
    ImageDecodeResize {
        /// Target height after resize.
        target_h: u64,
        /// Target width after resize.
        target_w: u64,
        /// Channels (3 for RGB).
        channels: u64,
    },
    /// Text tokenisation into sub-word ids.
    Tokenize {
        /// Expected token count produced.
        tokens: u64,
    },
    /// Tabular featurisation (parsing, scaling, one-hot encoding).
    TabularFeaturize {
        /// Number of numeric features produced.
        features: u64,
    },
}

/// Specification of the pre-processing function: its kind plus the size of the
/// raw input object it reads from storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PreprocessSpec {
    /// What the function does.
    pub kind: PreprocessKind,
    /// Raw input object size read from storage (e.g. the JPEG size).
    pub raw_input: Bytes,
}

impl PreprocessSpec {
    /// Builds the operator graph for the pre-processing work at the given batch size.
    pub fn graph(&self, batch: u64) -> Graph {
        assert!(batch > 0, "batch must be positive");
        let mut b = GraphBuilder::new("preprocess");
        match self.kind {
            PreprocessKind::ImageDecodeResize {
                target_h,
                target_w,
                channels,
            } => {
                // Decode: roughly ~40 ops per output pixel for entropy decode + IDCT.
                let decoded = batch * channels * target_h * target_w * 4; // decode at 2x resolution
                b.add_seq(
                    "decode",
                    Operator::Elementwise {
                        kind: ElementwiseKind::Mul,
                        elements: decoded * 40,
                        dtype: DType::Int8,
                    },
                );
                // Resize: bilinear interpolation, ~8 ops/output pixel.
                let out_elems = batch * channels * target_h * target_w;
                b.add_seq(
                    "resize",
                    Operator::Elementwise {
                        kind: ElementwiseKind::Mul,
                        elements: out_elems * 8,
                        dtype: DType::Fp16,
                    },
                );
                // Normalise: subtract mean, divide by std.
                b.add_seq(
                    "normalize",
                    Operator::Elementwise {
                        kind: ElementwiseKind::Div,
                        elements: out_elems * 2,
                        dtype: DType::Fp16,
                    },
                );
                // Quantise to int8 for the DSA.
                b.add_seq(
                    "quantize",
                    Operator::Cast {
                        elements: out_elems,
                        from: DType::Fp16,
                        to: DType::Int8,
                    },
                );
            }
            PreprocessKind::Tokenize { tokens } => {
                // Byte-pair tokenisation: ~200 ops per produced token (vocab scan,
                // merges), plus layout of the id tensor.
                b.add_seq(
                    "tokenize",
                    Operator::Elementwise {
                        kind: ElementwiseKind::Add,
                        elements: batch * tokens * 200,
                        dtype: DType::Int32,
                    },
                );
                b.add_seq(
                    "pack_ids",
                    Operator::Layout {
                        elements: batch * tokens,
                        dtype: DType::Int32,
                    },
                );
            }
            PreprocessKind::TabularFeaturize { features } => {
                // Parse + scale + one-hot: ~30 ops per feature.
                b.add_seq(
                    "featurize",
                    Operator::Elementwise {
                        kind: ElementwiseKind::Mul,
                        elements: batch * features * 30,
                        dtype: DType::Fp32,
                    },
                );
                b.add_seq(
                    "cast",
                    Operator::Cast {
                        elements: batch * features,
                        from: DType::Fp32,
                        to: DType::Int8,
                    },
                );
            }
        }
        b.build()
    }

    /// Size of the pre-processed tensor handed to the inference function.
    pub fn output_size(&self, batch: u64) -> Bytes {
        match self.kind {
            PreprocessKind::ImageDecodeResize {
                target_h,
                target_w,
                channels,
            } => Bytes::new(batch * channels * target_h * target_w),
            PreprocessKind::Tokenize { tokens } => Bytes::new(batch * tokens * 4),
            PreprocessKind::TabularFeaturize { features } => Bytes::new(batch * features),
        }
    }
}

/// Specification of the post-inference output handed to the notification
/// function (Function 3), which always runs on a host CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PostprocessSpec {
    /// Size of the result object written back to persistent storage.
    pub result_size: Bytes,
    /// Approximate CPU work (operations) the notification function performs
    /// per request: formatting, templating and issuing the notification call.
    pub notification_ops: u64,
}

impl PostprocessSpec {
    /// A typical small-JSON notification result.
    pub fn json_result(result_size: Bytes) -> Self {
        PostprocessSpec {
            result_size,
            notification_ops: 2_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_preprocess_graph_ends_in_int8() {
        let spec = PreprocessSpec {
            kind: PreprocessKind::ImageDecodeResize {
                target_h: 224,
                target_w: 224,
                channels: 3,
            },
            raw_input: Bytes::from_mib(2),
        };
        let g = spec.graph(1);
        assert_eq!(g.len(), 4);
        assert!(g.total_flops() > 0);
        assert_eq!(spec.output_size(1).as_u64(), 3 * 224 * 224);
    }

    #[test]
    fn preprocess_flops_scale_with_batch() {
        let spec = PreprocessSpec {
            kind: PreprocessKind::Tokenize { tokens: 128 },
            raw_input: Bytes::from_kib(4),
        };
        let f1 = spec.graph(1).total_flops();
        let f8 = spec.graph(8).total_flops();
        assert_eq!(f8, 8 * f1);
    }

    #[test]
    fn tabular_output_is_compact() {
        let spec = PreprocessSpec {
            kind: PreprocessKind::TabularFeaturize { features: 64 },
            raw_input: Bytes::from_kib(16),
        };
        assert_eq!(spec.output_size(4).as_u64(), 256);
        assert!(spec.graph(4).total_flops() > 0);
    }

    #[test]
    fn postprocess_spec_has_notification_cost() {
        let p = PostprocessSpec::json_result(Bytes::from_kib(2));
        assert!(p.notification_ops > 0);
        assert_eq!(p.result_size.as_u64(), 2048);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_rejected() {
        let spec = PreprocessSpec {
            kind: PreprocessKind::Tokenize { tokens: 8 },
            raw_input: Bytes::from_kib(1),
        };
        let _ = spec.graph(0);
    }
}
