//! Tensor shapes and element types.

use serde::{Deserialize, Serialize};
use std::fmt;

use dscs_simcore::quantity::Bytes;

/// Element data type. The DSA executes GEMMs in 8-bit integer arithmetic with
/// 32-bit accumulation (as in the paper's PE microarchitecture) and supports
/// fp16/fp32 for vector operations and type-casting layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 8-bit integer (quantized weights/activations).
    Int8,
    /// 16-bit floating point.
    Fp16,
    /// 32-bit floating point.
    Fp32,
    /// 32-bit integer (accumulators, indices).
    Int32,
}

impl DType {
    /// Size of one element in bytes.
    pub const fn size_bytes(self) -> u64 {
        match self {
            DType::Int8 => 1,
            DType::Fp16 => 2,
            DType::Fp32 | DType::Int32 => 4,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::Int8 => "int8",
            DType::Fp16 => "fp16",
            DType::Fp32 => "fp32",
            DType::Int32 => "int32",
        };
        f.write_str(s)
    }
}

/// A tensor shape: a list of dimension sizes, outermost first.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<u64>);

impl Shape {
    /// Creates a shape from dimensions.
    ///
    /// # Panics
    /// Panics if any dimension is zero or the shape is empty.
    pub fn new(dims: impl Into<Vec<u64>>) -> Self {
        let dims = dims.into();
        assert!(!dims.is_empty(), "shape must have at least one dimension");
        assert!(
            dims.iter().all(|&d| d > 0),
            "shape dimensions must be positive"
        );
        Shape(dims)
    }

    /// A 1-D shape.
    pub fn vector(n: u64) -> Self {
        Shape::new(vec![n])
    }

    /// A 2-D (rows x cols) shape.
    pub fn matrix(rows: u64, cols: u64) -> Self {
        Shape::new(vec![rows, cols])
    }

    /// An NCHW image-batch shape.
    pub fn nchw(n: u64, c: u64, h: u64, w: u64) -> Self {
        Shape::new(vec![n, c, h, w])
    }

    /// The dimensions, outermost first.
    pub fn dims(&self) -> &[u64] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> u64 {
        self.0.iter().product()
    }

    /// Returns a copy with the outermost (batch) dimension replaced.
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    pub fn with_batch(&self, batch: u64) -> Shape {
        assert!(batch > 0, "batch must be positive");
        let mut dims = self.0.clone();
        dims[0] = batch;
        Shape(dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.0.iter().map(|d| d.to_string()).collect();
        write!(f, "[{}]", parts.join("x"))
    }
}

/// A tensor specification: shape plus element type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorSpec {
    /// Tensor shape.
    pub shape: Shape,
    /// Element type.
    pub dtype: DType,
}

impl TensorSpec {
    /// Creates a tensor specification.
    pub fn new(shape: Shape, dtype: DType) -> Self {
        TensorSpec { shape, dtype }
    }

    /// Total number of elements.
    pub fn numel(&self) -> u64 {
        self.shape.numel()
    }

    /// Total size in bytes.
    pub fn size(&self) -> Bytes {
        Bytes::new(self.numel() * self.dtype.size_bytes())
    }
}

impl fmt::Display for TensorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.shape, self.dtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::Int8.size_bytes(), 1);
        assert_eq!(DType::Fp16.size_bytes(), 2);
        assert_eq!(DType::Fp32.size_bytes(), 4);
        assert_eq!(DType::Int32.size_bytes(), 4);
    }

    #[test]
    fn shape_numel_and_bytes() {
        let t = TensorSpec::new(Shape::nchw(1, 3, 224, 224), DType::Fp32);
        assert_eq!(t.numel(), 3 * 224 * 224);
        assert_eq!(t.size().as_u64(), 3 * 224 * 224 * 4);
    }

    #[test]
    fn with_batch_replaces_outer_dim() {
        let s = Shape::nchw(1, 3, 224, 224).with_batch(8);
        assert_eq!(s.dims()[0], 8);
        assert_eq!(s.numel(), 8 * 3 * 224 * 224);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Shape::matrix(2, 3)), "[2x3]");
        assert_eq!(
            format!("{}", TensorSpec::new(Shape::vector(4), DType::Int8)),
            "[4]:int8"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        let _ = Shape::new(vec![1, 0, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_shape_rejected() {
        let _ = Shape::new(Vec::<u64>::new());
    }
}
