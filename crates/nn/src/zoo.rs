//! Model zoo: the networks behind the eight benchmark applications (Table 1).
//!
//! The paper uses representative Hugging Face models where the exact AWS-hosted
//! models are not public. We mirror that choice structurally:
//!
//! | Application | Model here |
//! |---|---|
//! | Credit Risk Assessment | logistic regression over tabular features |
//! | Asset Damage Detection | SSD-MobileNetV1 object detector |
//! | PPE Detection | ResNet-50 image classifier |
//! | Conversational Chatbot | GPT-2-class decoder-only language model |
//! | Document Translation | seq2seq transformer (6+6 layers, base size) |
//! | Clinical Analysis | Inception-v3 image classifier |
//! | Content Moderation | BERT-base text classifier |
//! | Remote Sensing | ViT-Base/16 vision transformer |
//!
//! The builders produce *structural* graphs whose FLOP and parameter totals are
//! within a few percent of the published architectures; the simulator only
//! consumes those aggregates.

use serde::{Deserialize, Serialize};
use std::fmt;

use dscs_simcore::quantity::Bytes;

use crate::graph::{Graph, GraphBuilder};
use crate::layers::{
    classifier_head, conv_bn_relu, depthwise_separable, resnet_bottleneck,
    transformer_decoder_block, transformer_encoder_block, FeatureMap,
};
use crate::op::{ActivationKind, Operator};
use crate::tensor::DType;

/// The networks used by the benchmark suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Logistic regression over tabular features (Credit Risk Assessment).
    LogisticRegression,
    /// SSD-MobileNetV1 object detector (Asset Damage Detection).
    SsdMobileNet,
    /// ResNet-50 classifier (PPE Detection).
    ResNet50,
    /// GPT-2-class decoder-only LM (Conversational Chatbot).
    Gpt2Chatbot,
    /// Transformer-base seq2seq NMT model (Document Translation).
    TransformerNmt,
    /// Inception-v3 classifier (Clinical Analysis).
    InceptionV3,
    /// BERT-base text classifier (Content Moderation).
    BertBase,
    /// ViT-Base/16 vision transformer (Remote Sensing).
    VitBase,
}

impl ModelKind {
    /// All model kinds, in the paper's benchmark order.
    pub const ALL: [ModelKind; 8] = [
        ModelKind::LogisticRegression,
        ModelKind::SsdMobileNet,
        ModelKind::ResNet50,
        ModelKind::Gpt2Chatbot,
        ModelKind::TransformerNmt,
        ModelKind::InceptionV3,
        ModelKind::BertBase,
        ModelKind::VitBase,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::LogisticRegression => "LogisticRegression",
            ModelKind::SsdMobileNet => "SSD-MobileNetV1",
            ModelKind::ResNet50 => "ResNet-50",
            ModelKind::Gpt2Chatbot => "GPT-2",
            ModelKind::TransformerNmt => "Transformer-NMT",
            ModelKind::InceptionV3 => "Inception-v3",
            ModelKind::BertBase => "BERT-base",
            ModelKind::VitBase => "ViT-Base/16",
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A built model: its operator graph plus descriptive metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    kind: ModelKind,
    batch: u64,
    graph: Graph,
}

impl Model {
    /// Builds the model at batch size 1.
    pub fn build(kind: ModelKind) -> Self {
        Self::build_with_batch(kind, 1)
    }

    /// Builds the model at the given batch size.
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    pub fn build_with_batch(kind: ModelKind, batch: u64) -> Self {
        assert!(batch > 0, "batch must be positive");
        let graph = match kind {
            ModelKind::LogisticRegression => logistic_regression(batch),
            ModelKind::SsdMobileNet => ssd_mobilenet(batch),
            ModelKind::ResNet50 => resnet50(batch),
            ModelKind::Gpt2Chatbot => gpt2(batch),
            ModelKind::TransformerNmt => transformer_nmt(batch),
            ModelKind::InceptionV3 => inception_v3(batch),
            ModelKind::BertBase => bert_base(batch),
            ModelKind::VitBase => vit_base(batch),
        };
        Model { kind, batch, graph }
    }

    /// Which network this is.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Batch size the graph was built for.
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// The operator graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of weight parameters.
    pub fn parameter_count(&self) -> u64 {
        self.graph.parameter_count()
    }

    /// Model weight size on storage, assuming int8 quantized weights as the
    /// DSA executes them.
    pub fn weight_bytes(&self) -> Bytes {
        self.graph.total_weight_bytes()
    }

    /// Total FLOPs of one forward pass at the built batch size.
    pub fn flops(&self) -> u64 {
        self.graph.total_flops()
    }
}

const DT: DType = DType::Int8;

/// Logistic regression over 64 engineered features with a small hidden
/// expansion, matching the IBM credit-risk workflow the paper cites.
fn logistic_regression(batch: u64) -> Graph {
    let mut b = GraphBuilder::new("logistic-regression");
    b.add_seq(
        "linear",
        Operator::MatMul {
            m: batch,
            k: 64,
            n: 2,
            dtype: DT,
        },
    );
    b.add_seq(
        "sigmoid",
        Operator::Activation {
            kind: ActivationKind::Sigmoid,
            elements: batch * 2,
            dtype: DT,
        },
    );
    b.build()
}

/// ResNet-50 (bottleneck v1) at 224x224.
fn resnet50(batch: u64) -> Graph {
    let mut b = GraphBuilder::new("resnet50");
    let mut fm = FeatureMap {
        batch,
        channels: 3,
        h: 224,
        w: 224,
    };
    let _ = conv_bn_relu(&mut b, "stem", fm, 64, 7, 2, DT);
    b.add_seq(
        "stem.maxpool",
        Operator::Pool {
            batch,
            channels: 64,
            out_h: 56,
            out_w: 56,
            window: 3,
            dtype: DT,
        },
    );
    fm = FeatureMap {
        batch,
        channels: 64,
        h: 56,
        w: 56,
    };
    // (mid, out, blocks, stride of first block)
    let stages: [(u64, u64, usize, u64); 4] = [
        (64, 256, 3, 1),
        (128, 512, 4, 2),
        (256, 1024, 6, 2),
        (512, 2048, 3, 2),
    ];
    for (s, &(mid, out, blocks, first_stride)) in stages.iter().enumerate() {
        for blk in 0..blocks {
            let stride = if blk == 0 { first_stride } else { 1 };
            fm = resnet_bottleneck(
                &mut b,
                &format!("layer{}.{blk}", s + 1),
                fm,
                mid,
                out,
                stride,
                DT,
            );
        }
    }
    classifier_head(&mut b, "head", fm, 1000, DT);
    b.build()
}

/// SSD object detector on a MobileNetV1 backbone at 300x300.
fn ssd_mobilenet(batch: u64) -> Graph {
    let mut b = GraphBuilder::new("ssd-mobilenet");
    let mut fm = FeatureMap {
        batch,
        channels: 3,
        h: 300,
        w: 300,
    };
    fm = conv_bn_relu(&mut b, "stem", fm, 32, 3, 2, DT);
    let blocks: [(u64, u64); 13] = [
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    for (i, &(out, stride)) in blocks.iter().enumerate() {
        fm = depthwise_separable(&mut b, &format!("ds{i}"), fm, out, stride, DT);
    }
    // SSD extra feature layers + per-location box/class heads.
    let mut extra = fm;
    for (i, out) in [512u64, 256, 256, 128].iter().enumerate() {
        extra = conv_bn_relu(&mut b, &format!("extra{i}"), extra, *out, 3, 2, DT);
    }
    // Detection heads over ~1917 anchors x (4 box + 91 classes).
    b.add_seq(
        "head.box",
        Operator::MatMul {
            m: batch * 1917,
            k: 256,
            n: 4,
            dtype: DT,
        },
    );
    b.add_seq(
        "head.cls",
        Operator::MatMul {
            m: batch * 1917,
            k: 256,
            n: 91,
            dtype: DT,
        },
    );
    b.add_seq(
        "head.softmax",
        Operator::Softmax {
            rows: batch * 1917,
            cols: 91,
            dtype: DT,
        },
    );
    b.build()
}

/// Inception-v3 at 299x299, approximated as its published stem plus inception
/// stages with equivalent channel widths.
fn inception_v3(batch: u64) -> Graph {
    let mut b = GraphBuilder::new("inception-v3");
    let mut fm = FeatureMap {
        batch,
        channels: 3,
        h: 299,
        w: 299,
    };
    fm = conv_bn_relu(&mut b, "stem.conv1", fm, 32, 3, 2, DT);
    fm = conv_bn_relu(&mut b, "stem.conv2", fm, 32, 3, 1, DT);
    let _ = conv_bn_relu(&mut b, "stem.conv3", fm, 64, 3, 1, DT);
    b.add_seq(
        "stem.pool",
        Operator::Pool {
            batch,
            channels: 64,
            out_h: 73,
            out_w: 73,
            window: 3,
            dtype: DT,
        },
    );
    fm = FeatureMap {
        batch,
        channels: 64,
        h: 73,
        w: 73,
    };
    fm = conv_bn_relu(&mut b, "stem.conv4", fm, 80, 1, 1, DT);
    fm = conv_bn_relu(&mut b, "stem.conv5", fm, 192, 3, 2, DT);
    // Inception blocks approximated as mixed 1x1/3x3/5x5 towers with the
    // published output widths per stage.
    let stages: [(u64, u64, usize); 3] = [(288, 35, 3), (768, 17, 5), (2048, 8, 3)];
    for (si, &(channels, size, reps)) in stages.iter().enumerate() {
        for r in 0..reps {
            let prefix = format!("mixed{si}.{r}");
            let tower_in = FeatureMap {
                batch,
                channels: fm.channels,
                h: size,
                w: size,
            };
            conv_bn_relu(
                &mut b,
                &format!("{prefix}.t1"),
                tower_in,
                channels / 4,
                1,
                1,
                DT,
            );
            conv_bn_relu(
                &mut b,
                &format!("{prefix}.t3"),
                tower_in,
                channels / 2,
                3,
                1,
                DT,
            );
            conv_bn_relu(
                &mut b,
                &format!("{prefix}.t5a"),
                tower_in,
                channels / 8,
                1,
                1,
                DT,
            );
            let t5 = FeatureMap {
                batch,
                channels: channels / 8,
                h: size,
                w: size,
            };
            conv_bn_relu(&mut b, &format!("{prefix}.t5b"), t5, channels / 4, 5, 1, DT);
            fm = FeatureMap {
                batch,
                channels,
                h: size,
                w: size,
            };
        }
    }
    classifier_head(&mut b, "head", fm, 1000, DT);
    b.build()
}

/// BERT-base (12 layers, hidden 768, 12 heads) over a 128-token sequence with a
/// binary classification head (content moderation).
fn bert_base(batch: u64) -> Graph {
    let tokens = 128 * batch;
    let mut b = GraphBuilder::new("bert-base");
    b.add_seq(
        "embeddings",
        Operator::Embedding {
            tokens,
            dim: 768,
            vocab: 30_522,
            dtype: DT,
        },
    );
    b.add_seq(
        "embeddings.ln",
        Operator::LayerNorm {
            rows: tokens,
            cols: 768,
            dtype: DT,
        },
    );
    for layer in 0..12 {
        transformer_encoder_block(
            &mut b,
            &format!("encoder.{layer}"),
            tokens,
            768,
            3072,
            12,
            DT,
        );
    }
    b.add_seq(
        "pooler",
        Operator::MatMul {
            m: batch,
            k: 768,
            n: 768,
            dtype: DT,
        },
    );
    b.add_seq(
        "classifier",
        Operator::MatMul {
            m: batch,
            k: 768,
            n: 2,
            dtype: DT,
        },
    );
    b.build()
}

/// GPT-2 small (12 layers, hidden 768) generating 32 new tokens from a
/// 96-token prompt.
///
/// With a key/value cache, autoregressive generation processes each of the 128
/// total tokens through every layer roughly once, so the generation cost is
/// modelled as a single 128-token pass plus one language-model-head projection
/// per generated token. This keeps the weight (parameter) accounting correct —
/// each layer's weights appear once in the graph — while matching the FLOP
/// profile of cached generation.
fn gpt2(batch: u64) -> Graph {
    let prompt = 96u64;
    let generated = 32u64;
    let total_tokens = (prompt + generated) * batch;
    let mut b = GraphBuilder::new("gpt2-chatbot");
    b.add_seq(
        "wte",
        Operator::Embedding {
            tokens: total_tokens,
            dim: 768,
            vocab: 50_257,
            dtype: DT,
        },
    );
    for layer in 0..12 {
        transformer_encoder_block(
            &mut b,
            &format!("block.{layer}"),
            total_tokens,
            768,
            3072,
            12,
            DT,
        );
    }
    b.add_seq(
        "ln_f",
        Operator::LayerNorm {
            rows: total_tokens,
            cols: 768,
            dtype: DT,
        },
    );
    // One vocabulary projection per generated token (weights tied with `wte`,
    // so this MatMul is the only place the 768 x 50257 projection is counted).
    b.add_seq(
        "lm_head",
        Operator::MatMul {
            m: generated * batch,
            k: 768,
            n: 50_257,
            dtype: DT,
        },
    );
    b.build()
}

/// Transformer-base NMT (6 encoder + 6 decoder layers, hidden 512, FFN 2048)
/// translating a 64-token source into a 64-token target.
fn transformer_nmt(batch: u64) -> Graph {
    let src = 64 * batch;
    let tgt = 64 * batch;
    let mut b = GraphBuilder::new("transformer-nmt");
    b.add_seq(
        "src_embed",
        Operator::Embedding {
            tokens: src,
            dim: 512,
            vocab: 32_000,
            dtype: DT,
        },
    );
    for layer in 0..6 {
        transformer_encoder_block(&mut b, &format!("encoder.{layer}"), src, 512, 2048, 8, DT);
    }
    b.add_seq(
        "tgt_embed",
        Operator::Embedding {
            tokens: tgt,
            dim: 512,
            vocab: 32_000,
            dtype: DT,
        },
    );
    for layer in 0..6 {
        transformer_decoder_block(
            &mut b,
            &format!("decoder.{layer}"),
            tgt,
            src,
            512,
            2048,
            8,
            DT,
        );
    }
    b.add_seq(
        "generator",
        Operator::MatMul {
            m: tgt,
            k: 512,
            n: 32_000,
            dtype: DT,
        },
    );
    b.add_seq(
        "generator.softmax",
        Operator::Softmax {
            rows: tgt,
            cols: 32_000,
            dtype: DT,
        },
    );
    b.build()
}

/// ViT-Base/16 at 224x224 (196 patch tokens + class token, 12 layers).
fn vit_base(batch: u64) -> Graph {
    let tokens = 197 * batch;
    let mut b = GraphBuilder::new("vit-base");
    // Patch embedding: a 16x16 stride-16 convolution.
    b.add_seq(
        "patch_embed",
        Operator::Conv2d {
            batch,
            in_channels: 3,
            out_channels: 768,
            in_h: 224,
            in_w: 224,
            kernel: 16,
            stride: 16,
            dtype: DT,
        },
    );
    b.add_seq(
        "pos_embed.add",
        Operator::Elementwise {
            kind: crate::op::ElementwiseKind::Add,
            elements: tokens * 768,
            dtype: DT,
        },
    );
    for layer in 0..12 {
        transformer_encoder_block(
            &mut b,
            &format!("encoder.{layer}"),
            tokens,
            768,
            3072,
            12,
            DT,
        );
    }
    b.add_seq(
        "head.ln",
        Operator::LayerNorm {
            rows: tokens,
            cols: 768,
            dtype: DT,
        },
    );
    b.add_seq(
        "head.fc",
        Operator::MatMul {
            m: batch,
            k: 768,
            n: 1000,
            dtype: DT,
        },
    );
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_build_and_validate() {
        for kind in ModelKind::ALL {
            let m = Model::build(kind);
            assert!(m.graph().validate().is_ok(), "{kind} graph invalid");
            assert!(!m.graph().is_empty());
            assert!(m.flops() > 0, "{kind} has zero FLOPs");
        }
    }

    #[test]
    fn resnet50_flops_and_params_in_range() {
        let m = Model::build(ModelKind::ResNet50);
        let gflops = m.flops() as f64 / 1e9;
        assert!((6.0..12.0).contains(&gflops), "ResNet-50 GFLOPs {gflops}");
        let params = m.parameter_count() as f64 / 1e6;
        assert!((20.0..35.0).contains(&params), "ResNet-50 Mparams {params}");
    }

    #[test]
    fn bert_base_parameters_roughly_110m() {
        let m = Model::build(ModelKind::BertBase);
        let params = m.parameter_count() as f64 / 1e6;
        assert!((80.0..130.0).contains(&params), "BERT Mparams {params}");
    }

    #[test]
    fn vit_flops_exceed_resnet() {
        let vit = Model::build(ModelKind::VitBase);
        let resnet = Model::build(ModelKind::ResNet50);
        assert!(vit.flops() > resnet.flops());
    }

    #[test]
    fn gpt2_has_large_vocab_head_cost() {
        let m = Model::build(ModelKind::Gpt2Chatbot);
        let params = m.parameter_count() as f64 / 1e6;
        assert!((100.0..200.0).contains(&params), "GPT-2 Mparams {params}");
        // Generation should dominate a single BERT pass.
        assert!(m.flops() > Model::build(ModelKind::BertBase).flops());
    }

    #[test]
    fn logistic_regression_is_tiny() {
        let m = Model::build(ModelKind::LogisticRegression);
        assert!(m.flops() < 1_000);
        assert!(m.parameter_count() < 1_000);
    }

    #[test]
    fn batching_scales_gemm_flops_linearly_for_cnns() {
        let b1 = Model::build_with_batch(ModelKind::ResNet50, 1).flops();
        let b8 = Model::build_with_batch(ModelKind::ResNet50, 8).flops();
        let ratio = b8 as f64 / b1 as f64;
        assert!((7.5..8.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn weight_bytes_match_parameter_count_for_int8() {
        let m = Model::build(ModelKind::ResNet50);
        // int8 weights: bytes ~ parameter count (batch-norm charge adds a little).
        let ratio = m.weight_bytes().as_f64() / m.parameter_count() as f64;
        assert!((0.99..1.20).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn ssd_mobilenet_cheaper_than_resnet() {
        let ssd = Model::build(ModelKind::SsdMobileNet);
        let resnet = Model::build(ModelKind::ResNet50);
        assert!(ssd.flops() < resnet.flops());
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(ModelKind::ResNet50.to_string(), "ResNet-50");
        assert_eq!(ModelKind::ALL.len(), 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_rejected() {
        let _ = Model::build_with_batch(ModelKind::ResNet50, 0);
    }
}
