//! # dscs-platforms
//!
//! Compute-platform models for the DSCS-Serverless evaluation (Table 2).
//!
//! * [`spec`] — published specifications and serverless batch-1 efficiency
//!   derates for the seven evaluated platforms: the baseline Xeon CPU, RTX 2080
//!   Ti GPU and Alveo U280 FPGA on compute nodes, the near-storage ARM,
//!   Jetson TX2 and SmartSSD FPGA, and the in-storage DSA.
//! * [`perf`] — a uniform latency/energy interface: roofline-style analytical
//!   models for the commercial platforms and the `dscs-dsa` cycle simulator for
//!   the DSA ASIC.
//!
//! # Example
//!
//! ```
//! use dscs_nn::zoo::{Model, ModelKind};
//! use dscs_platforms::{ComputeEngine, PlatformKind};
//!
//! let engine = ComputeEngine::new();
//! let model = Model::build(ModelKind::ResNet50);
//! let gpu = engine.execute(PlatformKind::RemoteGpu, model.graph(), 1);
//! let dsa = engine.execute(PlatformKind::DscsDsa, model.graph(), 1);
//! // The GPU wins on raw compute; the DSA wins on energy.
//! assert!(gpu.latency < dsa.latency * 10u64);
//! assert!(dsa.energy < gpu.energy);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;
pub mod spec;

pub use perf::{device_copy_latency, ComputeEngine, InferenceResult};
pub use spec::{PlatformKind, PlatformLocation, PlatformSpec};
