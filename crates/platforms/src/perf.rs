//! Platform performance and energy models.
//!
//! The paper uses measured latencies for the commercial platforms and a
//! validated cycle-accurate simulator for the DSA ASIC. We mirror that split:
//!
//! * Roofline-style analytical models (peak throughput derated by a batch-size
//!   dependent efficiency, bounded by memory bandwidth) for the CPU, GPU,
//!   FPGA, ARM and mobile-GPU platforms.
//! * The `dscs-dsa` cycle simulator, driven through the `dscs-compiler`, for
//!   the in-storage DSA.
//!
//! Both paths produce an [`InferenceResult`] with latency and energy so the
//! end-to-end model can treat every platform uniformly.

use serde::{Deserialize, Serialize};

use dscs_compiler::{compile, CompileOptions};
use dscs_dsa::config::DsaConfig;
use dscs_dsa::executor::Executor;
use dscs_nn::graph::Graph;
use dscs_simcore::quantity::{Bytes, Joules};
use dscs_simcore::time::SimDuration;

use crate::spec::{PlatformKind, PlatformSpec};

/// Latency and energy of executing one graph on one platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceResult {
    /// Wall-clock compute latency (including launch/driver overhead but not
    /// any data movement outside the device).
    pub latency: SimDuration,
    /// Energy consumed by the compute device over that latency.
    pub energy: Joules,
    /// Total operations executed (for throughput reporting).
    pub ops: u64,
}

impl InferenceResult {
    /// Achieved throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.latency.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.ops as f64 / secs
    }
}

/// Evaluates graphs on compute platforms.
#[derive(Debug, Clone)]
pub struct ComputeEngine {
    dsa_config: DsaConfig,
}

impl Default for ComputeEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ComputeEngine {
    /// Creates an engine using the paper's optimal DSA configuration for the
    /// `DscsDsa` platform.
    pub fn new() -> Self {
        ComputeEngine {
            dsa_config: DsaConfig::paper_optimal(),
        }
    }

    /// Creates an engine with a custom DSA configuration (used by the DSE).
    pub fn with_dsa_config(dsa_config: DsaConfig) -> Self {
        ComputeEngine { dsa_config }
    }

    /// The DSA configuration used for the `DscsDsa` platform.
    pub fn dsa_config(&self) -> &DsaConfig {
        &self.dsa_config
    }

    /// Latency and energy of executing `graph` (built at `batch`) on `kind`.
    pub fn execute(&self, kind: PlatformKind, graph: &Graph, batch: u64) -> InferenceResult {
        match kind {
            PlatformKind::DscsDsa => self.execute_on_dsa(graph),
            _ => Self::execute_roofline(&kind.spec(), graph, batch),
        }
    }

    fn execute_on_dsa(&self, graph: &Graph) -> InferenceResult {
        let program = compile(graph, &self.dsa_config, CompileOptions::default());
        let report = Executor::new(self.dsa_config).run(&program);
        let spec = PlatformKind::DscsDsa.spec();
        InferenceResult {
            latency: spec.launch_overhead + report.latency(),
            energy: report.total_energy() + spec.idle_power.over(spec.launch_overhead),
            ops: report.total_ops,
        }
    }

    fn execute_roofline(spec: &PlatformSpec, graph: &Graph, batch: u64) -> InferenceResult {
        let flops = graph.total_flops();
        let compute_time = flops as f64 / spec.effective_ops_per_sec(batch);
        // Memory traffic: weights once plus activation traffic; cached/fused
        // reuse is already part of the efficiency derate, so charge the raw
        // footprint against the device bandwidth.
        let traffic = graph.total_weight_bytes() + activation_traffic(graph);
        let memory_time = spec.memory_bandwidth.transfer_time(traffic).as_secs_f64();
        let body = SimDuration::from_secs_f64(compute_time.max(memory_time));
        let latency = spec.launch_overhead + body;
        InferenceResult {
            latency,
            energy: spec.active_power.over(latency),
            ops: flops,
        }
    }
}

/// Activation traffic that actually reaches device memory: operator outputs
/// (inputs are the previous outputs and are counted once).
fn activation_traffic(graph: &Graph) -> Bytes {
    graph.nodes().iter().map(|n| n.op.output_bytes()).sum()
}

/// PCIe copy latency for platforms that require staging inputs on a discrete
/// card before compute (GPU / FPGA). Exposed here so the end-to-end model can
/// charge it only for the platforms whose spec sets `device_copy_required`.
pub fn device_copy_latency(payload: Bytes) -> SimDuration {
    dscs_storage_free_link().transfer_latency(payload)
}

// A x16 Gen3 link, the common accelerator attach point. Kept as a function so
// the constant lives in one place without adding a storage dependency cycle.
fn dscs_storage_free_link() -> Pcie16 {
    Pcie16
}

/// Minimal x16 PCIe Gen3 model for host-to-device staging copies.
struct Pcie16;

impl Pcie16 {
    fn transfer_latency(&self, payload: Bytes) -> SimDuration {
        if payload.as_u64() == 0 {
            return SimDuration::ZERO;
        }
        let bandwidth = 14.2e9; // ~x16 Gen3 effective bytes/sec
        SimDuration::from_micros(10) + SimDuration::from_secs_f64(payload.as_f64() / bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscs_nn::zoo::{Model, ModelKind};

    fn latency_ms(kind: PlatformKind, model: ModelKind) -> f64 {
        let engine = ComputeEngine::new();
        let m = Model::build(model);
        engine.execute(kind, m.graph(), 1).latency.as_millis_f64()
    }

    #[test]
    fn resnet_latencies_are_in_realistic_ranges() {
        let cpu = latency_ms(PlatformKind::BaselineCpu, ModelKind::ResNet50);
        let gpu = latency_ms(PlatformKind::RemoteGpu, ModelKind::ResNet50);
        let arm = latency_ms(PlatformKind::NsArm, ModelKind::ResNet50);
        let dsa = latency_ms(PlatformKind::DscsDsa, ModelKind::ResNet50);
        assert!((15.0..120.0).contains(&cpu), "cpu {cpu} ms");
        assert!((2.0..15.0).contains(&gpu), "gpu {gpu} ms");
        assert!((120.0..1500.0).contains(&arm), "arm {arm} ms");
        assert!((0.5..15.0).contains(&dsa), "dsa {dsa} ms");
    }

    #[test]
    fn compute_only_ordering_matches_the_paper() {
        // On raw compute the specialised dense-matrix engines (GPU tensor cores
        // at low occupancy, the DSA) are the fastest; the FPGA-class designs
        // and general-purpose processors follow; the quad-core ARM is slowest.
        let gpu = latency_ms(PlatformKind::RemoteGpu, ModelKind::ResNet50);
        let dsa = latency_ms(PlatformKind::DscsDsa, ModelKind::ResNet50);
        let ns_fpga = latency_ms(PlatformKind::NsFpga, ModelKind::ResNet50);
        let cpu = latency_ms(PlatformKind::BaselineCpu, ModelKind::ResNet50);
        let mobile = latency_ms(PlatformKind::NsMobileGpu, ModelKind::ResNet50);
        let arm = latency_ms(PlatformKind::NsArm, ModelKind::ResNet50);
        assert!(
            gpu < cpu && dsa < cpu,
            "accelerators beat the CPU: gpu {gpu}, dsa {dsa}, cpu {cpu}"
        );
        assert!(
            dsa < ns_fpga,
            "ASIC DSA beats its FPGA implementation: {dsa} vs {ns_fpga}"
        );
        assert!(
            ns_fpga < mobile,
            "DSA on FPGA beats the mobile GPU: {ns_fpga} vs {mobile}"
        );
        assert!(
            arm > cpu && arm > mobile,
            "the quad-core ARM is the slowest: {arm}"
        );
    }

    #[test]
    fn dsa_energy_is_orders_of_magnitude_below_gpu() {
        let engine = ComputeEngine::new();
        let m = Model::build(ModelKind::ResNet50);
        let gpu = engine
            .execute(PlatformKind::RemoteGpu, m.graph(), 1)
            .energy
            .as_f64();
        let dsa = engine
            .execute(PlatformKind::DscsDsa, m.graph(), 1)
            .energy
            .as_f64();
        assert!(gpu > 20.0 * dsa, "gpu {gpu} J vs dsa {dsa} J");
    }

    #[test]
    fn batching_improves_per_item_latency_on_gpu() {
        let engine = ComputeEngine::new();
        let b1 = Model::build_with_batch(ModelKind::BertBase, 1);
        let b16 = Model::build_with_batch(ModelKind::BertBase, 16);
        let l1 = engine
            .execute(PlatformKind::RemoteGpu, b1.graph(), 1)
            .latency
            .as_secs_f64();
        let l16 = engine
            .execute(PlatformKind::RemoteGpu, b16.graph(), 16)
            .latency
            .as_secs_f64()
            / 16.0;
        assert!(l16 < l1);
    }

    #[test]
    fn tiny_models_are_overhead_dominated() {
        let engine = ComputeEngine::new();
        let m = Model::build(ModelKind::LogisticRegression);
        let r = engine.execute(PlatformKind::DscsDsa, m.graph(), 1);
        // Latency should be close to the launch overhead, not the compute.
        assert!(r.latency.as_micros_f64() < 2_000.0);
    }

    #[test]
    fn device_copy_latency_scales_with_payload() {
        let small = device_copy_latency(Bytes::from_kib(64));
        let large = device_copy_latency(Bytes::from_mib(64));
        assert!(large > small * 10u64);
        assert_eq!(device_copy_latency(Bytes::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn throughput_reporting_is_consistent() {
        let engine = ComputeEngine::new();
        let m = Model::build(ModelKind::VitBase);
        let r = engine.execute(PlatformKind::RemoteGpu, m.graph(), 1);
        let expected = r.ops as f64 / r.latency.as_secs_f64();
        assert!((r.ops_per_sec() - expected).abs() / expected < 1e-9);
    }
}
