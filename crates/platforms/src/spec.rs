//! Platform specifications (Table 2).
//!
//! The paper evaluates three classes of platform:
//!
//! * **Traditional** platforms on a compute node reached over the network from
//!   remote storage: the baseline Xeon CPU, an NVIDIA RTX 2080 Ti GPU and a
//!   Xilinx Alveo U280 FPGA.
//! * **Conventional near-storage** platforms placed next to the flash: a
//!   quad-core ARM Cortex-A57 (`NS-ARM`), an NVIDIA Jetson TX2 mobile GPU
//!   (`NS-Mobile-GPU`) and the Samsung SmartSSD FPGA (`NS-FPGA`).
//! * **DSCS-Serverless**: the in-storage DSA ASIC inside the DSCS-Drive.
//!
//! The numbers below are the public specifications of the commercial parts
//! (peak throughput, memory bandwidth, TDP, street price); serverless batch-1
//! efficiency derates are what a roofline model needs to land the measured
//! single-request inference latencies of these devices.

use serde::{Deserialize, Serialize};
use std::fmt;

use dscs_simcore::quantity::{Bandwidth, Dollars, Watts};
use dscs_simcore::time::SimDuration;

/// Where a platform sits relative to the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformLocation {
    /// On a compute node; inputs/outputs cross the network to remote storage.
    RemoteCompute,
    /// On the storage node, next to the drive (data crosses the host CPU and
    /// PCIe but not the network).
    NearStorage,
    /// Inside the storage drive, reached over the P2P path (DSCS-Serverless).
    InStorage,
}

/// The compute platforms evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// Baseline: Intel Xeon Platinum 8275CL (EC2 c5.4xlarge), remote storage.
    BaselineCpu,
    /// NVIDIA RTX 2080 Ti on a compute node, remote storage.
    RemoteGpu,
    /// Xilinx Alveo U280 on a compute node, remote storage.
    RemoteFpga,
    /// Quad-core ARM Cortex-A57 inside the storage node.
    NsArm,
    /// NVIDIA Jetson TX2 (256-core Pascal) near the storage.
    NsMobileGpu,
    /// Samsung SmartSSD FPGA (KU15P-class) inside the drive.
    NsFpga,
    /// The DSCS-Serverless in-storage DSA ASIC.
    DscsDsa,
}

impl PlatformKind {
    /// All platforms in the paper's presentation order.
    pub const ALL: [PlatformKind; 7] = [
        PlatformKind::BaselineCpu,
        PlatformKind::RemoteGpu,
        PlatformKind::RemoteFpga,
        PlatformKind::NsArm,
        PlatformKind::NsMobileGpu,
        PlatformKind::NsFpga,
        PlatformKind::DscsDsa,
    ];

    /// Display name used in figures.
    pub fn name(&self) -> &'static str {
        match self {
            PlatformKind::BaselineCpu => "Baseline (CPU)",
            PlatformKind::RemoteGpu => "GPU",
            PlatformKind::RemoteFpga => "FPGA",
            PlatformKind::NsArm => "NS-ARM",
            PlatformKind::NsMobileGpu => "NS-Mobile-GPU",
            PlatformKind::NsFpga => "NS-FPGA",
            PlatformKind::DscsDsa => "DSCS-Serverless",
        }
    }

    /// The specification of this platform.
    pub fn spec(&self) -> PlatformSpec {
        match self {
            PlatformKind::BaselineCpu => PlatformSpec {
                kind: *self,
                location: PlatformLocation::RemoteCompute,
                peak_int8_tops: 1.4, // 16 vCPU with VNNI-class vector units
                memory_bandwidth: Bandwidth::from_gbps(90.0),
                batch1_efficiency: 0.22,
                // CPUs gain little from batching: they are already reasonably
                // utilised at batch 1, unlike wide accelerators.
                max_efficiency: 0.30,
                active_power: Watts::new(120.0),
                idle_power: Watts::new(45.0),
                launch_overhead: SimDuration::from_micros(300),
                device_copy_required: false,
                capex: Dollars::new(5_500.0),
            },
            PlatformKind::RemoteGpu => PlatformSpec {
                kind: *self,
                location: PlatformLocation::RemoteCompute,
                peak_int8_tops: 107.0, // Turing INT8 tensor cores
                memory_bandwidth: Bandwidth::from_gbps(616.0),
                batch1_efficiency: 0.018,
                max_efficiency: 0.45,
                active_power: Watts::new(250.0),
                idle_power: Watts::new(55.0),
                launch_overhead: SimDuration::from_micros(900),
                device_copy_required: true,
                capex: Dollars::new(1_200.0) + Dollars::new(5_500.0), // card + host server share
            },
            PlatformKind::RemoteFpga => PlatformSpec {
                kind: *self,
                location: PlatformLocation::RemoteCompute,
                peak_int8_tops: 12.0, // DSA bitstream on U280 at ~300 MHz
                memory_bandwidth: Bandwidth::from_gbps(460.0),
                batch1_efficiency: 0.25,
                max_efficiency: 0.60,
                active_power: Watts::new(225.0),
                idle_power: Watts::new(60.0),
                launch_overhead: SimDuration::from_micros(2_500), // XRT driver
                device_copy_required: true,
                capex: Dollars::new(7_500.0) + Dollars::new(5_500.0),
            },
            PlatformKind::NsArm => PlatformSpec {
                kind: *self,
                location: PlatformLocation::NearStorage,
                peak_int8_tops: 0.115, // 4x A57 @ 2 GHz with NEON
                memory_bandwidth: Bandwidth::from_gbps(25.6),
                batch1_efficiency: 0.35,
                max_efficiency: 0.45,
                active_power: Watts::new(7.0),
                idle_power: Watts::new(1.5),
                launch_overhead: SimDuration::from_micros(200),
                device_copy_required: false,
                capex: Dollars::new(450.0),
            },
            PlatformKind::NsMobileGpu => PlatformSpec {
                kind: *self,
                location: PlatformLocation::NearStorage,
                peak_int8_tops: 2.6, // TX2 Pascal, fp16/int8 packed
                memory_bandwidth: Bandwidth::from_gbps(59.7),
                batch1_efficiency: 0.11,
                max_efficiency: 0.45,
                active_power: Watts::new(15.0),
                idle_power: Watts::new(3.0),
                launch_overhead: SimDuration::from_micros(700),
                device_copy_required: false, // unified memory
                capex: Dollars::new(600.0),
            },
            PlatformKind::NsFpga => PlatformSpec {
                kind: *self,
                location: PlatformLocation::InStorage,
                peak_int8_tops: 6.5, // DSA bitstream on the SmartSSD KU15P at ~250 MHz
                memory_bandwidth: Bandwidth::from_gbps(19.2),
                batch1_efficiency: 0.30,
                max_efficiency: 0.60,
                active_power: Watts::new(20.0),
                idle_power: Watts::new(8.0),
                launch_overhead: SimDuration::from_micros(1_800),
                device_copy_required: false,
                capex: Dollars::new(800.0),
            },
            PlatformKind::DscsDsa => PlatformSpec {
                kind: *self,
                location: PlatformLocation::InStorage,
                peak_int8_tops: 32.8, // 128x128 PEs at 1 GHz
                memory_bandwidth: Bandwidth::from_gbps(38.0),
                batch1_efficiency: 0.32,
                max_efficiency: 0.75,
                active_power: Watts::new(4.2),
                idle_power: Watts::new(1.0),
                launch_overhead: SimDuration::from_micros(145), // P2P driver + OpenCL dispatch
                device_copy_required: false,
                capex: Dollars::new(620.0), // drive + DSA die (ASIC-Clouds estimate)
            },
        }
    }
}

impl fmt::Display for PlatformKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The specification of one compute platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Which platform this is.
    pub kind: PlatformKind,
    /// Where the platform sits relative to the data.
    pub location: PlatformLocation,
    /// Peak int8 throughput in tera-operations per second.
    pub peak_int8_tops: f64,
    /// Device memory bandwidth.
    pub memory_bandwidth: Bandwidth,
    /// Fraction of peak achieved at batch size 1 on these latency-critical
    /// models (kernel launch gaps, low occupancy, skinny GEMMs).
    pub batch1_efficiency: f64,
    /// Fraction of peak achievable with large batches.
    pub max_efficiency: f64,
    /// Power while running inference.
    pub active_power: Watts,
    /// Idle power.
    pub idle_power: Watts,
    /// Fixed overhead to launch one inference (runtime, driver, kernel launch).
    pub launch_overhead: SimDuration,
    /// Whether inputs must be copied to a discrete device over PCIe before
    /// compute can start (the `cudaMemcpy` the paper calls out).
    pub device_copy_required: bool,
    /// Street price of the platform (CAPEX component).
    pub capex: Dollars,
}

impl PlatformSpec {
    /// Efficiency (fraction of peak) at a given batch size: saturating growth
    /// from the batch-1 value towards the maximum.
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    pub fn efficiency(&self, batch: u64) -> f64 {
        assert!(batch > 0, "batch must be positive");
        let b = batch as f64;
        // Half-saturation at batch 8: typical for inference servers.
        let gain = (b - 1.0) / (b - 1.0 + 8.0);
        self.batch1_efficiency + (self.max_efficiency - self.batch1_efficiency) * gain
    }

    /// Effective int8 operations per second at a given batch size.
    pub fn effective_ops_per_sec(&self, batch: u64) -> f64 {
        self.peak_int8_tops * 1e12 * self.efficiency(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_platforms_have_specs() {
        for kind in PlatformKind::ALL {
            let spec = kind.spec();
            assert!(spec.peak_int8_tops > 0.0, "{kind}");
            assert!(
                spec.active_power.as_f64() > spec.idle_power.as_f64(),
                "{kind}"
            );
            assert!(spec.batch1_efficiency <= spec.max_efficiency, "{kind}");
        }
    }

    #[test]
    fn dsa_fits_storage_power_budget_gpu_does_not() {
        assert!(PlatformKind::DscsDsa.spec().active_power.as_f64() < 25.0);
        assert!(PlatformKind::RemoteGpu.spec().active_power.as_f64() > 25.0);
    }

    #[test]
    fn gpu_has_highest_peak_dsa_highest_among_storage_class() {
        let gpu = PlatformKind::RemoteGpu.spec().peak_int8_tops;
        for kind in PlatformKind::ALL {
            assert!(kind.spec().peak_int8_tops <= gpu);
        }
        let dsa = PlatformKind::DscsDsa.spec().peak_int8_tops;
        for kind in [
            PlatformKind::NsArm,
            PlatformKind::NsMobileGpu,
            PlatformKind::NsFpga,
        ] {
            assert!(kind.spec().peak_int8_tops < dsa);
        }
    }

    #[test]
    fn efficiency_grows_with_batch_and_saturates() {
        let spec = PlatformKind::RemoteGpu.spec();
        let e1 = spec.efficiency(1);
        let e8 = spec.efficiency(8);
        let e64 = spec.efficiency(64);
        assert!(e1 < e8 && e8 < e64);
        assert!(e64 <= spec.max_efficiency);
        assert!((e1 - spec.batch1_efficiency).abs() < 1e-12);
    }

    #[test]
    fn locations_partition_platforms() {
        use PlatformLocation::*;
        assert_eq!(PlatformKind::BaselineCpu.spec().location, RemoteCompute);
        assert_eq!(PlatformKind::NsArm.spec().location, NearStorage);
        assert_eq!(PlatformKind::DscsDsa.spec().location, InStorage);
        assert_eq!(PlatformKind::NsFpga.spec().location, InStorage);
    }

    #[test]
    fn only_discrete_cards_need_device_copies() {
        assert!(PlatformKind::RemoteGpu.spec().device_copy_required);
        assert!(PlatformKind::RemoteFpga.spec().device_copy_required);
        assert!(!PlatformKind::DscsDsa.spec().device_copy_required);
        assert!(!PlatformKind::BaselineCpu.spec().device_copy_required);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_efficiency_panics() {
        let _ = PlatformKind::BaselineCpu.spec().efficiency(0);
    }
}
