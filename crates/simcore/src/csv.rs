//! A minimal, deterministic CSV tokenizer — the file-format sibling of
//! [`crate::json`].
//!
//! The at-scale cluster ingests the Azure Functions 2019 invocation traces
//! (*Serverless in the Wild*), which ship as plain CSV: a header row plus one
//! row per function with 1440 per-minute invocation counts. This module
//! provides just the record layer that ingestion needs — RFC-4180-style
//! field splitting (double-quoted fields, `""` escapes) and the matching
//! deterministic renderer — with typed, line-addressed errors instead of
//! panics. Parsing is line-oriented so callers can stream arbitrarily large
//! trace files through [`split_record`] without buffering the whole file.

use std::fmt;

/// A malformed CSV record, addressed by its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line the error was found on.
    pub line: usize,
    /// What was wrong with the record.
    pub message: String,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CSV line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

/// Splits one CSV record into its fields.
///
/// Handles the RFC-4180 core: fields are separated by commas; a field may be
/// double-quoted, in which case it can contain commas and embedded `""`
/// escapes for literal quotes. A trailing `\r` (CRLF input read line-wise)
/// is stripped. Returns a [`CsvError`] addressed to `line` on an
/// unterminated quote or on text trailing a closing quote.
pub fn split_record(record: &str, line: usize) -> Result<Vec<String>, CsvError> {
    let record = record.strip_suffix('\r').unwrap_or(record);
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = record.chars().peekable();
    loop {
        match chars.peek() {
            Some('"') => {
                chars.next();
                // Quoted field: runs to the closing quote, with "" escapes.
                let mut closed = false;
                while let Some(c) = chars.next() {
                    if c == '"' {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            field.push('"');
                        } else {
                            closed = true;
                            break;
                        }
                    } else {
                        field.push(c);
                    }
                }
                if !closed {
                    return Err(CsvError {
                        line,
                        message: "unterminated quoted field".into(),
                    });
                }
                match chars.next() {
                    None => {
                        fields.push(std::mem::take(&mut field));
                        return Ok(fields);
                    }
                    Some(',') => fields.push(std::mem::take(&mut field)),
                    Some(c) => {
                        return Err(CsvError {
                            line,
                            message: format!("unexpected '{c}' after a closing quote"),
                        })
                    }
                }
            }
            _ => {
                // Unquoted field: runs to the next comma or end of record.
                loop {
                    match chars.next() {
                        None => {
                            fields.push(std::mem::take(&mut field));
                            return Ok(fields);
                        }
                        Some(',') => {
                            fields.push(std::mem::take(&mut field));
                            break;
                        }
                        Some(c) => field.push(c),
                    }
                }
            }
        }
    }
}

/// Renders one record as a CSV line (no trailing newline), quoting exactly
/// the fields that need it — the deterministic inverse of [`split_record`]:
/// `split_record(&render_record(fields), n) == fields` for any field
/// contents, and re-rendering a parsed record reproduces the input bytes as
/// long as the input itself only quoted fields that needed quoting.
pub fn render_record(fields: &[String]) -> String {
    let mut out = String::new();
    for (i, field) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if field.contains(['"', ',', '\n', '\r']) {
            out.push('"');
            for c in field.chars() {
                if c == '"' {
                    out.push('"');
                }
                out.push(c);
            }
            out.push('"');
        } else {
            out.push_str(field);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn splits_plain_records() {
        assert_eq!(
            split_record("a,b,c", 1).expect("valid"),
            fields(&["a", "b", "c"])
        );
        assert_eq!(split_record("", 1).expect("valid"), fields(&[""]));
        assert_eq!(
            split_record("a,,c", 1).expect("valid"),
            fields(&["a", "", "c"])
        );
        assert_eq!(
            split_record("a,b,", 1).expect("valid"),
            fields(&["a", "b", ""])
        );
    }

    #[test]
    fn splits_quoted_records_with_escapes() {
        assert_eq!(
            split_record("\"a,b\",c", 1).expect("valid"),
            fields(&["a,b", "c"])
        );
        assert_eq!(
            split_record("\"say \"\"hi\"\"\",x", 1).expect("valid"),
            fields(&["say \"hi\"", "x"])
        );
        assert_eq!(split_record("\"\"", 1).expect("valid"), fields(&[""]));
    }

    #[test]
    fn strips_a_trailing_carriage_return() {
        assert_eq!(
            split_record("a,b\r", 3).expect("valid"),
            fields(&["a", "b"])
        );
    }

    #[test]
    fn malformed_records_are_typed_errors_with_line_numbers() {
        let err = split_record("\"open", 7).expect_err("unterminated");
        assert_eq!(err.line, 7);
        assert!(err.to_string().contains("line 7"));
        assert!(err.to_string().contains("unterminated"));
        let err = split_record("\"a\"b", 2).expect_err("trailing text");
        assert_eq!(err.line, 2);
        assert!(err.message.contains("after a closing quote"));
    }

    #[test]
    fn render_round_trips_any_fields() {
        let cases = [
            fields(&["a", "b", "c"]),
            fields(&["", "", ""]),
            fields(&["plain", "with,comma", "with\"quote", "both,\"x\""]),
            fields(&["multi\nline"]),
        ];
        for case in cases {
            let line = render_record(&case);
            assert_eq!(split_record(&line, 1).expect("round trip"), case, "{line}");
        }
        // Plain fields render without quotes, so parse -> render is identity
        // on the emitter's own output.
        assert_eq!(render_record(&fields(&["a", "1", "2"])), "a,1,2");
    }
}
