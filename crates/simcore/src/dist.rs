//! Latency and arrival distributions.
//!
//! The paper's end-to-end measurements are dominated by remote-storage access
//! times with a heavy tail (the p99 read latency is ~2.1x the median, Figure 3)
//! and by bursty Poisson request arrivals (Figure 13a). This module provides
//! the distributions used to model both, behind a common [`Distribution`] trait
//! so components can be configured with any of them.

use serde::{Deserialize, Serialize};

use crate::rng::DeterministicRng;
use crate::time::SimDuration;

/// Quantile of the standard normal at p = 0.99 (used to calibrate lognormal tails).
const Z_99: f64 = 2.326_347_874_040_841;
/// Quantile of the standard normal at p = 0.95.
const Z_95: f64 = 1.644_853_626_951_472;

/// A univariate distribution over non-negative values (seconds, counts, ...).
pub trait Distribution {
    /// Draws one sample.
    fn sample(&self, rng: &mut DeterministicRng) -> f64;

    /// The distribution mean, if defined in closed form.
    fn mean(&self) -> f64;

    /// Draws one sample and interprets it as a duration in seconds.
    fn sample_duration(&self, rng: &mut DeterministicRng) -> SimDuration {
        SimDuration::from_secs_f64(self.sample(rng))
    }
}

/// A distribution that always returns the same value. Useful to disable
/// variability in sensitivity studies ("no tail" configurations).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantDist {
    value: f64,
}

impl ConstantDist {
    /// Creates a constant distribution.
    ///
    /// # Panics
    /// Panics if `value` is negative or not finite.
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "constant must be non-negative and finite"
        );
        ConstantDist { value }
    }
}

impl Distribution for ConstantDist {
    fn sample(&self, _rng: &mut DeterministicRng) -> f64 {
        self.value
    }

    fn mean(&self) -> f64 {
        self.value
    }
}

/// Uniform distribution over `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformDist {
    lo: f64,
    hi: f64,
}

impl UniformDist {
    /// Creates a uniform distribution over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if the range is empty or contains negative values.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo >= 0.0 && hi > lo,
            "uniform range must be non-empty and non-negative"
        );
        UniformDist { lo, hi }
    }
}

impl Distribution for UniformDist {
    fn sample(&self, rng: &mut DeterministicRng) -> f64 {
        rng.uniform(self.lo, self.hi)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// Exponential distribution with a given mean. Used for inter-arrival times in
/// Poisson processes and for memoryless service-time components.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExponentialDist {
    mean: f64,
}

impl ExponentialDist {
    /// Creates an exponential distribution from its mean.
    ///
    /// # Panics
    /// Panics if `mean` is not strictly positive.
    pub fn from_mean(mean: f64) -> Self {
        assert!(
            mean > 0.0 && mean.is_finite(),
            "mean must be positive and finite"
        );
        ExponentialDist { mean }
    }

    /// Creates an exponential distribution from its rate (events per unit time).
    pub fn from_rate(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "rate must be positive and finite"
        );
        ExponentialDist { mean: 1.0 / rate }
    }
}

impl Distribution for ExponentialDist {
    fn sample(&self, rng: &mut DeterministicRng) -> f64 {
        // Inverse-CDF sampling; guard against ln(0).
        let u = 1.0 - rng.next_f64();
        -self.mean * u.ln()
    }

    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Lognormal distribution parameterised directly by observable latency
/// statistics (median and a tail percentile), which is how the paper reports
/// its storage measurements.
///
/// ```
/// use dscs_simcore::dist::{Distribution, LogNormalDist};
/// use dscs_simcore::rng::DeterministicRng;
/// // Median 28 ms, p99 59 ms — roughly AWS S3 small-object reads.
/// let d = LogNormalDist::from_median_p99(0.028, 0.059);
/// assert!((d.median() - 0.028).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormalDist {
    /// Mean of the underlying normal (log-space).
    mu: f64,
    /// Standard deviation of the underlying normal (log-space).
    sigma: f64,
}

impl LogNormalDist {
    /// Creates a lognormal from log-space parameters.
    ///
    /// # Panics
    /// Panics if `sigma` is negative or either parameter is not finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "invalid lognormal parameters"
        );
        LogNormalDist { mu, sigma }
    }

    /// Calibrates the distribution so that the median and 99th percentile match
    /// the given values.
    ///
    /// # Panics
    /// Panics unless `0 < median <= p99`.
    pub fn from_median_p99(median: f64, p99: f64) -> Self {
        assert!(median > 0.0 && p99 >= median, "need 0 < median <= p99");
        let mu = median.ln();
        let sigma = (p99.ln() - mu) / Z_99;
        LogNormalDist { mu, sigma }
    }

    /// Calibrates the distribution so that the median and 95th percentile match
    /// the given values.
    ///
    /// # Panics
    /// Panics unless `0 < median <= p95`.
    pub fn from_median_p95(median: f64, p95: f64) -> Self {
        assert!(median > 0.0 && p95 >= median, "need 0 < median <= p95");
        let mu = median.ln();
        let sigma = (p95.ln() - mu) / Z_95;
        LogNormalDist { mu, sigma }
    }

    /// The distribution median.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// The value at quantile `q` in `(0, 1)`, from the closed-form inverse CDF.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
        (self.mu + self.sigma * inverse_normal_cdf(q)).exp()
    }

    /// Returns a copy with the tail spread scaled by `factor` (1.0 = unchanged,
    /// 0.0 = deterministic). Used by the tail-latency sensitivity study.
    pub fn with_tail_scaled(&self, factor: f64) -> LogNormalDist {
        assert!(
            factor >= 0.0 && factor.is_finite(),
            "tail factor must be non-negative"
        );
        LogNormalDist {
            mu: self.mu,
            sigma: self.sigma * factor,
        }
    }
}

impl Distribution for LogNormalDist {
    fn sample(&self, rng: &mut DeterministicRng) -> f64 {
        (self.mu + self.sigma * rng.standard_normal()).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }
}

/// Wraps another distribution and multiplies every sample by a constant.
/// Useful to reuse one calibrated latency shape across payloads of different
/// sizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaledDist<D> {
    inner: D,
    factor: f64,
}

impl<D: Distribution> ScaledDist<D> {
    /// Wraps `inner`, scaling each sample by `factor`.
    ///
    /// # Panics
    /// Panics if `factor` is negative or not finite.
    pub fn new(inner: D, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be non-negative and finite"
        );
        ScaledDist { inner, factor }
    }
}

impl<D: Distribution> Distribution for ScaledDist<D> {
    fn sample(&self, rng: &mut DeterministicRng) -> f64 {
        self.inner.sample(rng) * self.factor
    }

    fn mean(&self) -> f64 {
        self.inner.mean() * self.factor
    }
}

/// A Poisson arrival process with a (piecewise-constant) rate, producing
/// arrival timestamps. The at-scale evaluation (Figure 13a) uses a bursty trace
/// built from segments of different rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoissonArrivals {
    /// Arrival rate in events per second.
    rate_per_sec: f64,
}

impl PoissonArrivals {
    /// Creates a Poisson process with the given arrival rate (events/second).
    ///
    /// # Panics
    /// Panics if the rate is not strictly positive.
    pub fn new(rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "rate must be positive and finite"
        );
        PoissonArrivals { rate_per_sec }
    }

    /// The configured rate in events per second.
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }

    /// Samples the next inter-arrival gap.
    pub fn next_gap(&self, rng: &mut DeterministicRng) -> SimDuration {
        ExponentialDist::from_rate(self.rate_per_sec).sample_duration(rng)
    }

    /// Samples a Poisson-distributed count of arrivals within `window`.
    ///
    /// Uses Knuth's algorithm for small expectations and a normal approximation
    /// for large ones, which is plenty for trace generation.
    pub fn count_in(&self, window: SimDuration, rng: &mut DeterministicRng) -> u64 {
        let lambda = self.rate_per_sec * window.as_secs_f64();
        if lambda <= 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            let limit = (-lambda).exp();
            let mut product = rng.next_f64();
            let mut count = 0u64;
            while product > limit {
                count += 1;
                product *= rng.next_f64();
            }
            count
        } else {
            let sample = lambda + lambda.sqrt() * rng.standard_normal();
            sample.round().max(0.0) as u64
        }
    }

    /// Generates arrival timestamps over `[0, horizon)`.
    pub fn arrivals_until(
        &self,
        horizon: SimDuration,
        rng: &mut DeterministicRng,
    ) -> Vec<SimDuration> {
        let mut out = Vec::new();
        let mut t = SimDuration::ZERO;
        loop {
            t += self.next_gap(rng);
            if t >= horizon {
                break;
            }
            out.push(t);
        }
        out
    }
}

/// A Zipf-distributed index sampler over `0..n`.
///
/// Rank `k` (0-based) is drawn with probability proportional to
/// `1 / (k + 1)^s`. Azure-functions-style workloads are heavily skewed — a few
/// functions receive most invocations while a long tail is called rarely — and
/// this sampler provides that popularity skew for the synthetic workload
/// generator. `s = 0` degenerates to the uniform distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZipfIndex {
    /// Cumulative probabilities, one per rank; the last entry is 1.0.
    cdf: Vec<f64>,
}

impl ZipfIndex {
    /// Creates a sampler over `n` ranks with skew exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative or not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "skew must be non-negative and finite"
        );
        let weights: Vec<f64> = (0..n).map(|k| (k as f64 + 1.0).powf(-s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let mut cdf: Vec<f64> = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        // Guard against floating-point shortfall at the top.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        ZipfIndex { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has no ranks (never true for a constructed sampler).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The probability mass of rank `k`.
    pub fn probability(&self, k: usize) -> f64 {
        let hi = self.cdf[k];
        let lo = if k == 0 { 0.0 } else { self.cdf[k - 1] };
        hi - lo
    }

    /// Draws one rank in `0..len()`.
    pub fn sample(&self, rng: &mut DeterministicRng) -> usize {
        self.rank_of(rng.next_f64())
    }

    /// The rank whose CDF interval contains `u` (the inverse-CDF transform).
    /// Callers that derive `u` from a hash instead of an RNG stream get Zipf
    /// draws without perturbing the stream — trace generators use this to
    /// stamp per-request object identities while keeping arrival sequences
    /// bit-compatible.
    ///
    /// Values outside `[0, 1)` clamp to the first/last rank.
    pub fn rank_of(&self, u: f64) -> usize {
        // Binary search for the first cumulative probability >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Inverse CDF of the standard normal distribution (Acklam's rational
/// approximation, max relative error ~1.15e-9). Sufficient for calibrating
/// latency quantiles.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0, 1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;

    fn samples<D: Distribution>(d: &D, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = DeterministicRng::seeded(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn constant_is_constant() {
        let d = ConstantDist::new(0.5);
        assert!(samples(&d, 100, 1).iter().all(|&x| x == 0.5));
        assert_eq!(d.mean(), 0.5);
    }

    #[test]
    fn exponential_mean_converges() {
        let d = ExponentialDist::from_mean(2.0);
        let s = samples(&d, 50_000, 2);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn exponential_from_rate_matches_mean() {
        assert!((ExponentialDist::from_rate(4.0).mean() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn lognormal_median_and_p99_calibration() {
        let d = LogNormalDist::from_median_p99(0.028, 0.059);
        let s = samples(&d, 100_000, 3);
        let summary = Summary::from_samples(&s);
        assert!(
            (summary.p50() - 0.028).abs() / 0.028 < 0.05,
            "p50 {}",
            summary.p50()
        );
        assert!(
            (summary.p99() - 0.059).abs() / 0.059 < 0.10,
            "p99 {}",
            summary.p99()
        );
    }

    #[test]
    fn lognormal_quantile_is_monotone() {
        let d = LogNormalDist::from_median_p95(0.01, 0.02);
        assert!(d.quantile(0.5) < d.quantile(0.9));
        assert!(d.quantile(0.9) < d.quantile(0.99));
        assert!((d.quantile(0.5) - 0.01).abs() < 1e-9);
        assert!((d.quantile(0.95) - 0.02).abs() < 1e-9);
    }

    #[test]
    fn tail_scaling_reduces_spread() {
        let d = LogNormalDist::from_median_p99(0.01, 0.03);
        let tight = d.with_tail_scaled(0.0);
        assert!((tight.quantile(0.99) - tight.quantile(0.5)).abs() < 1e-12);
    }

    #[test]
    fn scaled_dist_scales_mean() {
        let base = ConstantDist::new(2.0);
        let scaled = ScaledDist::new(base, 3.0);
        assert_eq!(scaled.mean(), 6.0);
        let mut rng = DeterministicRng::seeded(4);
        assert_eq!(scaled.sample(&mut rng), 6.0);
    }

    #[test]
    fn poisson_count_matches_rate() {
        let p = PoissonArrivals::new(100.0);
        let mut rng = DeterministicRng::seeded(5);
        let total: u64 = (0..200)
            .map(|_| p.count_in(SimDuration::from_secs(1), &mut rng))
            .sum();
        let mean = total as f64 / 200.0;
        assert!((mean - 100.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn poisson_arrival_times_sorted_and_bounded() {
        let p = PoissonArrivals::new(50.0);
        let mut rng = DeterministicRng::seeded(6);
        let arrivals = p.arrivals_until(SimDuration::from_secs(2), &mut rng);
        assert!(!arrivals.is_empty());
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        assert!(arrivals.iter().all(|&t| t < SimDuration::from_secs(2)));
    }

    #[test]
    fn inverse_normal_cdf_known_values() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959_964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.99) - Z_99).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_poisson_rejected() {
        let _ = PoissonArrivals::new(0.0);
    }

    #[test]
    fn zipf_skews_towards_low_ranks() {
        let zipf = ZipfIndex::new(16, 1.2);
        let mut rng = DeterministicRng::seeded(9);
        let mut counts = [0u64; 16];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[8] * 4, "counts {counts:?}");
        assert!(counts[0] > counts[15] * 8, "counts {counts:?}");
    }

    #[test]
    fn zipf_zero_skew_is_uniform() {
        let zipf = ZipfIndex::new(4, 0.0);
        for k in 0..4 {
            assert!((zipf.probability(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_probabilities_sum_to_one() {
        let zipf = ZipfIndex::new(100, 0.9);
        let total: f64 = (0..100).map(|k| zipf.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_zipf_rejected() {
        let _ = ZipfIndex::new(0, 1.0);
    }
}
