//! A small discrete-event simulation engine.
//!
//! The at-scale evaluation (Figure 13) replays a 20-minute request trace
//! against a 200-node cluster. That simulation is driven by this engine: events
//! are ordered by timestamp (FIFO among equal timestamps), handlers may
//! schedule further events, and the simulation runs until the queue drains or a
//! horizon is reached.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A scheduled event carrying a payload of type `E`.
#[derive(Debug, Clone)]
pub struct Event<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Caller-defined payload.
    pub payload: E,
    seq: u64,
}

impl<E> Event<E> {
    fn new(at: SimTime, payload: E, seq: u64) -> Self {
        Event { at, payload, seq }
    }
}

// BinaryHeap is a max-heap; invert ordering so the earliest event pops first,
// with the insertion sequence breaking ties for FIFO behaviour.
impl<E> PartialEq for Event<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Event<E> {}

impl<E> PartialOrd for Event<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Event<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Event<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event::new(at, payload, seq));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event<E>> {
        self.heap.pop()
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A discrete-event simulator: an [`EventQueue`] plus a clock.
///
/// ```
/// use dscs_simcore::events::Simulator;
/// use dscs_simcore::time::{SimDuration, SimTime};
///
/// let mut sim: Simulator<&str> = Simulator::new();
/// sim.schedule_in(SimDuration::from_millis(5), "late");
/// sim.schedule_in(SimDuration::from_millis(1), "early");
/// let mut order = Vec::new();
/// sim.run(|_, now, ev| order.push((now, ev)));
/// assert_eq!(order[0].1, "early");
/// assert_eq!(order[1].1, "late");
/// ```
#[derive(Debug)]
pub struct Simulator<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Creates a simulator with the clock at zero.
    pub fn new() -> Self {
        Simulator {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of processed events.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of still-pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        assert!(at >= self.now, "cannot schedule an event in the past");
        self.queue.schedule(at, payload);
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) {
        self.queue.schedule(self.now + delay, payload);
    }

    /// Runs until the queue drains. The handler receives the simulator (to
    /// schedule follow-up events), the event time and the payload.
    pub fn run<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut Simulator<E>, SimTime, E),
    {
        self.run_until(None, &mut handler);
    }

    /// Runs until the queue drains or the clock passes `horizon`.
    /// Events scheduled after the horizon remain in the queue.
    pub fn run_for<F>(&mut self, horizon: SimDuration, mut handler: F)
    where
        F: FnMut(&mut Simulator<E>, SimTime, E),
    {
        let end = SimTime::ZERO + horizon;
        self.run_until(Some(end), &mut handler);
    }

    fn run_until<F>(&mut self, end: Option<SimTime>, handler: &mut F)
    where
        F: FnMut(&mut Simulator<E>, SimTime, E),
    {
        while let Some(at) = self.queue.peek_time() {
            if let Some(end) = end {
                if at > end {
                    self.now = end;
                    return;
                }
            }
            let event = self.queue.pop().expect("peeked event must exist");
            self.now = event.at;
            self.processed += 1;
            handler(self, event.at, event.payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn simulator_clock_advances() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_in(SimDuration::from_micros(10), 1);
        sim.schedule_in(SimDuration::from_micros(20), 2);
        let mut times = Vec::new();
        sim.run(|_, now, _| times.push(now.as_nanos()));
        assert_eq!(times, vec![10_000, 20_000]);
        assert_eq!(sim.processed(), 2);
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn handlers_can_schedule_follow_ups() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_in(SimDuration::from_micros(1), 0);
        let mut count = 0;
        sim.run(|sim, _, generation| {
            count += 1;
            if generation < 5 {
                sim.schedule_in(SimDuration::from_micros(1), generation + 1);
            }
        });
        assert_eq!(count, 6);
        assert_eq!(sim.now().as_nanos(), 6_000);
    }

    #[test]
    fn run_for_stops_at_horizon() {
        let mut sim: Simulator<&str> = Simulator::new();
        sim.schedule_in(SimDuration::from_secs(1), "in");
        sim.schedule_in(SimDuration::from_secs(10), "out");
        let mut seen = Vec::new();
        sim.run_for(SimDuration::from_secs(5), |_, _, e| seen.push(e));
        assert_eq!(seen, vec!["in"]);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.now().as_secs_f64(), 5.0);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_the_past_panics() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_in(SimDuration::from_secs(1), 1);
        sim.run(|sim, _, _| {
            sim.schedule_at(SimTime::ZERO, 2);
        });
    }
}
