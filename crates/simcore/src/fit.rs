//! Least-squares polynomial fitting.
//!
//! Figures 7 and 8 of the paper annotate the Pareto frontiers with cubic fits
//! (`P(c)` and `A(c)`). This module provides the same capability: fit an n-th
//! degree polynomial to a set of `(x, y)` points by solving the normal
//! equations with Gaussian elimination.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A polynomial with coefficients in ascending order of degree:
/// `coeffs[0] + coeffs[1]*x + coeffs[2]*x^2 + ...`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from coefficients in ascending degree order.
    ///
    /// # Panics
    /// Panics if `coeffs` is empty or contains non-finite values.
    pub fn new(coeffs: Vec<f64>) -> Self {
        assert!(
            !coeffs.is_empty(),
            "polynomial needs at least one coefficient"
        );
        assert!(
            coeffs.iter().all(|c| c.is_finite()),
            "coefficients must be finite"
        );
        Polynomial { coeffs }
    }

    /// Coefficients in ascending degree order.
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// Polynomial degree.
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Evaluates the polynomial at `x` (Horner's method).
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Coefficient of determination (R²) against a point set.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn r_squared(&self, points: &[(f64, f64)]) -> f64 {
        assert!(!points.is_empty(), "need points to compute R^2");
        let mean_y = points.iter().map(|p| p.1).sum::<f64>() / points.len() as f64;
        let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
        let ss_res: f64 = points.iter().map(|p| (p.1 - self.eval(p.0)).powi(2)).sum();
        if ss_tot == 0.0 {
            return 1.0;
        }
        1.0 - ss_res / ss_tot
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let terms: Vec<String> = self
            .coeffs
            .iter()
            .enumerate()
            .map(|(i, c)| match i {
                0 => format!("{c:.4e}"),
                1 => format!("{c:.4e}*x"),
                _ => format!("{c:.4e}*x^{i}"),
            })
            .collect();
        write!(f, "{}", terms.join(" + "))
    }
}

/// Fits a polynomial of the given degree to `points` by least squares.
///
/// # Panics
/// Panics if there are fewer points than `degree + 1`, or if the system is
/// numerically singular (e.g. all x values identical).
///
/// ```
/// use dscs_simcore::fit::polyfit;
/// let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
/// let poly = polyfit(&pts, 1);
/// assert!((poly.coefficients()[1] - 2.0).abs() < 1e-9);
/// ```
pub fn polyfit(points: &[(f64, f64)], degree: usize) -> Polynomial {
    let n = degree + 1;
    assert!(points.len() >= n, "need at least degree+1 points to fit");
    assert!(
        points.iter().all(|p| p.0.is_finite() && p.1.is_finite()),
        "points must be finite"
    );

    // Build the normal equations A^T A c = A^T y where A is the Vandermonde matrix.
    let mut ata = vec![vec![0.0f64; n]; n];
    let mut aty = vec![0.0f64; n];
    for &(x, y) in points {
        let mut powers = vec![1.0f64; 2 * n - 1];
        for k in 1..2 * n - 1 {
            powers[k] = powers[k - 1] * x;
        }
        for (i, aty_i) in aty.iter_mut().enumerate() {
            *aty_i += powers[i] * y;
            for j in 0..n {
                ata[i][j] += powers[i + j];
            }
        }
    }

    let coeffs = solve_linear_system(ata, aty);
    Polynomial::new(coeffs)
}

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
///
/// # Panics
/// Panics if the matrix is singular (pivot smaller than 1e-12 after scaling).
fn solve_linear_system(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite")
            })
            .expect("non-empty range");
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        let pivot = a[col][col];
        assert!(pivot.abs() > 1e-12, "singular system in polynomial fit");
        for row in col + 1..n {
            let factor = a[row][col] / pivot;
            let (upper, lower) = a.split_at_mut(row);
            let pivot_row = &upper[col];
            for (x, &p) in lower[0][col..n].iter_mut().zip(&pivot_row[col..n]) {
                *x -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for col in row + 1..n {
            sum -= a[row][col] * x[col];
        }
        x[row] = sum / a[row][row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_exact_line() {
        let pts: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 5.0 - 0.5 * i as f64)).collect();
        let p = polyfit(&pts, 1);
        assert!((p.coefficients()[0] - 5.0).abs() < 1e-9);
        assert!((p.coefficients()[1] + 0.5).abs() < 1e-9);
        assert!(p.r_squared(&pts) > 0.999_999);
    }

    #[test]
    fn fits_exact_cubic() {
        let f = |x: f64| 1.0 - 2.0 * x + 0.3 * x * x + 0.01 * x * x * x;
        let pts: Vec<(f64, f64)> = (0..30).map(|i| (i as f64, f(i as f64))).collect();
        let p = polyfit(&pts, 3);
        for (i, expect) in [1.0, -2.0, 0.3, 0.01].iter().enumerate() {
            assert!((p.coefficients()[i] - expect).abs() < 1e-6, "coef {i}");
        }
    }

    #[test]
    fn eval_uses_horner_correctly() {
        let p = Polynomial::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.eval(2.0), 1.0 + 4.0 + 12.0);
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn r_squared_penalises_bad_fit() {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, (i as f64).powi(2))).collect();
        let linear = polyfit(&pts, 1);
        let cubic = polyfit(&pts, 3);
        assert!(cubic.r_squared(&pts) > linear.r_squared(&pts));
    }

    #[test]
    fn noisy_fit_recovers_trend() {
        // Deterministic "noise" so the test is stable.
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = i as f64 / 10.0;
                let noise = ((i * 7919) % 13) as f64 / 13.0 - 0.5;
                (x, 2.0 * x + 1.0 + 0.1 * noise)
            })
            .collect();
        let p = polyfit(&pts, 1);
        assert!((p.coefficients()[1] - 2.0).abs() < 0.05);
    }

    #[test]
    fn display_is_readable() {
        let p = Polynomial::new(vec![1.0, -2.0]);
        let s = format!("{p}");
        assert!(s.contains("x"));
    }

    #[test]
    #[should_panic(expected = "at least degree+1")]
    fn too_few_points_panics() {
        let _ = polyfit(&[(0.0, 0.0)], 3);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn degenerate_xs_panic() {
        let pts = vec![(1.0, 1.0), (1.0, 2.0), (1.0, 3.0)];
        let _ = polyfit(&pts, 2);
    }
}
