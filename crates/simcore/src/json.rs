//! Minimal deterministic JSON emission.
//!
//! The workspace vendors an API-surface stub of `serde` (no `serde_json`), so
//! machine-readable reports — the at-scale sweep artifact CI uploads, for one —
//! are emitted through this small value tree instead. Rendering is fully
//! deterministic: object keys keep insertion order and floats use Rust's
//! shortest-roundtrip formatting, so a fixed-seed report is byte-for-byte
//! reproducible across runs.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A finite float. Non-finite values render as `null` (JSON has no NaN).
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object; keys keep insertion order for reproducible output.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object, to be filled with [`JsonValue::push`].
    pub fn object() -> Self {
        JsonValue::Object(Vec::new())
    }

    /// Appends a key/value pair to an object.
    ///
    /// # Panics
    /// Panics if `self` is not an object.
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> &mut Self {
        match self {
            JsonValue::Object(pairs) => pairs.push((key.into(), value.into())),
            other => panic!("push on non-object JSON value {other:?}"),
        }
        self
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            JsonValue::Float(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<i64> for JsonValue {
    fn from(i: i64) -> Self {
        JsonValue::Int(i)
    }
}

impl From<u64> for JsonValue {
    fn from(u: u64) -> Self {
        JsonValue::UInt(u)
    }
}

impl From<u32> for JsonValue {
    fn from(u: u32) -> Self {
        JsonValue::UInt(u64::from(u))
    }
}

impl From<usize> for JsonValue {
    fn from(u: usize) -> Self {
        JsonValue::UInt(u as u64)
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Float(x)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(items: Vec<T>) -> Self {
        JsonValue::Array(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::from(true).render(), "true");
        assert_eq!(JsonValue::from(42u64).render(), "42");
        assert_eq!(JsonValue::from(-7i64).render(), "-7");
        assert_eq!(JsonValue::from(1.5).render(), "1.5");
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(JsonValue::from("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(JsonValue::from("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let mut obj = JsonValue::object();
        obj.push("zulu", 1u64).push("alpha", 2u64);
        assert_eq!(obj.render(), r#"{"zulu":1,"alpha":2}"#);
    }

    #[test]
    fn arrays_nest() {
        let v = JsonValue::from(vec![1.0, 2.5]);
        assert_eq!(v.render(), "[1,2.5]");
    }

    #[test]
    fn rendering_is_deterministic() {
        let mut obj = JsonValue::object();
        obj.push("xs", vec![0.1, 0.2, 0.30000000000000004]);
        assert_eq!(obj.render(), obj.render());
    }
}
