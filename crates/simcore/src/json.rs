//! Minimal deterministic JSON emission.
//!
//! The workspace vendors an API-surface stub of `serde` (no `serde_json`), so
//! machine-readable reports — the at-scale sweep artifact CI uploads, for one —
//! are emitted through this small value tree instead. Rendering is fully
//! deterministic: object keys keep insertion order and floats use Rust's
//! shortest-roundtrip formatting, so a fixed-seed report is byte-for-byte
//! reproducible across runs.
//!
//! The module also provides a small recursive-descent [`JsonValue::parse`] so
//! reports can be read back: the perf-regression gate diffs the previous CI
//! run's artifact against the current one. Numbers roundtrip losslessly —
//! floats use shortest-roundtrip formatting on the way out and
//! `str::parse::<f64>` on the way back in, both of which are exact — but the
//! *variant* is not preserved for whole-valued floats: `Float(12.0)` renders
//! as `12` (JSON has one number type) and parses back as `UInt(12)`. Compare
//! parsed values against parsed values, or numerically via
//! [`JsonValue::as_f64`], not against hand-built trees.

use std::fmt;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A finite float. Non-finite values render as `null` (JSON has no NaN).
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object; keys keep insertion order for reproducible output.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object, to be filled with [`JsonValue::push`].
    pub fn object() -> Self {
        JsonValue::Object(Vec::new())
    }

    /// Appends a key/value pair to an object.
    ///
    /// # Panics
    /// Panics if `self` is not an object.
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> &mut Self {
        match self {
            JsonValue::Object(pairs) => pairs.push((key.into(), value.into())),
            other => panic!("push on non-object JSON value {other:?}"),
        }
        self
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parses a JSON document.
    ///
    /// Accepts standard JSON with arbitrary whitespace. Numerals without a
    /// fraction or exponent parse to [`JsonValue::UInt`]/[`JsonValue::Int`];
    /// everything else numeric parses to [`JsonValue::Float`]. Values
    /// rendered by [`JsonValue::render`] parse back numerically lossless,
    /// but not always variant-identical: a whole-valued `Float` renders
    /// without a decimal point and parses back as an integer, and non-finite
    /// floats render as `null`. See the module docs for the comparison
    /// guidance.
    pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after document"));
        }
        Ok(value)
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, converting integers; `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::UInt(u) => Some(*u as f64),
            JsonValue::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an unsigned integer; `None` for anything else.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(u) => Some(*u),
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a string slice; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice; `None` for non-arrays.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            JsonValue::Float(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where the failure was detected.
    pub offset: usize,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonParseError {
        JsonParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Reports only emit BMP scalars; surrogate pairs
                            // are out of scope for this reader.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| JsonParseError {
                message: format!("invalid number '{text}'"),
                offset: start,
            })
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<i64> for JsonValue {
    fn from(i: i64) -> Self {
        JsonValue::Int(i)
    }
}

impl From<u64> for JsonValue {
    fn from(u: u64) -> Self {
        JsonValue::UInt(u)
    }
}

impl From<u32> for JsonValue {
    fn from(u: u32) -> Self {
        JsonValue::UInt(u64::from(u))
    }
}

impl From<usize> for JsonValue {
    fn from(u: usize) -> Self {
        JsonValue::UInt(u as u64)
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Float(x)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(items: Vec<T>) -> Self {
        JsonValue::Array(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::from(true).render(), "true");
        assert_eq!(JsonValue::from(42u64).render(), "42");
        assert_eq!(JsonValue::from(-7i64).render(), "-7");
        assert_eq!(JsonValue::from(1.5).render(), "1.5");
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(JsonValue::from("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(JsonValue::from("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let mut obj = JsonValue::object();
        obj.push("zulu", 1u64).push("alpha", 2u64);
        assert_eq!(obj.render(), r#"{"zulu":1,"alpha":2}"#);
    }

    #[test]
    fn arrays_nest() {
        let v = JsonValue::from(vec![1.0, 2.5]);
        assert_eq!(v.render(), "[1,2.5]");
    }

    #[test]
    fn rendering_is_deterministic() {
        let mut obj = JsonValue::object();
        obj.push("xs", vec![0.1, 0.2, 0.30000000000000004]);
        assert_eq!(obj.render(), obj.render());
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null"), Ok(JsonValue::Null));
        assert_eq!(JsonValue::parse(" true "), Ok(JsonValue::Bool(true)));
        assert_eq!(JsonValue::parse("false"), Ok(JsonValue::Bool(false)));
        assert_eq!(JsonValue::parse("42"), Ok(JsonValue::UInt(42)));
        assert_eq!(JsonValue::parse("-7"), Ok(JsonValue::Int(-7)));
        assert_eq!(JsonValue::parse("1.5"), Ok(JsonValue::Float(1.5)));
        assert_eq!(JsonValue::parse("2e3"), Ok(JsonValue::Float(2000.0)));
        assert_eq!(
            JsonValue::parse(r#""a\"b\\c\nd""#),
            Ok(JsonValue::from("a\"b\\c\nd"))
        );
        assert_eq!(JsonValue::parse("\"\\u0041\""), Ok(JsonValue::from("A")));
    }

    #[test]
    fn parses_nested_structures() {
        let parsed = JsonValue::parse(r#"{"a":[1,2.5,{"b":null}],"c":"x"}"#).expect("valid");
        assert_eq!(parsed.get("c").and_then(JsonValue::as_str), Some("x"));
        let items = parsed
            .get("a")
            .and_then(JsonValue::as_array)
            .expect("array");
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].get("b"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "tru", "{\"a\"}", "{\"a\":}", "1 2", "nul", "\"abc", "[1 2]",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} must be rejected");
        }
        let err = JsonValue::parse("[1,]").expect_err("dangling comma");
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn render_parse_roundtrips_exactly() {
        let mut obj = JsonValue::object();
        obj.push("name", "at-scale \"quick\" run");
        obj.push("mean", 176.9002399829629);
        obj.push("count", 18136u64);
        obj.push("delta", -3i64);
        obj.push("xs", vec![0.1, 0.30000000000000004]);
        obj.push("none", JsonValue::Null);
        let parsed = JsonValue::parse(&obj.render()).expect("rendered JSON parses");
        assert_eq!(parsed, obj);
        assert_eq!(parsed.render(), obj.render());
    }

    #[test]
    fn whole_valued_floats_parse_back_as_integers() {
        // The documented variant caveat: JSON has one number type, so a
        // whole-valued Float renders as "12" and comes back as UInt. The
        // value is numerically lossless either way.
        let whole = JsonValue::Float(12.0);
        assert_eq!(whole.render(), "12");
        let parsed = JsonValue::parse(&whole.render()).expect("parses");
        assert_eq!(parsed, JsonValue::UInt(12));
        assert_ne!(
            parsed, whole,
            "variant differs even though the value matches"
        );
        assert_eq!(parsed.as_f64(), whole.as_f64());
    }
}
