//! # dscs-simcore
//!
//! Simulation core primitives shared by every crate in the DSCS-Serverless
//! workspace.
//!
//! The crate provides the vocabulary types and numeric tools that the rest of
//! the system is built on:
//!
//! * [`time`] — nanosecond-resolution simulated time ([`SimTime`], [`SimDuration`]).
//! * [`quantity`] — physical quantities with newtype safety ([`Bytes`], [`Watts`],
//!   [`Joules`], [`Bandwidth`], [`AreaMm2`], [`Dollars`], [`Frequency`]).
//! * [`rng`] — deterministic, seedable random number generation helpers.
//! * [`dist`] — latency/arrival distributions (lognormal with calibrated tails,
//!   exponential, Poisson, deterministic) used to model remote storage, network
//!   RPCs and request arrivals.
//! * [`stats`] — percentile summaries, histograms and empirical CDFs used to
//!   report p50/p95/p99 latencies and figure series.
//! * [`pareto`] — Pareto-frontier extraction for the design-space exploration.
//! * [`fit`] — least-squares polynomial fitting (the paper reports cubic fits of
//!   its power/area frontiers).
//! * [`events`] — a small discrete-event simulation engine used by the at-scale
//!   datacenter simulation.
//! * [`series`] — time-bucketed series for "metric over wall-clock time" figures.
//! * [`json`] — a minimal deterministic JSON emitter for machine-readable
//!   reports (the vendored `serde` stub has no `serde_json`).
//! * [`csv`] — a minimal CSV record tokenizer/renderer for ingesting the
//!   Azure Functions invocation-trace files (and emitting compatible ones).
//!
//! # Example
//!
//! ```
//! use dscs_simcore::prelude::*;
//!
//! // Model a remote-storage read with a heavy tail: median 28 ms, p99 ~2.1x median.
//! let dist = LogNormalDist::from_median_p99(0.028, 0.059);
//! let mut rng = DeterministicRng::seeded(7);
//! let samples: Vec<f64> = (0..10_000).map(|_| dist.sample(&mut rng)).collect();
//! let summary = Summary::from_samples(&samples);
//! assert!(summary.p99() > summary.p50());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod dist;
pub mod events;
pub mod fit;
pub mod json;
pub mod pareto;
pub mod quantity;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;

pub use dist::{
    ConstantDist, Distribution, ExponentialDist, LogNormalDist, PoissonArrivals, ScaledDist,
    UniformDist, ZipfIndex,
};
pub use events::{Event, EventQueue, Simulator};
pub use fit::{polyfit, Polynomial};
pub use json::JsonValue;
pub use pareto::{pareto_frontier, ParetoPoint};
pub use quantity::{AreaMm2, Bandwidth, Bytes, Dollars, Frequency, Joules, Watts};
pub use rng::DeterministicRng;
pub use series::{SeriesMergeError, TimeSeries};
pub use stats::{Cdf, Histogram, Summary};
pub use time::{SimDuration, SimTime};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::dist::{
        ConstantDist, Distribution, ExponentialDist, LogNormalDist, PoissonArrivals, UniformDist,
    };
    pub use crate::events::{Event, EventQueue, Simulator};
    pub use crate::fit::{polyfit, Polynomial};
    pub use crate::pareto::{pareto_frontier, ParetoPoint};
    pub use crate::quantity::{AreaMm2, Bandwidth, Bytes, Dollars, Frequency, Joules, Watts};
    pub use crate::rng::DeterministicRng;
    pub use crate::series::TimeSeries;
    pub use crate::stats::{Cdf, Histogram, Summary};
    pub use crate::time::{SimDuration, SimTime};
}
