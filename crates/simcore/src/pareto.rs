//! Pareto-frontier extraction.
//!
//! The design-space exploration (Figures 7 and 8) selects accelerator
//! configurations on the power–performance and area–performance Pareto
//! frontiers: points for which no other point has both lower cost (power or
//! area) and higher throughput.

use serde::{Deserialize, Serialize};

/// A candidate design point: a cost to minimise, a benefit to maximise, and a
/// caller-supplied tag identifying the configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint<T> {
    /// The quantity to minimise (e.g. watts or mm²).
    pub cost: f64,
    /// The quantity to maximise (e.g. frames per second).
    pub benefit: f64,
    /// Caller-supplied configuration tag.
    pub tag: T,
}

impl<T> ParetoPoint<T> {
    /// Creates a design point.
    ///
    /// # Panics
    /// Panics if either coordinate is not finite.
    pub fn new(cost: f64, benefit: f64, tag: T) -> Self {
        assert!(
            cost.is_finite() && benefit.is_finite(),
            "Pareto coordinates must be finite"
        );
        ParetoPoint { cost, benefit, tag }
    }

    /// Returns `true` if `self` dominates `other`: no worse on both axes and
    /// strictly better on at least one.
    pub fn dominates(&self, other: &ParetoPoint<T>) -> bool {
        (self.cost <= other.cost && self.benefit >= other.benefit)
            && (self.cost < other.cost || self.benefit > other.benefit)
    }
}

/// Extracts the Pareto frontier (minimise `cost`, maximise `benefit`) from a
/// set of points. The result is sorted by ascending cost and has strictly
/// increasing benefit.
///
/// ```
/// use dscs_simcore::pareto::{pareto_frontier, ParetoPoint};
/// let pts = vec![
///     ParetoPoint::new(1.0, 10.0, "a"),
///     ParetoPoint::new(2.0, 5.0, "dominated"),
///     ParetoPoint::new(3.0, 20.0, "b"),
/// ];
/// let frontier = pareto_frontier(pts);
/// let tags: Vec<_> = frontier.iter().map(|p| p.tag).collect();
/// assert_eq!(tags, vec!["a", "b"]);
/// ```
pub fn pareto_frontier<T>(mut points: Vec<ParetoPoint<T>>) -> Vec<ParetoPoint<T>> {
    if points.is_empty() {
        return points;
    }
    // Sort by ascending cost; ties broken by descending benefit so the best
    // point at a given cost comes first.
    points.sort_by(|a, b| {
        a.cost
            .partial_cmp(&b.cost)
            .expect("finite by construction")
            .then(
                b.benefit
                    .partial_cmp(&a.benefit)
                    .expect("finite by construction"),
            )
    });
    let mut frontier: Vec<ParetoPoint<T>> = Vec::new();
    let mut best_benefit = f64::NEG_INFINITY;
    for p in points {
        if p.benefit > best_benefit {
            best_benefit = p.benefit;
            frontier.push(p);
        }
    }
    frontier
}

/// Filters points to those satisfying a hard cost budget (e.g. the ≤25 W
/// storage-drive power envelope) before frontier extraction.
pub fn within_budget<T>(points: Vec<ParetoPoint<T>>, max_cost: f64) -> Vec<ParetoPoint<T>> {
    points.into_iter().filter(|p| p.cost <= max_cost).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_removes_dominated_points() {
        let pts = vec![
            ParetoPoint::new(1.0, 1.0, 0usize),
            ParetoPoint::new(2.0, 3.0, 1),
            ParetoPoint::new(2.5, 2.0, 2), // dominated by 1
            ParetoPoint::new(4.0, 5.0, 3),
            ParetoPoint::new(5.0, 4.5, 4), // dominated by 3
        ];
        let frontier = pareto_frontier(pts);
        let tags: Vec<usize> = frontier.iter().map(|p| p.tag).collect();
        assert_eq!(tags, vec![0, 1, 3]);
    }

    #[test]
    fn frontier_is_monotone() {
        let pts: Vec<ParetoPoint<usize>> = (0..100)
            .map(|i| {
                let cost = (i % 17) as f64 + 1.0;
                let benefit = ((i * 31) % 23) as f64;
                ParetoPoint::new(cost, benefit, i)
            })
            .collect();
        let frontier = pareto_frontier(pts);
        assert!(frontier
            .windows(2)
            .all(|w| w[0].cost < w[1].cost && w[0].benefit < w[1].benefit));
    }

    #[test]
    fn dominance_relation() {
        let a = ParetoPoint::new(1.0, 2.0, ());
        let b = ParetoPoint::new(2.0, 1.0, ());
        let c = ParetoPoint::new(1.0, 2.0, ());
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&c), "equal points do not dominate each other");
    }

    #[test]
    fn ties_keep_best_benefit() {
        let pts = vec![
            ParetoPoint::new(1.0, 5.0, "good"),
            ParetoPoint::new(1.0, 3.0, "worse"),
        ];
        let frontier = pareto_frontier(pts);
        assert_eq!(frontier.len(), 1);
        assert_eq!(frontier[0].tag, "good");
    }

    #[test]
    fn budget_filter() {
        let pts = vec![
            ParetoPoint::new(10.0, 1.0, "in"),
            ParetoPoint::new(30.0, 100.0, "out"),
        ];
        let kept = within_budget(pts, 25.0);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].tag, "in");
    }

    #[test]
    fn empty_input_yields_empty_frontier() {
        let frontier: Vec<ParetoPoint<()>> = pareto_frontier(Vec::new());
        assert!(frontier.is_empty());
    }
}
