//! Physical quantities used throughout the system models.
//!
//! Newtypes keep watts from being confused with joules and bytes from being
//! confused with bandwidth — the kind of unit mix-up that silently skews an
//! energy-efficiency figure.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use crate::time::SimDuration;

/// A data size in bytes.
///
/// ```
/// use dscs_simcore::quantity::Bytes;
/// let payload = Bytes::from_mib(4);
/// assert_eq!(payload.as_u64(), 4 * 1024 * 1024);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a size from a raw byte count.
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Creates a size from binary kibibytes.
    pub const fn from_kib(kib: u64) -> Self {
        Bytes(kib * 1024)
    }

    /// Creates a size from binary mebibytes.
    pub const fn from_mib(mib: u64) -> Self {
        Bytes(mib * 1024 * 1024)
    }

    /// Creates a size from binary gibibytes.
    pub const fn from_gib(gib: u64) -> Self {
        Bytes(gib * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Byte count as a float, for analytical models.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Size in mebibytes.
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Scales the size by a floating point factor (e.g. a compression ratio).
    pub fn scale(self, factor: f64) -> Bytes {
        Bytes((self.0 as f64 * factor).round().max(0.0) as u64)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(
            self.0
                .checked_sub(rhs.0)
                .expect("Bytes subtraction underflow"),
        )
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Self {
        iter.fold(Bytes::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if b >= 1024.0 * 1024.0 * 1024.0 {
            write!(f, "{:.2} GiB", b / (1024.0 * 1024.0 * 1024.0))
        } else if b >= 1024.0 * 1024.0 {
            write!(f, "{:.2} MiB", b / (1024.0 * 1024.0))
        } else if b >= 1024.0 {
            write!(f, "{:.2} KiB", b / 1024.0)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// A data-transfer rate in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a bandwidth from bytes per second.
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        assert!(
            bps >= 0.0 && bps.is_finite(),
            "bandwidth must be non-negative and finite"
        );
        Bandwidth(bps)
    }

    /// Creates a bandwidth from gigabytes (decimal) per second.
    pub fn from_gbps(gbps: f64) -> Self {
        Self::from_bytes_per_sec(gbps * 1e9)
    }

    /// Creates a bandwidth from megabytes (decimal) per second.
    pub fn from_mbps(mbps: f64) -> Self {
        Self::from_bytes_per_sec(mbps * 1e6)
    }

    /// Creates a bandwidth from gigabits per second (e.g. network links).
    pub fn from_gbits_per_sec(gbits: f64) -> Self {
        Self::from_bytes_per_sec(gbits * 1e9 / 8.0)
    }

    /// Bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Gigabytes (decimal) per second.
    pub fn as_gbps(self) -> f64 {
        self.0 / 1e9
    }

    /// Time to transfer `size` at this bandwidth.
    ///
    /// # Panics
    /// Panics if the bandwidth is zero and the size is non-zero.
    pub fn transfer_time(self, size: Bytes) -> SimDuration {
        if size.as_u64() == 0 {
            return SimDuration::ZERO;
        }
        assert!(self.0 > 0.0, "cannot transfer over a zero-bandwidth link");
        SimDuration::from_secs_f64(size.as_f64() / self.0)
    }

    /// Derates the bandwidth by an efficiency in `(0, 1]`.
    pub fn derate(self, efficiency: f64) -> Bandwidth {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1]"
        );
        Bandwidth(self.0 * efficiency)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GB/s", self.as_gbps())
    }
}

/// Power in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Watts(f64);

impl Watts {
    /// Zero power.
    pub const ZERO: Watts = Watts(0.0);

    /// Creates a power value.
    pub fn new(watts: f64) -> Self {
        assert!(
            watts >= 0.0 && watts.is_finite(),
            "power must be non-negative and finite"
        );
        Watts(watts)
    }

    /// The value in watts.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Energy dissipated at this power over `dur`.
    pub fn over(self, dur: SimDuration) -> Joules {
        Joules::new(self.0 * dur.as_secs_f64())
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl AddAssign for Watts {
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Watts {
    type Output = Watts;
    fn mul(self, rhs: f64) -> Watts {
        Watts::new(self.0 * rhs)
    }
}

impl Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Self {
        iter.fold(Watts::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} W", self.0)
    }
}

/// Energy in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Joules(f64);

impl Joules {
    /// Zero energy.
    pub const ZERO: Joules = Joules(0.0);

    /// Creates an energy value.
    pub fn new(joules: f64) -> Self {
        assert!(
            joules >= 0.0 && joules.is_finite(),
            "energy must be non-negative and finite"
        );
        Joules(joules)
    }

    /// The value in joules.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// The value in millijoules.
    pub fn as_millijoules(self) -> f64 {
        self.0 * 1e3
    }

    /// Energy in kilowatt-hours (used by the OPEX model).
    pub fn as_kwh(self) -> f64 {
        self.0 / 3.6e6
    }
}

impl Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Joules {
    type Output = Joules;
    fn mul(self, rhs: f64) -> Joules {
        Joules::new(self.0 * rhs)
    }
}

impl Div<Joules> for Joules {
    type Output = f64;
    fn div(self, rhs: Joules) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Self {
        iter.fold(Joules::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} J", self.0)
    }
}

/// Clock frequency in hertz.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Frequency(f64);

impl Frequency {
    /// Creates a frequency from hertz.
    pub fn from_hz(hz: f64) -> Self {
        assert!(
            hz > 0.0 && hz.is_finite(),
            "frequency must be positive and finite"
        );
        Frequency(hz)
    }

    /// Creates a frequency from megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Self::from_hz(mhz * 1e6)
    }

    /// Creates a frequency from gigahertz.
    pub fn from_ghz(ghz: f64) -> Self {
        Self::from_hz(ghz * 1e9)
    }

    /// The value in hertz.
    pub fn as_hz(self) -> f64 {
        self.0
    }

    /// The value in gigahertz.
    pub fn as_ghz(self) -> f64 {
        self.0 / 1e9
    }

    /// Wall-clock time for `cycles` clock cycles at this frequency.
    pub fn cycles_to_time(self, cycles: u64) -> SimDuration {
        SimDuration::from_secs_f64(cycles as f64 / self.0)
    }

    /// Number of whole cycles elapsed in `dur` (rounded up).
    pub fn time_to_cycles(self, dur: SimDuration) -> u64 {
        (dur.as_secs_f64() * self.0).ceil() as u64
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} GHz", self.as_ghz())
    }
}

/// Silicon area in square millimetres.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct AreaMm2(f64);

impl AreaMm2 {
    /// Zero area.
    pub const ZERO: AreaMm2 = AreaMm2(0.0);

    /// Creates an area value.
    pub fn new(mm2: f64) -> Self {
        assert!(
            mm2 >= 0.0 && mm2.is_finite(),
            "area must be non-negative and finite"
        );
        AreaMm2(mm2)
    }

    /// The value in square millimetres.
    pub fn as_f64(self) -> f64 {
        self.0
    }
}

impl Add for AreaMm2 {
    type Output = AreaMm2;
    fn add(self, rhs: AreaMm2) -> AreaMm2 {
        AreaMm2(self.0 + rhs.0)
    }
}

impl AddAssign for AreaMm2 {
    fn add_assign(&mut self, rhs: AreaMm2) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for AreaMm2 {
    type Output = AreaMm2;
    fn mul(self, rhs: f64) -> AreaMm2 {
        AreaMm2::new(self.0 * rhs)
    }
}

impl Sum for AreaMm2 {
    fn sum<I: Iterator<Item = AreaMm2>>(iter: I) -> Self {
        iter.fold(AreaMm2::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for AreaMm2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} mm2", self.0)
    }
}

/// US dollars, used by the CAPEX/OPEX cost-efficiency model.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Dollars(f64);

impl Dollars {
    /// Zero dollars.
    pub const ZERO: Dollars = Dollars(0.0);

    /// Creates a dollar amount.
    pub fn new(usd: f64) -> Self {
        assert!(
            usd >= 0.0 && usd.is_finite(),
            "cost must be non-negative and finite"
        );
        Dollars(usd)
    }

    /// The value in dollars.
    pub fn as_f64(self) -> f64 {
        self.0
    }
}

impl Add for Dollars {
    type Output = Dollars;
    fn add(self, rhs: Dollars) -> Dollars {
        Dollars(self.0 + rhs.0)
    }
}

impl AddAssign for Dollars {
    fn add_assign(&mut self, rhs: Dollars) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Dollars {
    type Output = Dollars;
    fn mul(self, rhs: f64) -> Dollars {
        Dollars::new(self.0 * rhs)
    }
}

impl Sum for Dollars {
    fn sum<I: Iterator<Item = Dollars>>(iter: I) -> Self {
        iter.fold(Dollars::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Dollars {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.2}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_constructors_and_display() {
        assert_eq!(Bytes::from_kib(1).as_u64(), 1024);
        assert_eq!(Bytes::from_mib(1).as_u64(), 1024 * 1024);
        assert_eq!(Bytes::from_gib(1).as_u64(), 1 << 30);
        assert_eq!(format!("{}", Bytes::new(512)), "512 B");
        assert_eq!(format!("{}", Bytes::from_mib(3)), "3.00 MiB");
    }

    #[test]
    fn bandwidth_transfer_time() {
        let link = Bandwidth::from_gbps(1.0);
        let t = link.transfer_time(Bytes::new(1_000_000_000));
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
        assert_eq!(link.transfer_time(Bytes::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn bandwidth_from_gbits() {
        let link = Bandwidth::from_gbits_per_sec(100.0);
        assert!((link.as_gbps() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn power_energy_relationship() {
        let p = Watts::new(25.0);
        let e = p.over(SimDuration::from_secs(4));
        assert!((e.as_f64() - 100.0).abs() < 1e-9);
        assert!((Joules::new(3.6e6).as_kwh() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frequency_cycle_conversions() {
        let f = Frequency::from_ghz(1.0);
        assert_eq!(f.cycles_to_time(1_000_000).as_micros_f64(), 1000.0);
        assert_eq!(f.time_to_cycles(SimDuration::from_micros(1)), 1000);
    }

    #[test]
    fn bytes_scaling() {
        assert_eq!(Bytes::new(100).scale(0.5).as_u64(), 50);
        assert_eq!(Bytes::new(100).scale(2.0).as_u64(), 200);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_power_rejected() {
        let _ = Watts::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "zero-bandwidth")]
    fn zero_bandwidth_transfer_panics() {
        let _ = Bandwidth::from_bytes_per_sec(0.0).transfer_time(Bytes::new(1));
    }

    #[test]
    fn sums_work() {
        let total: Bytes = [Bytes::new(1), Bytes::new(2)].into_iter().sum();
        assert_eq!(total.as_u64(), 3);
        let total: Watts = [Watts::new(1.0), Watts::new(2.0)].into_iter().sum();
        assert!((total.as_f64() - 3.0).abs() < 1e-12);
        let total: Dollars = [Dollars::new(1.5), Dollars::new(2.5)].into_iter().sum();
        assert!((total.as_f64() - 4.0).abs() < 1e-12);
    }
}
