//! Deterministic random number generation.
//!
//! Every stochastic component of the simulation (storage tail latency, request
//! arrivals, trace generation) draws from a [`DeterministicRng`] so that a run
//! is exactly reproducible from its seed. This mirrors the paper's methodology
//! of replaying a fixed 20-minute trace and fixed 10 000-request load.

/// A seedable, deterministic random number generator.
///
/// Implements xoshiro256++ (seeded through SplitMix64) directly, behind a
/// small API, so downstream crates do not need an external `rand` dependency
/// and so the generator can be swapped out without touching call sites.
///
/// ```
/// use dscs_simcore::rng::DeterministicRng;
/// let mut a = DeterministicRng::seeded(42);
/// let mut b = DeterministicRng::seeded(42);
/// assert_eq!(a.next_f64(), b.next_f64());
/// ```
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    state: [u64; 4],
    seed: u64,
}

impl DeterministicRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        // Expand the seed with SplitMix64, the seeding scheme the xoshiro
        // authors recommend; it guarantees a non-zero state for any seed.
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        DeterministicRng {
            state: [next_sm(), next_sm(), next_sm(), next_sm()],
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator; useful to give each simulated
    /// node or benchmark its own stream without correlation.
    pub fn fork(&mut self, salt: u64) -> DeterministicRng {
        let child_seed = self
            .next_u64()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt);
        DeterministicRng::seeded(child_seed)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform range must be non-empty");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn next_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick an index from an empty range");
        // Rejection sampling over the largest multiple of `n` that fits in
        // u64, so every index is exactly equally likely.
        let n = n as u64;
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n) as usize;
            }
        }
    }

    /// Raw 64-bit value (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// A standard-normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by sampling u1 from (0, 1].
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.next_f64() < p
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.next_index(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::seeded(1);
        let mut b = DeterministicRng::seeded(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DeterministicRng::seeded(1);
        let mut b = DeterministicRng::seeded(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = DeterministicRng::seeded(3);
        for _ in 0..1000 {
            let x = rng.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = DeterministicRng::seeded(4);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn bernoulli_frequency_matches_probability() {
        let mut rng = DeterministicRng::seeded(5);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.3)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = DeterministicRng::seeded(6);
        let mut c1 = parent.fork(0);
        let mut c2 = parent.fork(1);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = DeterministicRng::seeded(7);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(rng.choose(&items)));
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_uniform_range_panics() {
        DeterministicRng::seeded(8).uniform(1.0, 1.0);
    }
}
