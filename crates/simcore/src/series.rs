//! Time-bucketed metric series.
//!
//! Figures 13(a)–(d) plot requests/second, queue depth and latency against
//! wall-clock minutes. [`TimeSeries`] accumulates samples into fixed-width
//! buckets and reports per-bucket means, maxima and counts.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Why two [`TimeSeries`] could not be merged.
///
/// Merging is only defined for series built with the same bucket width over
/// the same horizon — i.e. series recorded against the same clock — so the
/// mismatch is reported as a typed error rather than silently resampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesMergeError {
    /// The two series use different bucket widths.
    BucketMismatch {
        /// Bucket width of the series being merged into.
        ours: SimDuration,
        /// Bucket width of the other series.
        theirs: SimDuration,
    },
    /// The two series cover a different number of buckets (different horizons).
    LengthMismatch {
        /// Bucket count of the series being merged into.
        ours: usize,
        /// Bucket count of the other series.
        theirs: usize,
    },
}

impl fmt::Display for SeriesMergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeriesMergeError::BucketMismatch { ours, theirs } => write!(
                f,
                "cannot merge series with different bucket widths ({} ns vs {} ns)",
                ours.as_nanos(),
                theirs.as_nanos()
            ),
            SeriesMergeError::LengthMismatch { ours, theirs } => write!(
                f,
                "cannot merge series with different horizons ({ours} vs {theirs} buckets)"
            ),
        }
    }
}

impl Error for SeriesMergeError {}

/// A metric accumulated into fixed-width time buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    bucket: SimDuration,
    sums: Vec<f64>,
    maxima: Vec<f64>,
    counts: Vec<u64>,
}

impl TimeSeries {
    /// Creates a series covering `[0, horizon)` with buckets of width `bucket`.
    ///
    /// # Panics
    /// Panics if the bucket width is zero or larger than the horizon.
    pub fn new(bucket: SimDuration, horizon: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be non-zero");
        assert!(horizon >= bucket, "horizon must cover at least one bucket");
        let n = horizon.as_nanos().div_ceil(bucket.as_nanos()) as usize;
        TimeSeries {
            bucket,
            sums: vec![0.0; n],
            maxima: vec![0.0; n],
            counts: vec![0; n],
        }
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.sums.len()
    }

    /// Whether the series has no buckets (never true for a constructed series).
    pub fn is_empty(&self) -> bool {
        self.sums.is_empty()
    }

    /// Bucket width.
    pub fn bucket_width(&self) -> SimDuration {
        self.bucket
    }

    /// Records `value` at time `at`. Samples past the horizon are clamped into
    /// the final bucket so late completions are not silently dropped.
    ///
    /// # Panics
    /// Panics if `value` is not finite.
    pub fn record(&mut self, at: SimTime, value: f64) {
        assert!(value.is_finite(), "series values must be finite");
        let idx = ((at.as_nanos() / self.bucket.as_nanos()) as usize).min(self.sums.len() - 1);
        self.sums[idx] += value;
        self.counts[idx] += 1;
        if value > self.maxima[idx] {
            self.maxima[idx] = value;
        }
    }

    /// Records an occurrence (count of one) at time `at`.
    pub fn record_event(&mut self, at: SimTime) {
        self.record(at, 1.0);
    }

    /// Merges `other` into `self` bucket-wise: sums and counts add, maxima
    /// take the pairwise maximum. Both series must share the same bucket
    /// width and bucket count (i.e. the same horizon); a mismatch returns a
    /// [`SeriesMergeError`] and leaves `self` untouched.
    ///
    /// Merging partitioned series recorded against the same clock is exact
    /// for counts, rates and maxima; per-bucket means recompute from the
    /// merged sums, so they equal the means a single combined series would
    /// have reported (up to floating-point addition order).
    pub fn merge(&mut self, other: &TimeSeries) -> Result<(), SeriesMergeError> {
        if self.bucket != other.bucket {
            return Err(SeriesMergeError::BucketMismatch {
                ours: self.bucket,
                theirs: other.bucket,
            });
        }
        if self.sums.len() != other.sums.len() {
            return Err(SeriesMergeError::LengthMismatch {
                ours: self.sums.len(),
                theirs: other.sums.len(),
            });
        }
        for (ours, theirs) in self.sums.iter_mut().zip(&other.sums) {
            *ours += theirs;
        }
        for (ours, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *ours += theirs;
        }
        for (ours, &theirs) in self.maxima.iter_mut().zip(&other.maxima) {
            if theirs > *ours {
                *ours = theirs;
            }
        }
        Ok(())
    }

    /// Per-bucket sample counts (e.g. requests per bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Per-bucket mean of recorded values; `None` for empty buckets.
    pub fn means(&self) -> Vec<Option<f64>> {
        self.sums
            .iter()
            .zip(&self.counts)
            .map(|(&sum, &count)| {
                if count == 0 {
                    None
                } else {
                    Some(sum / count as f64)
                }
            })
            .collect()
    }

    /// Per-bucket mean with empty buckets filled by the previous non-empty
    /// bucket (or 0.0 at the start). This is what gets plotted.
    pub fn means_filled(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        let mut last = 0.0;
        for mean in self.means() {
            if let Some(m) = mean {
                last = m;
            }
            out.push(last);
        }
        out
    }

    /// Per-bucket maximum of recorded values.
    pub fn maxima(&self) -> &[f64] {
        &self.maxima
    }

    /// Per-bucket event rate in events per second.
    pub fn rates_per_sec(&self) -> Vec<f64> {
        let w = self.bucket.as_secs_f64();
        self.counts.iter().map(|&c| c as f64 / w).collect()
    }

    /// `(bucket start seconds, mean)` pairs for plotting, skipping empty buckets.
    pub fn curve(&self) -> Vec<(f64, f64)> {
        self.means()
            .iter()
            .enumerate()
            .filter_map(|(i, mean)| mean.map(|m| (i as f64 * self.bucket.as_secs_f64(), m)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn buckets_cover_horizon() {
        let ts = TimeSeries::new(SimDuration::from_secs(60), SimDuration::from_secs(20 * 60));
        assert_eq!(ts.len(), 20);
    }

    #[test]
    fn records_land_in_correct_bucket() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1), SimDuration::from_secs(10));
        ts.record(secs(0), 2.0);
        ts.record(secs(3), 4.0);
        ts.record(secs(3), 6.0);
        assert_eq!(ts.counts()[0], 1);
        assert_eq!(ts.counts()[3], 2);
        assert_eq!(ts.means()[3], Some(5.0));
        assert_eq!(ts.maxima()[3], 6.0);
        assert_eq!(ts.means()[1], None);
    }

    #[test]
    fn late_samples_clamp_to_last_bucket() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1), SimDuration::from_secs(5));
        ts.record(secs(100), 1.0);
        assert_eq!(ts.counts()[4], 1);
    }

    #[test]
    fn rates_convert_counts() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(2), SimDuration::from_secs(4));
        for _ in 0..10 {
            ts.record_event(secs(1));
        }
        assert_eq!(ts.rates_per_sec()[0], 5.0);
    }

    #[test]
    fn filled_means_carry_forward() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1), SimDuration::from_secs(4));
        ts.record(secs(0), 2.0);
        ts.record(secs(3), 8.0);
        assert_eq!(ts.means_filled(), vec![2.0, 2.0, 2.0, 8.0]);
    }

    #[test]
    fn curve_skips_empty_buckets() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1), SimDuration::from_secs(3));
        ts.record(secs(2), 7.0);
        assert_eq!(ts.curve(), vec![(2.0, 7.0)]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bucket_rejected() {
        let _ = TimeSeries::new(SimDuration::ZERO, SimDuration::from_secs(1));
    }

    #[test]
    fn merge_sums_counts_and_takes_maxima() {
        let mut a = TimeSeries::new(SimDuration::from_secs(1), SimDuration::from_secs(4));
        let mut b = TimeSeries::new(SimDuration::from_secs(1), SimDuration::from_secs(4));
        a.record(secs(0), 2.0);
        a.record(secs(2), 10.0);
        b.record(secs(0), 4.0);
        b.record(secs(0), 6.0);
        b.record(secs(3), 1.0);
        a.merge(&b).expect("compatible series");
        assert_eq!(a.counts(), &[3, 0, 1, 1]);
        assert_eq!(a.means()[0], Some(4.0));
        assert_eq!(a.maxima(), &[6.0, 0.0, 10.0, 1.0]);
        assert_eq!(a.means()[1], None);
    }

    #[test]
    fn merge_matches_a_single_combined_series() {
        // Partition one stream of events across two series and merge; the
        // result must match recording everything into one series.
        let make = || TimeSeries::new(SimDuration::from_secs(2), SimDuration::from_secs(10));
        let (mut whole, mut left, mut right) = (make(), make(), make());
        for i in 0..40u64 {
            let at = secs(i % 10);
            let value = (i % 7) as f64;
            whole.record(at, value);
            if i % 2 == 0 {
                left.record(at, value);
            } else {
                right.record(at, value);
            }
        }
        left.merge(&right).expect("compatible series");
        assert_eq!(left.counts(), whole.counts());
        assert_eq!(left.maxima(), whole.maxima());
        assert_eq!(left.rates_per_sec(), whole.rates_per_sec());
    }

    #[test]
    fn merge_rejects_mismatched_buckets() {
        let mut a = TimeSeries::new(SimDuration::from_secs(1), SimDuration::from_secs(4));
        let b = TimeSeries::new(SimDuration::from_secs(2), SimDuration::from_secs(4));
        let before = a.clone();
        let err = a.merge(&b).expect_err("bucket widths differ");
        assert_eq!(
            err,
            SeriesMergeError::BucketMismatch {
                ours: SimDuration::from_secs(1),
                theirs: SimDuration::from_secs(2),
            }
        );
        assert!(err.to_string().contains("bucket widths"));
        assert_eq!(a, before, "failed merge must leave the series untouched");
    }

    #[test]
    fn merge_rejects_mismatched_horizons() {
        let mut a = TimeSeries::new(SimDuration::from_secs(1), SimDuration::from_secs(4));
        let b = TimeSeries::new(SimDuration::from_secs(1), SimDuration::from_secs(6));
        let err = a.merge(&b).expect_err("horizons differ");
        assert_eq!(err, SeriesMergeError::LengthMismatch { ours: 4, theirs: 6 });
        assert!(err.to_string().contains("horizons"));
    }
}
