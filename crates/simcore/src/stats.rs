//! Percentile summaries, histograms and empirical CDFs.
//!
//! The paper reports p95 latencies for all end-to-end results, p50/p99 for the
//! tail-latency study, and full CDFs of S3 read latency (Figure 3). This module
//! provides the corresponding reductions over sample sets.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics over a set of samples.
///
/// ```
/// use dscs_simcore::stats::Summary;
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
}

impl Summary {
    /// Builds a summary from raw samples (NaNs are rejected).
    ///
    /// # Panics
    /// Panics if `samples` is empty or contains non-finite values.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarise an empty sample set");
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "samples must be finite"
        );
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values always compare"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Summary { sorted, mean }
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Standard deviation (population).
    pub fn std_dev(&self) -> f64 {
        let var = self
            .sorted
            .iter()
            .map(|x| (x - self.mean).powi(2))
            .sum::<f64>()
            / self.sorted.len() as f64;
        var.sqrt()
    }

    /// Value at quantile `q` in `[0, 1]`, with linear interpolation between
    /// order statistics.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let pos = q * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.sorted[lo]
        } else {
            let frac = pos - lo as f64;
            self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
        }
    }

    /// Median (50th percentile).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile — the statistic the paper uses for all end-to-end latencies.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Builds the empirical CDF of the samples.
    pub fn cdf(&self) -> Cdf {
        Cdf::from_sorted(self.sorted.clone())
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} p50={:.4} p95={:.4} p99={:.4} max={:.4}",
            self.count(),
            self.mean(),
            self.p50(),
            self.p95(),
            self.p99(),
            self.max()
        )
    }
}

/// An empirical cumulative distribution function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from unsorted samples.
    ///
    /// # Panics
    /// Panics if `samples` is empty or contains non-finite values.
    pub fn from_samples(samples: &[f64]) -> Self {
        Summary::from_samples(samples).cdf()
    }

    fn from_sorted(sorted: Vec<f64>) -> Self {
        Cdf { sorted }
    }

    /// Fraction of samples `<= x`.
    pub fn probability_at(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Evaluates the CDF on `points` equally spaced values between the sample
    /// min and max, returning `(value, probability)` pairs — the series plotted
    /// in Figure 3.
    ///
    /// # Panics
    /// Panics if `points < 2`.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two curve points");
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        (0..points)
            .map(|i| {
                // The final point is exactly the sample maximum so the curve
                // always ends at probability 1.0 despite rounding.
                let x = if i + 1 == points {
                    hi
                } else {
                    lo + (hi - lo) * i as f64 / (points - 1) as f64
                };
                (x, self.probability_at(x))
            })
            .collect()
    }

    /// Number of underlying samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }
}

/// A fixed-width histogram over non-negative samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of `bucket_width` each.
    /// Samples beyond the last bucket are clamped into it.
    ///
    /// # Panics
    /// Panics if `bucket_width <= 0` or `buckets == 0`.
    pub fn new(bucket_width: f64, buckets: usize) -> Self {
        assert!(
            bucket_width > 0.0 && bucket_width.is_finite(),
            "bucket width must be positive"
        );
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            bucket_width,
            counts: vec![0; buckets],
            total: 0,
        }
    }

    /// Records a sample.
    ///
    /// # Panics
    /// Panics if the sample is negative or not finite.
    pub fn record(&mut self, value: f64) {
        assert!(
            value.is_finite() && value >= 0.0,
            "histogram samples must be non-negative and finite"
        );
        let idx = ((value / self.bucket_width) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Approximate quantile from bucket midpoints.
    ///
    /// # Panics
    /// Panics if the histogram is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        assert!(self.total > 0, "histogram is empty");
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (i as f64 + 0.5) * self.bucket_width;
            }
        }
        (self.counts.len() as f64 - 0.5) * self.bucket_width
    }
}

/// Relative accuracy of [`QuantileSketch`]: quantile answers are within 1%
/// of the exact order statistic (see [`QuantileSketch::quantile`]).
pub const SKETCH_RELATIVE_ACCURACY: f64 = 0.01;

/// Log-bucket growth factor `(1 + α) / (1 - α)` for α = 1%.
const SKETCH_GAMMA: f64 = (1.0 + SKETCH_RELATIVE_ACCURACY) / (1.0 - SKETCH_RELATIVE_ACCURACY);

/// Lowest bucket index: values at or below `γ^MIN` (≈ 1e-9, sub-nanosecond
/// latencies in seconds) collapse into the first bucket.
const SKETCH_MIN_INDEX: i32 = -1036;

/// Highest bucket index: values above `γ^MAX` (≈ 1e9) clamp into the last
/// bucket. The α error bound holds for samples inside `[γ^MIN, γ^MAX]`.
const SKETCH_MAX_INDEX: i32 = 1036;

/// Number of log buckets the sketch carries (fixed, so merges never
/// re-bucket): ~2k `u64` counters, ≈16 KiB per sketch.
const SKETCH_BUCKETS: usize = (SKETCH_MAX_INDEX - SKETCH_MIN_INDEX + 1) as usize;

/// A mergeable streaming percentile sketch: a fixed-layout logarithmic
/// histogram (DDSketch-style) over non-negative samples.
///
/// Where [`Summary`] buffers every sample (`Vec<f64>`, unbounded memory),
/// the sketch holds a fixed ~16 KiB of bucket counters regardless of sample
/// count, so million-invocation simulations summarise latency in constant
/// space. The price is bounded approximation: [`QuantileSketch::quantile`]
/// returns a value within [`SKETCH_RELATIVE_ACCURACY`] (1%) of the exact
/// order statistic. Count, sum (hence mean), min and max are tracked
/// exactly.
///
/// Sketches over disjoint sample sets merge losslessly: bucket counts add,
/// so `sketch(a ∪ b)` and `merge(sketch(a), sketch(b))` agree exactly on
/// every quantile (and on count/min/max; the mean can differ only by
/// floating-point summation order).
///
/// ```
/// use dscs_simcore::stats::QuantileSketch;
/// let mut s = QuantileSketch::new();
/// for i in 1..=1000 {
///     s.record(i as f64);
/// }
/// assert_eq!(s.count(), 1000);
/// let p99 = s.p99();
/// assert!((p99 - 990.0).abs() <= 990.0 * 0.01 + 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileSketch {
    /// Bucket `slot` counts samples with `ceil(log_γ v) == slot + MIN_INDEX`.
    counts: Vec<u64>,
    /// Samples that were exactly zero (no logarithm to bucket by).
    zeros: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            counts: vec![0; SKETCH_BUCKETS],
            zeros: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a sketch from raw samples.
    ///
    /// # Panics
    /// Panics if `samples` is empty or contains negative or non-finite
    /// values — the same contract as [`Summary::from_samples`] (plus
    /// non-negativity: the sketch buckets by logarithm).
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarise an empty sample set");
        let mut sketch = QuantileSketch::new();
        for &v in samples {
            sketch.record(v);
        }
        sketch
    }

    /// Records one sample.
    ///
    /// # Panics
    /// Panics if the sample is negative or not finite.
    pub fn record(&mut self, value: f64) {
        assert!(
            value.is_finite() && value >= 0.0,
            "sketch samples must be non-negative and finite"
        );
        if value == 0.0 {
            self.zeros += 1;
        } else {
            let index = (value.ln() / SKETCH_GAMMA.ln()).ceil() as i32;
            let slot = index.clamp(SKETCH_MIN_INDEX, SKETCH_MAX_INDEX) - SKETCH_MIN_INDEX;
            self.counts[slot as usize] += 1;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another sketch into this one: afterwards this sketch
    /// summarises the union of both sample sets. Bucket layouts are fixed at
    /// compile time, so any two sketches merge; quantiles of the merged
    /// sketch equal quantiles of a sketch fed both streams directly.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.zeros += other.zeros;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean — exact (tracked as a running sum), not sketched.
    ///
    /// # Panics
    /// Panics if the sketch is empty.
    pub fn mean(&self) -> f64 {
        assert!(self.count > 0, "cannot summarise an empty sketch");
        self.sum / self.count as f64
    }

    /// Smallest recorded sample — exact.
    ///
    /// # Panics
    /// Panics if the sketch is empty.
    pub fn min(&self) -> f64 {
        assert!(self.count > 0, "cannot summarise an empty sketch");
        self.min
    }

    /// Largest recorded sample — exact.
    ///
    /// # Panics
    /// Panics if the sketch is empty.
    pub fn max(&self) -> f64 {
        assert!(self.count > 0, "cannot summarise an empty sketch");
        self.max
    }

    /// Sum of all recorded samples — exact.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Value at quantile `q` in `[0, 1]`: the representative of the bucket
    /// holding the order statistic of rank `⌈q·n⌉`, clamped into
    /// `[min, max]`. For samples within `[1e-9, 1e9]` the answer is within
    /// [`SKETCH_RELATIVE_ACCURACY`] (relative) of that exact order
    /// statistic. The boundary quantiles are exact: `q = 0.0` returns the
    /// tracked minimum and `q = 1.0` the tracked maximum, matching the
    /// rank convention's first and last order statistics.
    ///
    /// # Panics
    /// Panics if the sketch is empty or `q` is outside `[0, 1]` (which
    /// includes NaN; a debug assertion names non-finite `q` explicitly).
    pub fn quantile(&self, q: f64) -> f64 {
        debug_assert!(q.is_finite(), "quantile must be finite, got {q}");
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        assert!(self.count > 0, "cannot summarise an empty sketch");
        // The rank formula degenerates at both ends: ⌈q·n⌉ is rank 0 for
        // q = 0 (there is no zeroth order statistic), and at q = 1 the
        // bucket walk below would return a bucket representative that can
        // sit strictly below the true maximum. Both extremes are tracked
        // exactly, so answer them exactly.
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        // q > 0 makes ⌈q·n⌉ >= 1 without any clamping.
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = self.zeros;
        if seen >= target {
            return 0.0;
        }
        for (slot, &bucket) in self.counts.iter().enumerate() {
            seen += bucket;
            if seen >= target {
                let index = slot as i32 + SKETCH_MIN_INDEX;
                // Representative 2γ^i / (γ + 1): at most α relative error
                // from any value in the bucket's range (γ^(i-1), γ^i].
                let rep = 2.0 * (f64::from(index) * SKETCH_GAMMA.ln()).exp() / (SKETCH_GAMMA + 1.0);
                return rep.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (50th percentile).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile — the statistic the paper uses for end-to-end
    /// latencies.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

impl fmt::Display for QuantileSketch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "n=0 (empty sketch)");
        }
        write!(
            f,
            "n={} mean={:.4} p50~{:.4} p95~{:.4} p99~{:.4} max={:.4}",
            self.count(),
            self.mean(),
            self.p50(),
            self.p95(),
            self.p99(),
            self.max()
        )
    }
}

/// A wall-clock measurement carried alongside deterministic simulation
/// results.
///
/// Throughput numbers (`events_per_sec`, elapsed wall seconds) are real
/// measurements: they legitimately differ between two otherwise bit-identical
/// runs. Wrapping them in `Measured` makes that explicit in the type system —
/// `Measured` compares equal to any other `Measured`, so reports that derive
/// `PartialEq` stay bit-comparable on every modelled field while still
/// carrying their measurements.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Measured(pub f64);

impl Measured {
    /// The measured value.
    pub fn get(&self) -> f64 {
        self.0
    }
}

impl PartialEq for Measured {
    /// Measurements never participate in result comparison: two runs of the
    /// same deterministic simulation are "equal" regardless of how long the
    /// hardware took.
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl From<f64> for Measured {
    fn from(value: f64) -> Self {
        Measured(value)
    }
}

impl fmt::Display for Measured {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

/// Computes the geometric mean of strictly positive values — used for the
/// cross-benchmark averages the paper reports ("on average 3.6x speedup").
///
/// # Panics
/// Panics if `values` is empty or contains non-positive values.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(
        !values.is_empty(),
        "geometric mean of an empty set is undefined"
    );
    assert!(
        values.iter().all(|&v| v > 0.0 && v.is_finite()),
        "values must be positive and finite"
    );
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Computes the arithmetic mean.
///
/// # Panics
/// Panics if `values` is empty.
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of an empty set is undefined");
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_quantiles_interpolate() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.p50(), 3.0);
        assert_eq!(s.quantile(0.25), 2.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert!((s.quantile(0.1) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn summary_mean_and_std() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.std_dev(), 2.0);
    }

    #[test]
    fn single_sample_summary() {
        let s = Summary::from_samples(&[3.5]);
        assert_eq!(s.p50(), 3.5);
        assert_eq!(s.p99(), 3.5);
        assert_eq!(s.min(), s.max());
    }

    #[test]
    fn cdf_probabilities_monotone() {
        let cdf = Cdf::from_samples(&[1.0, 2.0, 2.0, 3.0, 10.0]);
        assert_eq!(cdf.probability_at(0.5), 0.0);
        assert_eq!(cdf.probability_at(2.0), 0.6);
        assert_eq!(cdf.probability_at(10.0), 1.0);
        let curve = cdf.curve(10);
        assert_eq!(curve.len(), 10);
        assert!(curve.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(curve.last().expect("non-empty").1, 1.0);
    }

    #[test]
    fn histogram_quantile_approximates() {
        let mut h = Histogram::new(1.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        assert_eq!(h.total(), 100);
        let p50 = h.quantile(0.5);
        assert!((p50 - 49.5).abs() <= 1.0, "p50 {p50}");
    }

    #[test]
    fn histogram_clamps_overflow() {
        let mut h = Histogram::new(1.0, 4);
        h.record(100.0);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn geometric_mean_of_ratios() {
        let g = geometric_mean(&[2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
        assert!((arithmetic_mean(&[2.0, 8.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_summary_panics() {
        let _ = Summary::from_samples(&[]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_samples_rejected() {
        let _ = Summary::from_samples(&[1.0, f64::NAN]);
    }

    #[test]
    fn sketch_tracks_exact_count_sum_min_max() {
        let samples = [0.004, 0.120, 0.0, 3.5, 0.004];
        let sketch = QuantileSketch::from_samples(&samples);
        assert_eq!(sketch.count(), 5);
        assert_eq!(sketch.min(), 0.0);
        assert_eq!(sketch.max(), 3.5);
        let exact: f64 = samples.iter().sum();
        assert_eq!(sketch.sum().to_bits(), exact.to_bits());
        assert!((sketch.mean() - exact / 5.0).abs() < 1e-15);
    }

    #[test]
    fn sketch_quantiles_stay_within_the_relative_bound() {
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64 * 0.001).collect();
        let sketch = QuantileSketch::from_samples(&samples);
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).max(1);
            let exact = samples[rank - 1];
            let got = sketch.quantile(q);
            assert!(
                (got - exact).abs() <= exact * SKETCH_RELATIVE_ACCURACY + 1e-12,
                "q={q}: sketch {got} vs exact {exact}"
            );
        }
    }

    #[test]
    fn sketch_merge_equals_recording_the_union() {
        let a: Vec<f64> = (1..=500).map(|i| i as f64 * 0.002).collect();
        let b: Vec<f64> = (1..=300).map(|i| (i * i) as f64 * 1e-5).collect();
        let mut merged = QuantileSketch::from_samples(&a);
        merged.merge(&QuantileSketch::from_samples(&b));
        let union: Vec<f64> = a.iter().chain(&b).copied().collect();
        let direct = QuantileSketch::from_samples(&union);
        assert_eq!(merged.count(), direct.count());
        assert_eq!(merged.min().to_bits(), direct.min().to_bits());
        assert_eq!(merged.max().to_bits(), direct.max().to_bits());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(
                merged.quantile(q).to_bits(),
                direct.quantile(q).to_bits(),
                "q={q}: merged sketch must answer exactly like the union sketch"
            );
        }
    }

    #[test]
    fn sketch_handles_zeros_and_extremes() {
        let mut sketch = QuantileSketch::new();
        assert!(sketch.is_empty());
        for _ in 0..10 {
            sketch.record(0.0);
        }
        sketch.record(1e-12); // below the lowest bucket: clamps, stays >= min
        sketch.record(1e12); // above the highest bucket: clamps, stays <= max
        assert_eq!(sketch.quantile(0.5), 0.0);
        assert!(sketch.quantile(1.0) <= 1e12);
        assert_eq!(sketch.max(), 1e12);
        assert_eq!(sketch.min(), 0.0);
    }

    /// Satellite regression test: the rank formula ⌈q·n⌉ degenerates at the
    /// boundaries (rank 0 at q = 0; a bucket representative strictly below
    /// the maximum at q = 1), so both boundary quantiles answer the exactly
    /// tracked extremes — and keep doing so across a merge, which combines
    /// min/max exactly.
    #[test]
    fn sketch_boundary_quantiles_are_the_exact_extremes() {
        let samples: Vec<f64> = (1..=257).map(|i| i as f64 * 0.013).collect();
        let sketch = QuantileSketch::from_samples(&samples);
        assert_eq!(sketch.quantile(0.0).to_bits(), sketch.min().to_bits());
        assert_eq!(sketch.quantile(1.0).to_bits(), sketch.max().to_bits());
        let mut merged = sketch.clone();
        merged.merge(&QuantileSketch::from_samples(&[1e4, 1e-6]));
        assert_eq!(merged.quantile(0.0), 1e-6);
        assert_eq!(merged.quantile(1.0), 1e4);
    }

    #[test]
    #[should_panic(expected = "[0, 1]")]
    fn sketch_rejects_out_of_range_quantiles() {
        let _ = QuantileSketch::from_samples(&[1.0]).quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn sketch_rejects_non_finite_quantiles() {
        let _ = QuantileSketch::from_samples(&[1.0]).quantile(f64::NAN);
    }

    #[test]
    fn single_sample_sketch_answers_that_sample() {
        let sketch = QuantileSketch::from_samples(&[0.0375]);
        for q in [0.0, 0.5, 1.0] {
            let got = sketch.quantile(q);
            assert!(
                (got - 0.0375).abs() <= 0.0375 * SKETCH_RELATIVE_ACCURACY,
                "q={q}: {got}"
            );
        }
        // min/max clamping pins the answer to the exact sample.
        assert_eq!(sketch.quantile(0.5), 0.0375);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sketch_from_samples_panics() {
        let _ = QuantileSketch::from_samples(&[]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sketch_quantile_panics() {
        let _ = QuantileSketch::new().quantile(0.5);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn sketch_rejects_nan() {
        let mut sketch = QuantileSketch::new();
        sketch.record(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn sketch_rejects_negative_samples() {
        let mut sketch = QuantileSketch::new();
        sketch.record(-1.0);
    }

    #[test]
    fn measured_values_never_break_equality() {
        assert_eq!(Measured(1.0), Measured(2.0));
        assert_eq!(Measured(f64::NAN), Measured(0.0));
        assert_eq!(Measured(3.25).get(), 3.25);
        assert_eq!(Measured::from(2.5).get(), 2.5);
    }
}
