//! Percentile summaries, histograms and empirical CDFs.
//!
//! The paper reports p95 latencies for all end-to-end results, p50/p99 for the
//! tail-latency study, and full CDFs of S3 read latency (Figure 3). This module
//! provides the corresponding reductions over sample sets.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics over a set of samples.
///
/// ```
/// use dscs_simcore::stats::Summary;
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
}

impl Summary {
    /// Builds a summary from raw samples (NaNs are rejected).
    ///
    /// # Panics
    /// Panics if `samples` is empty or contains non-finite values.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarise an empty sample set");
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "samples must be finite"
        );
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values always compare"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Summary { sorted, mean }
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Standard deviation (population).
    pub fn std_dev(&self) -> f64 {
        let var = self
            .sorted
            .iter()
            .map(|x| (x - self.mean).powi(2))
            .sum::<f64>()
            / self.sorted.len() as f64;
        var.sqrt()
    }

    /// Value at quantile `q` in `[0, 1]`, with linear interpolation between
    /// order statistics.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let pos = q * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.sorted[lo]
        } else {
            let frac = pos - lo as f64;
            self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
        }
    }

    /// Median (50th percentile).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile — the statistic the paper uses for all end-to-end latencies.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Builds the empirical CDF of the samples.
    pub fn cdf(&self) -> Cdf {
        Cdf::from_sorted(self.sorted.clone())
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} p50={:.4} p95={:.4} p99={:.4} max={:.4}",
            self.count(),
            self.mean(),
            self.p50(),
            self.p95(),
            self.p99(),
            self.max()
        )
    }
}

/// An empirical cumulative distribution function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from unsorted samples.
    ///
    /// # Panics
    /// Panics if `samples` is empty or contains non-finite values.
    pub fn from_samples(samples: &[f64]) -> Self {
        Summary::from_samples(samples).cdf()
    }

    fn from_sorted(sorted: Vec<f64>) -> Self {
        Cdf { sorted }
    }

    /// Fraction of samples `<= x`.
    pub fn probability_at(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Evaluates the CDF on `points` equally spaced values between the sample
    /// min and max, returning `(value, probability)` pairs — the series plotted
    /// in Figure 3.
    ///
    /// # Panics
    /// Panics if `points < 2`.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two curve points");
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        (0..points)
            .map(|i| {
                // The final point is exactly the sample maximum so the curve
                // always ends at probability 1.0 despite rounding.
                let x = if i + 1 == points {
                    hi
                } else {
                    lo + (hi - lo) * i as f64 / (points - 1) as f64
                };
                (x, self.probability_at(x))
            })
            .collect()
    }

    /// Number of underlying samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }
}

/// A fixed-width histogram over non-negative samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of `bucket_width` each.
    /// Samples beyond the last bucket are clamped into it.
    ///
    /// # Panics
    /// Panics if `bucket_width <= 0` or `buckets == 0`.
    pub fn new(bucket_width: f64, buckets: usize) -> Self {
        assert!(
            bucket_width > 0.0 && bucket_width.is_finite(),
            "bucket width must be positive"
        );
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            bucket_width,
            counts: vec![0; buckets],
            total: 0,
        }
    }

    /// Records a sample.
    ///
    /// # Panics
    /// Panics if the sample is negative or not finite.
    pub fn record(&mut self, value: f64) {
        assert!(
            value.is_finite() && value >= 0.0,
            "histogram samples must be non-negative and finite"
        );
        let idx = ((value / self.bucket_width) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Approximate quantile from bucket midpoints.
    ///
    /// # Panics
    /// Panics if the histogram is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        assert!(self.total > 0, "histogram is empty");
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (i as f64 + 0.5) * self.bucket_width;
            }
        }
        (self.counts.len() as f64 - 0.5) * self.bucket_width
    }
}

/// Computes the geometric mean of strictly positive values — used for the
/// cross-benchmark averages the paper reports ("on average 3.6x speedup").
///
/// # Panics
/// Panics if `values` is empty or contains non-positive values.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(
        !values.is_empty(),
        "geometric mean of an empty set is undefined"
    );
    assert!(
        values.iter().all(|&v| v > 0.0 && v.is_finite()),
        "values must be positive and finite"
    );
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Computes the arithmetic mean.
///
/// # Panics
/// Panics if `values` is empty.
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of an empty set is undefined");
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_quantiles_interpolate() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.p50(), 3.0);
        assert_eq!(s.quantile(0.25), 2.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert!((s.quantile(0.1) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn summary_mean_and_std() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.std_dev(), 2.0);
    }

    #[test]
    fn single_sample_summary() {
        let s = Summary::from_samples(&[3.5]);
        assert_eq!(s.p50(), 3.5);
        assert_eq!(s.p99(), 3.5);
        assert_eq!(s.min(), s.max());
    }

    #[test]
    fn cdf_probabilities_monotone() {
        let cdf = Cdf::from_samples(&[1.0, 2.0, 2.0, 3.0, 10.0]);
        assert_eq!(cdf.probability_at(0.5), 0.0);
        assert_eq!(cdf.probability_at(2.0), 0.6);
        assert_eq!(cdf.probability_at(10.0), 1.0);
        let curve = cdf.curve(10);
        assert_eq!(curve.len(), 10);
        assert!(curve.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(curve.last().expect("non-empty").1, 1.0);
    }

    #[test]
    fn histogram_quantile_approximates() {
        let mut h = Histogram::new(1.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        assert_eq!(h.total(), 100);
        let p50 = h.quantile(0.5);
        assert!((p50 - 49.5).abs() <= 1.0, "p50 {p50}");
    }

    #[test]
    fn histogram_clamps_overflow() {
        let mut h = Histogram::new(1.0, 4);
        h.record(100.0);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn geometric_mean_of_ratios() {
        let g = geometric_mean(&[2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
        assert!((arithmetic_mean(&[2.0, 8.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_summary_panics() {
        let _ = Summary::from_samples(&[]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_samples_rejected() {
        let _ = Summary::from_samples(&[1.0, f64::NAN]);
    }
}
