//! Simulated time.
//!
//! All simulations in the workspace use a nanosecond-resolution integer clock.
//! [`SimTime`] is an absolute instant since simulation start; [`SimDuration`] is
//! a span between instants. Both convert losslessly to/from floating point
//! seconds for analytical models.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time, measured in nanoseconds since the
/// start of the simulation.
///
/// ```
/// use dscs_simcore::time::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
///
/// ```
/// use dscs_simcore::time::SimDuration;
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_secs_f64(), 0.0025);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from seconds since simulation start.
    ///
    /// # Panics
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "time must be finite and non-negative"
        );
        SimTime((secs * 1e9).round() as u64)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a span from floating-point seconds, rounding to the nearest nanosecond.
    ///
    /// Negative or non-finite inputs are clamped to zero; analytical models
    /// occasionally produce tiny negative values from floating-point cancellation
    /// and those must never panic deep inside a simulation.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in microseconds (floating point).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The span in milliseconds (floating point).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span in seconds (floating point).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns `true` for a zero-length span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self
            .0
            .checked_sub(rhs.0)
            .expect("SimDuration subtraction underflow");
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else if s >= 1e-6 {
            write!(f, "{:.3}us", s * 1e6)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(5);
        assert_eq!((t1 - t0).as_millis_f64(), 5.0);
        assert_eq!(t1.as_secs_f64(), 0.005);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(SimDuration::from_secs_f64(0.25).as_nanos(), 250_000_000);
    }

    #[test]
    fn negative_seconds_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn saturating_operations() {
        let short = SimDuration::from_micros(1);
        let long = SimDuration::from_millis(1);
        assert_eq!(short.saturating_sub(long), SimDuration::ZERO);
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_nanos(10)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn min_max_and_sum() {
        let a = SimDuration::from_micros(3);
        let b = SimDuration::from_micros(7);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let total: SimDuration = [a, b, a].into_iter().sum();
        assert_eq!(total.as_micros_f64(), 13.0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_sub_underflow_panics() {
        let _ = SimDuration::from_nanos(1) - SimDuration::from_nanos(2);
    }

    #[test]
    fn scaling_by_floats() {
        let d = SimDuration::from_millis(10) * 2.5;
        assert_eq!(d.as_millis_f64(), 25.0);
        let d = SimDuration::from_millis(10) / 4;
        assert_eq!(d.as_millis_f64(), 2.5);
    }
}
