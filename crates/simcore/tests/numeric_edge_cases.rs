//! Edge-case unit tests for the numeric kernels — the degenerate inputs the
//! randomized property tests are unlikely to generate: empty and
//! single-element slices, constant and two-point fits, and percentile
//! behavior on tiny sample sets.

use dscs_simcore::fit::polyfit;
use dscs_simcore::stats::{arithmetic_mean, geometric_mean, Summary};

#[test]
#[should_panic(expected = "empty set is undefined")]
fn geometric_mean_of_empty_slice_panics() {
    geometric_mean(&[]);
}

#[test]
fn geometric_mean_of_single_element_is_the_element() {
    assert_eq!(geometric_mean(&[7.25]), 7.25);
}

#[test]
fn geometric_mean_is_exact_on_powers_of_two() {
    // ln/exp roundtrip must not drift measurably on a friendly case.
    let g = geometric_mean(&[1.0, 4.0, 16.0]);
    assert!((g - 4.0).abs() < 1e-12);
}

#[test]
#[should_panic(expected = "positive")]
fn geometric_mean_rejects_zero() {
    geometric_mean(&[1.0, 0.0]);
}

#[test]
#[should_panic(expected = "empty set is undefined")]
fn arithmetic_mean_of_empty_slice_panics() {
    arithmetic_mean(&[]);
}

#[test]
fn polyfit_degree_zero_on_constant_data_recovers_the_constant() {
    let pts: Vec<(f64, f64)> = (0..8).map(|i| (i as f64, 42.5)).collect();
    let poly = polyfit(&pts, 0);
    assert_eq!(poly.degree(), 0);
    assert!((poly.coefficients()[0] - 42.5).abs() < 1e-9);
    assert!((poly.eval(100.0) - 42.5).abs() < 1e-9);
}

#[test]
fn polyfit_linear_on_constant_data_has_zero_slope() {
    let pts: Vec<(f64, f64)> = (0..8).map(|i| (i as f64, -3.0)).collect();
    let poly = polyfit(&pts, 1);
    assert!(poly.coefficients()[1].abs() < 1e-9, "slope must vanish");
    assert!((poly.coefficients()[0] + 3.0).abs() < 1e-9);
}

#[test]
fn polyfit_two_points_is_the_interpolating_line() {
    let poly = polyfit(&[(1.0, 2.0), (3.0, 8.0)], 1);
    assert!((poly.eval(1.0) - 2.0).abs() < 1e-9);
    assert!((poly.eval(3.0) - 8.0).abs() < 1e-9);
    assert!((poly.coefficients()[1] - 3.0).abs() < 1e-9);
}

#[test]
#[should_panic(expected = "singular")]
fn polyfit_identical_x_values_is_singular() {
    polyfit(&[(2.0, 1.0), (2.0, 5.0)], 1);
}

#[test]
#[should_panic(expected = "empty sample set")]
fn summary_of_empty_samples_panics() {
    Summary::from_samples(&[]);
}

#[test]
fn summary_of_single_sample_collapses_all_statistics() {
    let s = Summary::from_samples(&[3.5]);
    assert_eq!(s.count(), 1);
    assert_eq!(s.min(), 3.5);
    assert_eq!(s.max(), 3.5);
    assert_eq!(s.mean(), 3.5);
    assert_eq!(s.std_dev(), 0.0);
    // Every quantile of a single sample is that sample.
    for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
        assert_eq!(s.quantile(q), 3.5, "quantile {q}");
    }
}

#[test]
fn summary_of_two_samples_interpolates_between_them() {
    let s = Summary::from_samples(&[10.0, 20.0]);
    assert_eq!(s.quantile(0.0), 10.0);
    assert_eq!(s.quantile(1.0), 20.0);
    assert!((s.p50() - 15.0).abs() < 1e-12);
    assert!((s.quantile(0.25) - 12.5).abs() < 1e-12);
}

#[test]
fn summary_quantile_endpoints_are_min_and_max_on_tiny_samples() {
    for n in 1..=5 {
        let values: Vec<f64> = (0..n).map(|i| i as f64 * 3.0).collect();
        let s = Summary::from_samples(&values);
        assert_eq!(s.quantile(0.0), s.min(), "n = {n}");
        assert_eq!(s.quantile(1.0), s.max(), "n = {n}");
    }
}

#[test]
#[should_panic(expected = "in [0, 1]")]
fn summary_quantile_out_of_range_panics() {
    Summary::from_samples(&[1.0]).quantile(1.5);
}
