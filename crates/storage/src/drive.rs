//! Storage-drive composition: conventional SSDs and the DSCS-Drive.
//!
//! A conventional drive is a flash array behind a host PCIe link. The
//! DSCS-Drive (Figure 5b) additionally contains a DRAM staging buffer, a DMA
//! engine and the DSA, with a dedicated peer-to-peer path between the flash
//! controller and the accelerator so data never crosses the host CPU's memory
//! or software stack.

use serde::{Deserialize, Serialize};

use dscs_simcore::quantity::Bytes;
use dscs_simcore::time::SimDuration;

use crate::flash::{FlashArray, FlashConfig};
use crate::pcie::PcieLink;

/// Host-software costs on the storage node for a conventional (non-P2P) access:
/// the request crosses the kernel block stack and the object-service process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostSoftwareCosts {
    /// System-call plus block-layer overhead per I/O.
    pub syscall: SimDuration,
    /// Object-service (key lookup, request handling) overhead per request.
    pub object_service: SimDuration,
}

impl Default for HostSoftwareCosts {
    fn default() -> Self {
        HostSoftwareCosts {
            syscall: SimDuration::from_micros(18),
            object_service: SimDuration::from_micros(120),
        }
    }
}

/// P2P driver costs inside the DSCS-Drive: a single `ioctl`-style call sets up
/// the transfer and the OpenCL runtime performs access-control checks, but no
/// per-byte host work happens.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct P2pDriverCosts {
    /// One-time driver/system-call cost to initiate a P2P transfer.
    pub setup: SimDuration,
    /// OpenCL runtime dispatch cost to launch work on the DSA.
    pub dispatch: SimDuration,
}

impl Default for P2pDriverCosts {
    fn default() -> Self {
        P2pDriverCosts {
            setup: SimDuration::from_micros(25),
            dispatch: SimDuration::from_micros(120),
        }
    }
}

/// A conventional NVMe drive: flash behind a host PCIe link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsdDrive {
    flash: FlashArray,
    host_link: PcieLink,
    host_costs: HostSoftwareCosts,
}

impl SsdDrive {
    /// Creates a drive with datacenter-NVMe characteristics.
    pub fn datacenter_nvme() -> Self {
        SsdDrive {
            flash: FlashArray::new(FlashConfig::datacenter_nvme()),
            host_link: PcieLink::nvme_drive(),
            host_costs: HostSoftwareCosts::default(),
        }
    }

    /// The flash array.
    pub fn flash(&self) -> &FlashArray {
        &self.flash
    }

    /// Latency for the storage node's CPU to read `size` bytes from this drive
    /// into host memory (kernel I/O path + flash + PCIe).
    pub fn host_read_latency(&self, size: Bytes) -> SimDuration {
        if size.as_u64() == 0 {
            return SimDuration::ZERO;
        }
        self.host_costs.syscall
            + self.host_costs.object_service
            + self.flash.read_latency(size)
            + self.host_link.transfer_latency(size)
    }

    /// Latency for the storage node's CPU to write `size` bytes.
    pub fn host_write_latency(&self, size: Bytes) -> SimDuration {
        if size.as_u64() == 0 {
            return SimDuration::ZERO;
        }
        self.host_costs.syscall
            + self.host_costs.object_service
            + self.flash.write_latency(size)
            + self.host_link.transfer_latency(size)
    }

    /// Energy of one host-path access.
    pub fn access_energy_joules(&self, size: Bytes) -> f64 {
        self.flash.access_energy_joules(size) + self.host_link.transfer_energy_joules(size)
    }

    /// Idle power of the drive.
    pub fn idle_power_watts(&self) -> f64 {
        self.flash.config().idle_power_watts
    }
}

/// The DSCS-Drive: a conventional drive plus an internal P2P path to the DSA.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DscsDrive {
    base: SsdDrive,
    p2p_link: PcieLink,
    driver: P2pDriverCosts,
    /// DRAM staging-buffer bandwidth inside the drive (DDR4 on the SmartSSD).
    staging_bandwidth_gbps: f64,
}

impl DscsDrive {
    /// Creates a DSCS-Drive with SmartSSD-class characteristics.
    pub fn smartssd_class() -> Self {
        DscsDrive {
            base: SsdDrive::datacenter_nvme(),
            p2p_link: PcieLink::p2p_internal(),
            driver: P2pDriverCosts::default(),
            staging_bandwidth_gbps: 19.2,
        }
    }

    /// The conventional-drive view (the DSCS-Drive still serves normal storage
    /// traffic through the host path).
    pub fn as_ssd(&self) -> &SsdDrive {
        &self.base
    }

    /// The P2P driver costs.
    pub fn driver_costs(&self) -> &P2pDriverCosts {
        &self.driver
    }

    /// Latency to move `size` bytes from the flash array into the DSA's DRAM
    /// staging buffer over the internal P2P path, bypassing the host stack.
    /// One driver call initiates the transfer; flash read and P2P transfer are
    /// pipelined, so the slower of the two dominates.
    pub fn p2p_read_latency(&self, size: Bytes) -> SimDuration {
        if size.as_u64() == 0 {
            return SimDuration::ZERO;
        }
        let flash = self.base.flash.read_latency(size);
        let link = self.p2p_link.transfer_latency(size);
        self.driver.setup + flash.max(link)
    }

    /// Latency to write `size` bytes of results from the DSA's staging buffer
    /// back to the flash array over the P2P path.
    pub fn p2p_write_latency(&self, size: Bytes) -> SimDuration {
        if size.as_u64() == 0 {
            return SimDuration::ZERO;
        }
        let flash = self.base.flash.write_latency(size);
        let link = self.p2p_link.transfer_latency(size);
        self.driver.setup + flash.max(link)
    }

    /// OpenCL-style dispatch overhead to launch a kernel/program on the DSA.
    pub fn dispatch_latency(&self) -> SimDuration {
        self.driver.dispatch
    }

    /// Energy of one P2P access (flash + internal link only; no host CPU work).
    pub fn p2p_energy_joules(&self, size: Bytes) -> f64 {
        self.base.flash.access_energy_joules(size) + self.p2p_link.transfer_energy_joules(size)
    }

    /// Idle power of the drive (flash + controller; the DSA's own power is
    /// accounted by the DSA power model).
    pub fn idle_power_watts(&self) -> f64 {
        self.base.idle_power_watts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_read_beats_host_read() {
        let drive = DscsDrive::smartssd_class();
        for size in [Bytes::from_kib(64), Bytes::from_mib(1), Bytes::from_mib(16)] {
            assert!(
                drive.p2p_read_latency(size) < drive.as_ssd().host_read_latency(size),
                "P2P should beat the host path at {size}"
            );
        }
    }

    #[test]
    fn p2p_pipeline_hides_faster_stage() {
        let drive = DscsDrive::smartssd_class();
        let size = Bytes::from_mib(8);
        let flash_only = drive.as_ssd().flash().read_latency(size);
        let p2p = drive.p2p_read_latency(size);
        // The P2P path should cost roughly the slower stage plus setup, not the
        // sum of both stages.
        assert!(p2p < flash_only + PcieLink::p2p_internal().transfer_latency(size));
    }

    #[test]
    fn host_path_includes_software_overheads() {
        let drive = SsdDrive::datacenter_nvme();
        let small = drive.host_read_latency(Bytes::from_kib(4));
        // flash (~70us) + syscall (18us) + object service (120us) + PCIe (~10us).
        assert!(small.as_micros_f64() > 200.0, "latency {small}");
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let drive = DscsDrive::smartssd_class();
        let size = Bytes::from_mib(2);
        assert!(drive.p2p_write_latency(size) > drive.p2p_read_latency(size));
    }

    #[test]
    fn p2p_energy_below_host_energy() {
        let drive = DscsDrive::smartssd_class();
        let size = Bytes::from_mib(4);
        assert!(drive.p2p_energy_joules(size) <= drive.as_ssd().access_energy_joules(size));
    }

    #[test]
    fn zero_size_accesses_are_free() {
        let drive = DscsDrive::smartssd_class();
        assert_eq!(drive.p2p_read_latency(Bytes::ZERO), SimDuration::ZERO);
        assert_eq!(
            drive.as_ssd().host_write_latency(Bytes::ZERO),
            SimDuration::ZERO
        );
    }

    #[test]
    fn dispatch_cost_is_sub_millisecond() {
        let drive = DscsDrive::smartssd_class();
        assert!(drive.dispatch_latency().as_millis_f64() < 1.0);
    }
}
