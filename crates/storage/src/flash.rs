//! NAND flash array model.
//!
//! The DSCS-Drive's flash array is organised as multiple channels of NAND dies
//! behind an SSD controller (Figure 5b). Reads pay a per-page sensing latency
//! and then stream at the aggregate channel bandwidth; writes pay program
//! latency. The model matches datacenter NVMe-class drives (~3-7 GB/s
//! sequential, ~60-90 us random-read latency).

use serde::{Deserialize, Serialize};

use dscs_simcore::quantity::{Bandwidth, Bytes};
use dscs_simcore::time::SimDuration;

/// Configuration of the flash array inside one drive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashConfig {
    /// Number of independent flash channels.
    pub channels: u32,
    /// Per-channel sustained bandwidth.
    pub channel_bandwidth: Bandwidth,
    /// Page size.
    pub page_size: Bytes,
    /// Page read (sensing + transfer setup) latency.
    pub read_latency: SimDuration,
    /// Page program latency.
    pub program_latency: SimDuration,
    /// Idle power of the flash array and controller.
    pub idle_power_watts: f64,
    /// Energy per byte read or written, in picojoules.
    pub energy_pj_per_byte: f64,
}

impl FlashConfig {
    /// A datacenter NVMe-class drive similar to the SmartSSD's 4 TB array:
    /// 8 channels x 800 MB/s, 16 KiB pages, ~70 us read latency.
    pub fn datacenter_nvme() -> Self {
        FlashConfig {
            channels: 8,
            channel_bandwidth: Bandwidth::from_mbps(800.0),
            page_size: Bytes::from_kib(16),
            read_latency: SimDuration::from_micros(70),
            program_latency: SimDuration::from_micros(500),
            idle_power_watts: 2.5,
            energy_pj_per_byte: 45.0,
        }
    }

    /// Aggregate sequential bandwidth across all channels.
    pub fn aggregate_bandwidth(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(
            self.channel_bandwidth.bytes_per_sec() * f64::from(self.channels),
        )
    }
}

/// The flash array: answers read/write latency and energy queries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashArray {
    config: FlashConfig,
}

impl FlashArray {
    /// Creates a flash array from its configuration.
    pub fn new(config: FlashConfig) -> Self {
        FlashArray { config }
    }

    /// The configuration.
    pub fn config(&self) -> &FlashConfig {
        &self.config
    }

    /// Latency to read `size` bytes: one page-read latency (the first page
    /// sensing overlaps subsequent transfers) plus streaming at the aggregate
    /// bandwidth.
    pub fn read_latency(&self, size: Bytes) -> SimDuration {
        if size.as_u64() == 0 {
            return SimDuration::ZERO;
        }
        self.config.read_latency + self.config.aggregate_bandwidth().transfer_time(size)
    }

    /// Latency to write `size` bytes.
    pub fn write_latency(&self, size: Bytes) -> SimDuration {
        if size.as_u64() == 0 {
            return SimDuration::ZERO;
        }
        self.config.program_latency + self.config.aggregate_bandwidth().transfer_time(size)
    }

    /// Energy to move `size` bytes through the flash interface.
    pub fn access_energy_joules(&self, size: Bytes) -> f64 {
        size.as_f64() * self.config.energy_pj_per_byte * 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_bandwidth_sums_channels() {
        let cfg = FlashConfig::datacenter_nvme();
        assert!((cfg.aggregate_bandwidth().as_gbps() - 6.4).abs() < 1e-9);
    }

    #[test]
    fn small_reads_dominated_by_latency() {
        let flash = FlashArray::new(FlashConfig::datacenter_nvme());
        let small = flash.read_latency(Bytes::from_kib(4));
        assert!(small.as_micros_f64() >= 70.0);
        assert!(small.as_micros_f64() < 80.0);
    }

    #[test]
    fn large_reads_dominated_by_bandwidth() {
        let flash = FlashArray::new(FlashConfig::datacenter_nvme());
        let large = flash.read_latency(Bytes::from_mib(64));
        // 64 MiB at 6.4 GB/s ~ 10.5 ms.
        assert!(large.as_millis_f64() > 9.0 && large.as_millis_f64() < 13.0);
    }

    #[test]
    fn writes_slower_than_reads() {
        let flash = FlashArray::new(FlashConfig::datacenter_nvme());
        let size = Bytes::from_mib(1);
        assert!(flash.write_latency(size) > flash.read_latency(size));
    }

    #[test]
    fn zero_size_is_free() {
        let flash = FlashArray::new(FlashConfig::datacenter_nvme());
        assert_eq!(flash.read_latency(Bytes::ZERO), SimDuration::ZERO);
        assert_eq!(flash.write_latency(Bytes::ZERO), SimDuration::ZERO);
        assert_eq!(flash.access_energy_joules(Bytes::ZERO), 0.0);
    }

    #[test]
    fn energy_scales_linearly() {
        let flash = FlashArray::new(FlashConfig::datacenter_nvme());
        let e1 = flash.access_energy_joules(Bytes::from_mib(1));
        let e4 = flash.access_energy_joules(Bytes::from_mib(4));
        assert!((e4 / e1 - 4.0).abs() < 1e-9);
    }
}
