//! # dscs-storage
//!
//! Storage substrate for the DSCS-Serverless reproduction: every component of
//! the disaggregated-storage data path that the paper's end-to-end latencies
//! depend on.
//!
//! * [`flash`] — the NAND flash array inside a drive (channels, page latency,
//!   aggregate bandwidth, access energy).
//! * [`pcie`] — PCIe links: host↔drive, host↔accelerator card, and the
//!   dedicated peer-to-peer path inside the DSCS-Drive.
//! * [`drive`] — drive compositions: conventional NVMe SSD (host software path)
//!   and the DSCS-Drive (P2P path from flash to the in-storage DSA).
//! * [`network`] — the datacenter network / RPC model with heavy-tailed base
//!   latency and protobuf (de)serialization costs, calibrated to the paper's
//!   S3 read measurements (Figure 3).
//! * [`object_store`] — an S3-style replicated object store with DSCS-aware
//!   data placement (Section 5.2).
//! * [`snapshot`] — the CRIU-style process-snapshot restore path (setup +
//!   restore stream + page-fault warmup tail), the third cold-start
//!   modality next to registry spawn and flash reload.
//!
//! # Example: remote read vs. in-storage P2P read
//!
//! ```
//! use dscs_simcore::quantity::Bytes;
//! use dscs_storage::drive::DscsDrive;
//! use dscs_storage::network::{NetworkConfig, NetworkModel};
//!
//! let size = Bytes::from_mib(2);
//! let remote = NetworkModel::new(NetworkConfig::disaggregated_datacenter());
//! let drive = DscsDrive::smartssd_class();
//!
//! let remote_read = remote.access_latency_at_quantile(size, 0.5)
//!     + drive.as_ssd().host_read_latency(size);
//! let p2p_read = drive.p2p_read_latency(size);
//! assert!(p2p_read < remote_read); // the paper's core observation
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drive;
pub mod flash;
pub mod network;
pub mod object_store;
pub mod pcie;
pub mod snapshot;

pub use drive::{DscsDrive, HostSoftwareCosts, P2pDriverCosts, SsdDrive};
pub use flash::{FlashArray, FlashConfig};
pub use network::{NetworkConfig, NetworkModel};
pub use object_store::{
    DriveClass, ObjectMeta, ObjectStore, RemoteFetchModel, StorageNodeId, StoreError,
};
pub use pcie::{PcieGeneration, PcieLink};
pub use snapshot::{SnapshotConfig, SnapshotStore};

#[cfg(test)]
mod tests {
    use dscs_simcore::quantity::Bytes;

    use crate::drive::DscsDrive;
    use crate::network::{NetworkConfig, NetworkModel};

    #[test]
    fn remote_access_dwarfs_in_storage_access() {
        // The observation that motivates the whole paper: for serverless-sized
        // payloads the remote-storage round trip is orders of magnitude slower
        // than touching the data inside the drive.
        let size = Bytes::from_mib(1);
        let remote = NetworkModel::new(NetworkConfig::disaggregated_datacenter());
        let drive = DscsDrive::smartssd_class();
        let remote_read =
            remote.access_latency_at_quantile(size, 0.5) + drive.as_ssd().host_read_latency(size);
        let p2p_read = drive.p2p_read_latency(size);
        assert!(remote_read.as_secs_f64() > 10.0 * p2p_read.as_secs_f64());
    }
}
