//! Datacenter network and RPC model.
//!
//! In the baseline (traditional) system every serverless function reads its
//! input from and writes its output to remote disaggregated storage. One such
//! access is: an RPC over the datacenter network (with a heavy-tailed latency),
//! protobuf serialization/deserialization on both sides, system-call and
//! storage-software overhead on the storage node, and the payload transfer at
//! the network bandwidth. The model's constants are calibrated so that the
//! resulting S3-style read latencies match Figure 3 (tens of milliseconds with
//! a p99 roughly 2.1x the median) and the >55 % communication share of
//! Figure 4.

use serde::{Deserialize, Serialize};

use dscs_simcore::dist::{Distribution, LogNormalDist};
use dscs_simcore::quantity::{Bandwidth, Bytes};
use dscs_simcore::rng::DeterministicRng;
use dscs_simcore::time::SimDuration;

/// Configuration of the network + RPC stack between compute and storage nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Sustained per-flow network bandwidth.
    pub bandwidth: Bandwidth,
    /// Median base RPC latency (request + response network time, queueing,
    /// storage-service software) for a small object.
    pub rpc_median: SimDuration,
    /// 99th-percentile base RPC latency.
    pub rpc_p99: SimDuration,
    /// Protobuf (de)serialization throughput on the CPUs at each end.
    pub serialization_bandwidth: Bandwidth,
    /// Per-RPC fixed CPU overhead (system calls, connection handling).
    pub per_rpc_cpu: SimDuration,
    /// Network interface + switch energy per byte, in picojoules.
    pub energy_pj_per_byte: f64,
}

impl NetworkConfig {
    /// A 100 Gb/s datacenter fabric fronting an S3-style object store, with the
    /// base RPC latency calibrated to the paper's measured S3 read
    /// distribution (median in the tens of milliseconds, p99/p50 ~ 2.1).
    pub fn disaggregated_datacenter() -> Self {
        NetworkConfig {
            bandwidth: Bandwidth::from_gbits_per_sec(100.0),
            rpc_median: SimDuration::from_millis(18),
            rpc_p99: SimDuration::from_micros(38_000),
            serialization_bandwidth: Bandwidth::from_gbps(2.0),
            per_rpc_cpu: SimDuration::from_micros(250),
            energy_pj_per_byte: 60.0,
        }
    }

    /// The base-latency distribution implied by the configuration.
    pub fn rpc_distribution(&self) -> LogNormalDist {
        LogNormalDist::from_median_p99(self.rpc_median.as_secs_f64(), self.rpc_p99.as_secs_f64())
    }
}

/// The network/RPC model used by remote reads and writes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    config: NetworkConfig,
    /// Multiplier applied to the base-latency spread (1.0 = calibrated tail,
    /// 0.0 = deterministic). Used by the tail-latency sensitivity study.
    tail_scale: f64,
}

impl NetworkModel {
    /// Creates a model from a configuration.
    pub fn new(config: NetworkConfig) -> Self {
        NetworkModel {
            config,
            tail_scale: 1.0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Returns a copy with the latency tail scaled by `factor`.
    pub fn with_tail_scale(&self, factor: f64) -> Self {
        assert!(
            factor >= 0.0 && factor.is_finite(),
            "tail factor must be non-negative"
        );
        NetworkModel {
            config: self.config,
            tail_scale: factor,
        }
    }

    /// Deterministic (no sampling) latency of one remote object access of
    /// `size` bytes at quantile `q` of the base-latency distribution.
    pub fn access_latency_at_quantile(&self, size: Bytes, q: f64) -> SimDuration {
        let dist = self
            .config
            .rpc_distribution()
            .with_tail_scaled(self.tail_scale);
        let base = SimDuration::from_secs_f64(dist.quantile(q));
        base + self.payload_latency(size)
    }

    /// Samples the latency of one remote object access (RPC + payload).
    pub fn sample_access_latency(&self, size: Bytes, rng: &mut DeterministicRng) -> SimDuration {
        let dist = self
            .config
            .rpc_distribution()
            .with_tail_scaled(self.tail_scale);
        let base = SimDuration::from_secs_f64(dist.sample(rng));
        base + self.payload_latency(size)
    }

    /// The size-dependent part of an access: serialization at both ends plus
    /// wire transfer plus fixed per-RPC CPU cost.
    pub fn payload_latency(&self, size: Bytes) -> SimDuration {
        let wire = self.config.bandwidth.transfer_time(size);
        let serialization = self.config.serialization_bandwidth.transfer_time(size) * 2u64;
        wire + serialization + self.config.per_rpc_cpu
    }

    /// Energy attributable to moving `size` bytes over the fabric (NICs and
    /// switches at both ends).
    pub fn transfer_energy_joules(&self, size: Bytes) -> f64 {
        size.as_f64() * self.config.energy_pj_per_byte * 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscs_simcore::stats::Summary;

    #[test]
    fn median_and_tail_match_calibration() {
        let net = NetworkModel::new(NetworkConfig::disaggregated_datacenter());
        let mut rng = DeterministicRng::seeded(42);
        let size = Bytes::from_kib(64);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| net.sample_access_latency(size, &mut rng).as_secs_f64())
            .collect();
        let s = Summary::from_samples(&samples);
        // Median around 18-20 ms, p99/p50 about 2x (the paper reports a 110%
        // gap between median and p99).
        assert!((0.015..0.030).contains(&s.p50()), "p50 {}", s.p50());
        let ratio = s.p99() / s.p50();
        assert!((1.6..2.6).contains(&ratio), "tail ratio {ratio}");
    }

    #[test]
    fn larger_objects_take_longer() {
        let net = NetworkModel::new(NetworkConfig::disaggregated_datacenter());
        let small = net.access_latency_at_quantile(Bytes::from_kib(16), 0.5);
        let large = net.access_latency_at_quantile(Bytes::from_mib(16), 0.5);
        assert!(large > small);
    }

    #[test]
    fn quantiles_are_monotone() {
        let net = NetworkModel::new(NetworkConfig::disaggregated_datacenter());
        let size = Bytes::from_mib(1);
        let p50 = net.access_latency_at_quantile(size, 0.5);
        let p95 = net.access_latency_at_quantile(size, 0.95);
        let p99 = net.access_latency_at_quantile(size, 0.99);
        assert!(p50 < p95 && p95 < p99);
    }

    #[test]
    fn zero_tail_scale_makes_access_deterministic() {
        let net = NetworkModel::new(NetworkConfig::disaggregated_datacenter()).with_tail_scale(0.0);
        let size = Bytes::from_kib(64);
        assert_eq!(
            net.access_latency_at_quantile(size, 0.5),
            net.access_latency_at_quantile(size, 0.99)
        );
    }

    #[test]
    fn serialization_is_part_of_payload_cost() {
        let net = NetworkModel::new(NetworkConfig::disaggregated_datacenter());
        let size = Bytes::from_mib(8);
        let wire_only = net.config().bandwidth.transfer_time(size);
        assert!(net.payload_latency(size) > wire_only * 2u64);
    }

    #[test]
    fn energy_scales_with_bytes() {
        let net = NetworkModel::new(NetworkConfig::disaggregated_datacenter());
        let e1 = net.transfer_energy_joules(Bytes::from_mib(1));
        let e2 = net.transfer_energy_joules(Bytes::from_mib(2));
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }
}
