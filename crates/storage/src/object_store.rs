//! Disaggregated object store (S3-style) with DSCS-aware placement.
//!
//! The baseline system keeps serverless inputs/outputs in a replicated
//! key-value object store spread over storage nodes. DSCS-Serverless maps one
//! replica of objects belonging to acceleratable functions onto DSCS-Drives so
//! the in-storage DSA can reach the data over the P2P path (Section 5.2).
//!
//! Storage nodes live in *racks*: [`ObjectStore::with_rack_layout`] maps node
//! ids onto rack indices, placement keeps an object's replicas within a
//! bounded number of racks (data gravity), and [`ObjectStore::racks_holding`]
//! answers the question the cluster's locality-aware load balancer asks on
//! every dispatch. A request scheduled onto a rack without a replica pays the
//! cross-rack fetch priced by [`RemoteFetchModel`] — the network/RPC stack
//! plus the drive's PCIe hop — instead of assuming the data is local.
//!
//! The store tracks object metadata only (sizes and placement); latency always
//! comes from the drive/network models.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dscs_simcore::quantity::Bytes;
use dscs_simcore::rng::DeterministicRng;
use dscs_simcore::time::SimDuration;

use crate::network::{NetworkConfig, NetworkModel};
use crate::pcie::PcieLink;

/// Identifier of a storage node in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StorageNodeId(pub u32);

/// The kind of drive a storage node exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DriveClass {
    /// Conventional SSD.
    Conventional,
    /// DSCS-Drive (SSD + in-storage DSA).
    Dscs,
}

/// Metadata for one stored object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectMeta {
    /// Object key.
    pub key: String,
    /// Object size.
    pub size: Bytes,
    /// Nodes holding a replica (primary first).
    pub replicas: Vec<StorageNodeId>,
    /// Whether the object is flagged as input to an acceleratable function.
    pub acceleratable: bool,
}

/// Errors returned by the object store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The requested key does not exist.
    NotFound(String),
    /// The store has no nodes of the class required for placement.
    NoNodesOfClass(DriveClass),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound(key) => write!(f, "object not found: {key}"),
            StoreError::NoNodesOfClass(class) => write!(f, "no storage nodes of class {class:?}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// The disaggregated object store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectStore {
    nodes: HashMap<StorageNodeId, DriveClass>,
    /// Rack index of each node. Single-rack constructors map everything onto
    /// rack 0.
    node_racks: HashMap<StorageNodeId, u32>,
    /// Number of racks the nodes span (rack indices are `0..racks`).
    racks: u32,
    /// Maximum number of distinct racks one object's replicas may span.
    /// `1` keeps every replica in the object's home rack (data gravity);
    /// `racks` places replicas anywhere.
    rack_spread: u32,
    objects: HashMap<String, ObjectMeta>,
    replication: usize,
    /// Chunk size used to split very large objects across drives.
    chunk_size: Bytes,
}

impl ObjectStore {
    /// Creates a single-rack store over the given nodes with a replication
    /// factor.
    ///
    /// # Panics
    /// Panics if `nodes` is empty or `replication` is zero.
    pub fn new(
        nodes: impl IntoIterator<Item = (StorageNodeId, DriveClass)>,
        replication: usize,
    ) -> Self {
        let nodes: HashMap<_, _> = nodes.into_iter().collect();
        assert!(!nodes.is_empty(), "object store needs at least one node");
        assert!(replication >= 1, "replication factor must be at least 1");
        let node_racks = nodes.keys().map(|&id| (id, 0)).collect();
        ObjectStore {
            nodes,
            node_racks,
            racks: 1,
            rack_spread: 1,
            objects: HashMap::new(),
            replication,
            chunk_size: Bytes::from_mib(64),
        }
    }

    /// A single-rack store with `conventional` plain-SSD nodes and `dscs`
    /// DSCS-Drive nodes, 3-way replicated (the common S3-style setup).
    pub fn with_node_counts(conventional: u32, dscs: u32) -> Self {
        assert!(conventional + dscs > 0, "need at least one storage node");
        let mut nodes = Vec::new();
        for i in 0..conventional {
            nodes.push((StorageNodeId(i), DriveClass::Conventional));
        }
        for i in 0..dscs {
            nodes.push((StorageNodeId(conventional + i), DriveClass::Dscs));
        }
        ObjectStore::new(nodes, 3.min((conventional + dscs) as usize))
    }

    /// A multi-rack store: every rack holds `conventional_per_rack` plain-SSD
    /// nodes followed by `dscs_per_rack` DSCS-Drive nodes (node ids are
    /// assigned rack-major). Replicas of one object stay within `rack_spread`
    /// neighbouring racks, starting from the object's home rack.
    ///
    /// # Panics
    /// Panics if `racks` is zero, a rack would hold no nodes, `replication`
    /// is zero, or `rack_spread` is zero or exceeds `racks`.
    pub fn with_rack_layout(
        racks: u32,
        conventional_per_rack: u32,
        dscs_per_rack: u32,
        replication: usize,
        rack_spread: u32,
    ) -> Self {
        assert!(racks > 0, "need at least one rack");
        let per_rack = conventional_per_rack + dscs_per_rack;
        assert!(per_rack > 0, "every rack needs at least one storage node");
        assert!(replication >= 1, "replication factor must be at least 1");
        assert!(
            rack_spread >= 1 && rack_spread <= racks,
            "rack spread must be in [1, racks]"
        );
        let mut nodes = HashMap::new();
        let mut node_racks = HashMap::new();
        for rack in 0..racks {
            for slot in 0..per_rack {
                let id = StorageNodeId(rack * per_rack + slot);
                let class = if slot < conventional_per_rack {
                    DriveClass::Conventional
                } else {
                    DriveClass::Dscs
                };
                nodes.insert(id, class);
                node_racks.insert(id, rack);
            }
        }
        ObjectStore {
            nodes,
            node_racks,
            racks,
            rack_spread,
            objects: HashMap::new(),
            replication: replication.min((per_rack * rack_spread) as usize),
            chunk_size: Bytes::from_mib(64),
        }
    }

    /// Number of storage nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of racks the store's nodes span.
    pub fn rack_count(&self) -> u32 {
        self.racks
    }

    /// Rack index of a node.
    pub fn rack_of(&self, node: StorageNodeId) -> Option<u32> {
        self.node_racks.get(&node).copied()
    }

    /// The racks holding a replica of `key`, sorted and deduplicated — the
    /// placement answer a locality-aware load balancer dispatches on.
    pub fn racks_holding(&self, key: &str) -> Result<Vec<u32>, StoreError> {
        let meta = self.get(key)?;
        let mut racks: Vec<u32> = meta
            .replicas
            .iter()
            .filter_map(|&n| self.rack_of(n))
            .collect();
        racks.sort_unstable();
        racks.dedup();
        Ok(racks)
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Drive class of a node.
    pub fn node_class(&self, node: StorageNodeId) -> Option<DriveClass> {
        self.nodes.get(&node).copied()
    }

    /// Stores (or replaces) an object. If `acceleratable` is set and the store
    /// has DSCS nodes, the primary replica is placed on a DSCS-Drive so the
    /// in-storage accelerator can reach the data. The primary's rack (or a
    /// random *home rack*, for non-acceleratable objects) anchors placement:
    /// the remaining replicas land on random distinct nodes within the home
    /// rack and its `rack_spread - 1` neighbouring racks.
    pub fn put(
        &mut self,
        key: impl Into<String>,
        size: Bytes,
        acceleratable: bool,
        rng: &mut DeterministicRng,
    ) -> Result<ObjectMeta, StoreError> {
        let key = key.into();
        let mut replicas = Vec::with_capacity(self.replication);
        let home = if acceleratable {
            let dscs_nodes: Vec<StorageNodeId> = self.nodes_of_class(DriveClass::Dscs);
            if dscs_nodes.is_empty() {
                return Err(StoreError::NoNodesOfClass(DriveClass::Dscs));
            }
            let primary = *rng.choose(&dscs_nodes);
            replicas.push(primary);
            self.node_racks[&primary]
        } else if self.racks == 1 {
            0
        } else {
            rng.next_index(self.racks as usize) as u32
        };
        let allowed: Vec<StorageNodeId> = {
            let mut v: Vec<_> = self
                .nodes
                .keys()
                .copied()
                .filter(|n| {
                    (self.node_racks[n] + self.racks - home) % self.racks < self.rack_spread
                })
                .collect();
            v.sort_unstable();
            v
        };
        while replicas.len() < self.replication.min(allowed.len()) {
            let candidate = *rng.choose(&allowed);
            if !replicas.contains(&candidate) {
                replicas.push(candidate);
            }
        }
        let meta = ObjectMeta {
            key: key.clone(),
            size,
            replicas,
            acceleratable,
        };
        self.objects.insert(key, meta.clone());
        Ok(meta)
    }

    /// Looks up an object.
    pub fn get(&self, key: &str) -> Result<&ObjectMeta, StoreError> {
        self.objects
            .get(key)
            .ok_or_else(|| StoreError::NotFound(key.to_string()))
    }

    /// Removes an object, returning its metadata.
    pub fn delete(&mut self, key: &str) -> Result<ObjectMeta, StoreError> {
        self.objects
            .remove(key)
            .ok_or_else(|| StoreError::NotFound(key.to_string()))
    }

    /// Returns the replica (if any) that lives on a DSCS-Drive, which is where
    /// an acceleratable function would be scheduled.
    pub fn dscs_replica(&self, key: &str) -> Result<Option<StorageNodeId>, StoreError> {
        let meta = self.get(key)?;
        Ok(meta
            .replicas
            .iter()
            .copied()
            .find(|n| self.node_class(*n) == Some(DriveClass::Dscs)))
    }

    /// Number of chunks an object is split into (objects under the chunk size —
    /// the common case for serverless payloads, which AWS caps at ~20 MB — stay
    /// on one drive).
    pub fn chunk_count(&self, key: &str) -> Result<u64, StoreError> {
        let meta = self.get(key)?;
        Ok(meta.size.as_u64().div_ceil(self.chunk_size.as_u64()).max(1))
    }

    fn nodes_of_class(&self, class: DriveClass) -> Vec<StorageNodeId> {
        let mut v: Vec<StorageNodeId> = self
            .nodes
            .iter()
            .filter(|(_, c)| **c == class)
            .map(|(id, _)| *id)
            .collect();
        v.sort_unstable();
        v
    }
}

/// Prices the object fetch a request pays when it is scheduled onto a rack
/// that holds no replica of its input: one RPC over the datacenter fabric to
/// a rack that does ([`crate::network`]), plus the drive-side PCIe hop that
/// moves the payload off the remote drive ([`crate::pcie`]). Local placement
/// pays neither — which is exactly the asymmetry a locality-aware scheduler
/// exploits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RemoteFetchModel {
    network: NetworkModel,
    drive_link: PcieLink,
    /// Quantile of the network's base-latency distribution used for the
    /// deterministic per-fetch cost (queueing, not the storage tail,
    /// dominates at cluster scale).
    quantile: f64,
}

impl RemoteFetchModel {
    /// The default datacenter configuration: the paper's disaggregated
    /// network/RPC stack at its median base latency, over an NVMe drive link.
    pub fn datacenter_default() -> Self {
        RemoteFetchModel {
            network: NetworkModel::new(NetworkConfig::disaggregated_datacenter()),
            drive_link: PcieLink::nvme_drive(),
            quantile: 0.5,
        }
    }

    /// A copy evaluating the network base latency at quantile `q` (the
    /// tail-sensitivity knob).
    ///
    /// # Panics
    /// Panics if `q` is not in `(0, 1)`.
    pub fn at_quantile(&self, q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
        RemoteFetchModel {
            quantile: q,
            ..*self
        }
    }

    /// Deterministic latency of fetching `size` bytes from a remote rack.
    pub fn fetch_latency(&self, size: Bytes) -> SimDuration {
        self.network.access_latency_at_quantile(size, self.quantile)
            + self.drive_link.transfer_latency(size)
    }

    /// Energy attributable to moving `size` bytes across racks (fabric NICs
    /// and switches plus the drive-side PCIe hop).
    pub fn fetch_energy_joules(&self, size: Bytes) -> f64 {
        self.network.transfer_energy_joules(size) + self.drive_link.transfer_energy_joules(size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ObjectStore {
        ObjectStore::with_node_counts(6, 2)
    }

    #[test]
    fn acceleratable_objects_land_on_dscs_drives() {
        let mut s = store();
        let mut rng = DeterministicRng::seeded(1);
        let meta = s
            .put("input.jpg", Bytes::from_mib(2), true, &mut rng)
            .expect("put");
        assert_eq!(s.node_class(meta.replicas[0]), Some(DriveClass::Dscs));
        assert!(s.dscs_replica("input.jpg").expect("exists").is_some());
    }

    #[test]
    fn non_acceleratable_objects_do_not_require_dscs_nodes() {
        let mut s = ObjectStore::with_node_counts(4, 0);
        let mut rng = DeterministicRng::seeded(2);
        assert!(s
            .put("log.txt", Bytes::from_kib(10), false, &mut rng)
            .is_ok());
        assert!(matches!(
            s.put("image.jpg", Bytes::from_mib(1), true, &mut rng),
            Err(StoreError::NoNodesOfClass(DriveClass::Dscs))
        ));
    }

    #[test]
    fn replication_uses_distinct_nodes() {
        let mut s = store();
        let mut rng = DeterministicRng::seeded(3);
        let meta = s
            .put("obj", Bytes::from_kib(100), true, &mut rng)
            .expect("put");
        let mut unique = meta.replicas.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), meta.replicas.len());
        assert_eq!(meta.replicas.len(), 3);
    }

    #[test]
    fn get_and_delete_round_trip() {
        let mut s = store();
        let mut rng = DeterministicRng::seeded(4);
        s.put("a", Bytes::from_kib(1), false, &mut rng)
            .expect("put");
        assert_eq!(s.get("a").expect("get").size.as_u64(), 1024);
        assert_eq!(s.object_count(), 1);
        s.delete("a").expect("delete");
        assert!(matches!(s.get("a"), Err(StoreError::NotFound(_))));
        assert_eq!(s.object_count(), 0);
    }

    #[test]
    fn serverless_payloads_fit_one_chunk() {
        let mut s = store();
        let mut rng = DeterministicRng::seeded(5);
        s.put("small", Bytes::from_mib(18), false, &mut rng)
            .expect("put");
        s.put("huge", Bytes::from_gib(1), false, &mut rng)
            .expect("put");
        assert_eq!(s.chunk_count("small").expect("small"), 1);
        assert!(s.chunk_count("huge").expect("huge") > 1);
    }

    #[test]
    fn deterministic_given_same_seed() {
        let mut a = store();
        let mut b = store();
        let mut rng_a = DeterministicRng::seeded(6);
        let mut rng_b = DeterministicRng::seeded(6);
        let ma = a
            .put("x", Bytes::from_mib(1), true, &mut rng_a)
            .expect("put");
        let mb = b
            .put("x", Bytes::from_mib(1), true, &mut rng_b)
            .expect("put");
        assert_eq!(ma.replicas, mb.replicas);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_store_rejected() {
        let _ = ObjectStore::new(Vec::<(StorageNodeId, DriveClass)>::new(), 3);
    }

    #[test]
    fn single_rack_constructors_map_everything_to_rack_zero() {
        let s = store();
        assert_eq!(s.rack_count(), 1);
        assert_eq!(s.rack_of(StorageNodeId(0)), Some(0));
        assert_eq!(s.rack_of(StorageNodeId(99)), None);
    }

    #[test]
    fn rack_layout_assigns_nodes_rack_major() {
        let s = ObjectStore::with_rack_layout(3, 2, 1, 2, 1);
        assert_eq!(s.rack_count(), 3);
        assert_eq!(s.node_count(), 9);
        // Rack 1 holds nodes 3..6; the last node per rack is the DSCS drive.
        assert_eq!(s.rack_of(StorageNodeId(3)), Some(1));
        assert_eq!(
            s.node_class(StorageNodeId(3)),
            Some(DriveClass::Conventional)
        );
        assert_eq!(s.node_class(StorageNodeId(5)), Some(DriveClass::Dscs));
    }

    #[test]
    fn rack_local_placement_keeps_replicas_in_one_rack() {
        let mut s = ObjectStore::with_rack_layout(4, 3, 2, 3, 1);
        let mut rng = DeterministicRng::seeded(7);
        for i in 0..32 {
            let key = format!("obj-{i}");
            let meta = s
                .put(&key, Bytes::from_mib(1), i % 2 == 0, &mut rng)
                .expect("put");
            let racks = s.racks_holding(&key).expect("placed");
            assert_eq!(racks.len(), 1, "spread 1 keeps one rack: {racks:?}");
            assert!(racks[0] < 4);
            assert_eq!(meta.replicas.len(), 3);
            let mut unique = meta.replicas.clone();
            unique.sort_unstable();
            unique.dedup();
            assert_eq!(unique.len(), 3, "replicas stay distinct");
        }
    }

    #[test]
    fn rack_spread_bounds_the_racks_replicas_span() {
        let mut s = ObjectStore::with_rack_layout(4, 1, 1, 4, 2);
        let mut rng = DeterministicRng::seeded(8);
        for i in 0..24 {
            let key = format!("obj-{i}");
            s.put(&key, Bytes::from_kib(64), true, &mut rng)
                .expect("put");
            let racks = s.racks_holding(&key).expect("placed");
            assert!(
                (1..=2).contains(&racks.len()),
                "spread 2 spans at most two racks: {racks:?}"
            );
            // With one DSCS node per rack, the primary pins the home rack.
            let primary_rack = s
                .rack_of(s.get(&key).expect("meta").replicas[0])
                .expect("rack");
            assert!(racks.contains(&primary_rack));
        }
    }

    #[test]
    fn acceleratable_objects_home_on_their_dscs_rack() {
        let mut s = ObjectStore::with_rack_layout(2, 2, 1, 2, 1);
        let mut rng = DeterministicRng::seeded(9);
        let meta = s
            .put("model-input", Bytes::from_mib(4), true, &mut rng)
            .expect("put");
        assert_eq!(s.node_class(meta.replicas[0]), Some(DriveClass::Dscs));
        let home = s.rack_of(meta.replicas[0]).expect("rack");
        for &replica in &meta.replicas {
            assert_eq!(s.rack_of(replica), Some(home));
        }
    }

    #[test]
    #[should_panic(expected = "rack spread")]
    fn zero_rack_spread_rejected() {
        let _ = ObjectStore::with_rack_layout(2, 1, 1, 2, 0);
    }

    #[test]
    fn remote_fetch_costs_scale_with_size_and_quantile() {
        let fetch = RemoteFetchModel::datacenter_default();
        let small = fetch.fetch_latency(Bytes::from_kib(64));
        let large = fetch.fetch_latency(Bytes::from_mib(8));
        assert!(large > small);
        // Median base latency is tens of milliseconds (Figure 3): a remote
        // fetch is never free.
        assert!(small > SimDuration::from_millis(10), "small fetch {small}");
        let tail = fetch.at_quantile(0.99).fetch_latency(Bytes::from_kib(64));
        assert!(tail > small, "tail fetch {tail} vs median {small}");
        let e = fetch.fetch_energy_joules(Bytes::from_mib(1));
        assert!(e > 0.0);
    }
}
